//! Candidate schedules (§4, §6).
//!
//! A *candidate schedule* lays the queued tasks out over the site's
//! processors according to a [`Policy`], yielding an expected start and
//! completion time per task. Sites use it to answer two questions the
//! market layer asks (§6): *when would this task complete if accepted?*
//! and *which tasks sit behind it?* (the slack cost, Eq. 8).
//!
//! Two construction modes, an ablation called out in DESIGN.md:
//!
//! * [`ScheduleMode::Static`] — score every job once at the scheduling
//!   point, sort, and pack in score order (`O(n log n)`). This is the
//!   default used on the admission path.
//! * [`ScheduleMode::Dynamic`] — re-evaluate scores at each successive
//!   dispatch instant, exactly mirroring what the site's dispatcher will
//!   do (`O(n² log n)`). More faithful for strongly time-varying scores;
//!   measurably slower (see the `schedule_modes` bench).

use crate::cost::CostModel;
use crate::heuristics::{Policy, ScoreCtx};
use crate::job::Job;
use crate::pool::PendingPool;
use mbts_sim::Time;
use mbts_workload::TaskId;
use serde::{Deserialize, Serialize};

/// How candidate schedules are constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ScheduleMode {
    /// Score once at the scheduling point, pack in score order.
    #[default]
    Static,
    /// Re-score at every dispatch instant (exact greedy).
    Dynamic,
}

/// One task's slot in a candidate schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleEntry {
    /// The task.
    pub id: TaskId,
    /// Expected (re)start time.
    pub start: Time,
    /// Expected completion (`start + RPT`, Eq. 2's premise).
    pub completion: Time,
    /// Expected yield at that completion (Eq. 1).
    pub expected_yield: f64,
    /// The task's decay rate, carried so admission control can evaluate
    /// Eq. 8 from the schedule alone.
    pub decay: f64,
}

/// An expected layout of the queue over the processors, in dispatch order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CandidateSchedule {
    /// Entries in dispatch order (position = place in line).
    pub entries: Vec<ScheduleEntry>,
}

impl CandidateSchedule {
    /// Finds the entry for `id`.
    pub fn entry(&self, id: TaskId) -> Option<&ScheduleEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// Dispatch position of `id` (0 = first).
    pub fn position(&self, id: TaskId) -> Option<usize> {
        self.entries.iter().position(|e| e.id == id)
    }

    /// Entries strictly behind `id` in dispatch order — the tasks a newly
    /// inserted `id` delays (§6's slack cost, Eq. 8).
    pub fn behind(&self, id: TaskId) -> &[ScheduleEntry] {
        match self.position(id) {
            Some(pos) => &self.entries[pos + 1..],
            None => &[],
        }
    }

    /// Sum of expected yields over the whole layout.
    pub fn total_expected_yield(&self) -> f64 {
        self.entries.iter().map(|e| e.expected_yield).sum()
    }

    /// The latest expected completion (`Time::ZERO` when empty).
    pub fn makespan(&self) -> Time {
        self.entries
            .iter()
            .map(|e| e.completion)
            .max()
            .unwrap_or(Time::ZERO)
    }
}

/// Builds a candidate schedule for `jobs` over processors that become free
/// at `processor_free` (entries may be in the past; they are clamped to
/// `now`). Running tasks are *not* rescheduled: model them via their
/// processor's free time.
pub fn build_candidate(
    policy: &Policy,
    mode: ScheduleMode,
    now: Time,
    processor_free: &[Time],
    jobs: &[Job],
) -> CandidateSchedule {
    assert!(!processor_free.is_empty(), "need at least one processor");
    let mut free: Vec<Time> = processor_free.iter().map(|&t| t.max(now)).collect();
    match mode {
        ScheduleMode::Static => build_static(policy, now, &mut free, jobs),
        ScheduleMode::Dynamic => build_dynamic(policy, &mut free, jobs),
    }
}

fn build_static(policy: &Policy, now: Time, free: &mut [Time], jobs: &[Job]) -> CandidateSchedule {
    for job in jobs {
        assert!(
            job.spec.width <= free.len(),
            "{} requests {} processors but the site has {}",
            job.id(),
            job.spec.width,
            free.len()
        );
    }
    let model = policy
        .needs_cost_model()
        .then(|| CostModel::build(now, jobs));
    let ctx = match &model {
        Some(m) => ScoreCtx::with_cost(now, m),
        None => ScoreCtx::simple(now),
    };
    let mut order: Vec<(usize, f64)> = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| (i, policy.score(j, &ctx)))
        .collect();
    // Descending score; ties to lower task id for determinism.
    order.sort_by(|a, b| {
        b.1.total_cmp(&a.1)
            .then_with(|| jobs[a.0].id().cmp(&jobs[b.0].id()))
    });
    let mut entries = Vec::with_capacity(jobs.len());
    for (idx, _) in order {
        let job = &jobs[idx];
        entries.push(place(free, job));
    }
    CandidateSchedule { entries }
}

/// Gang-places `job` on its `width` earliest-free processors: the start is
/// the latest of those frees (the earlier ones idle until the gang can
/// launch together, the usual internal fragmentation of gang scheduling).
///
/// Tie-break: processors are ranked by `(free_time, index)`, so among
/// equally early processors the lowest-indexed ones are taken — the same
/// order the previous repeated-min scan produced, pinned here so recorded
/// schedules replay identically. Selection runs in `O(p)` expected
/// (`select_nth_unstable_by`) instead of the old `O(width · p)` repeated
/// min with an `O(width)` membership scan per probe.
fn place(free: &mut [Time], job: &Job) -> ScheduleEntry {
    let width = job.spec.width;
    debug_assert!(width >= 1, "gangs have at least one member");
    debug_assert!(width <= free.len(), "width <= processor count");
    let start = if width == 1 {
        // Fast path: one scan for the earliest free, no index buffer.
        let mut best = 0;
        for (i, t) in free.iter().enumerate().skip(1) {
            if *t < free[best] {
                best = i;
            }
        }
        let s = free[best];
        free[best] = s + job.rpt;
        s
    } else {
        let mut idx: Vec<usize> = (0..free.len()).collect();
        let (earlier, nth, _) =
            idx.select_nth_unstable_by(width - 1, |&a, &b| free[a].cmp(&free[b]).then(a.cmp(&b)));
        // The partition pivot is the gang's latest-free member, i.e. the
        // gang's start time; everything left of it joins the gang.
        let s = free[*nth];
        let completion = s + job.rpt;
        free[*nth] = completion;
        for &i in earlier.iter() {
            free[i] = completion;
        }
        s
    };
    let completion = start + job.rpt;
    ScheduleEntry {
        id: job.id(),
        start,
        completion,
        expected_yield: job.spec.yield_at(completion),
        decay: job.spec.decay,
    }
}

fn build_dynamic(policy: &Policy, free: &mut [Time], jobs: &[Job]) -> CandidateSchedule {
    // One persistent pool across the whole layout instead of rebuilding
    // scores (and the cost model) from scratch at every dispatch instant:
    // selection is a heap peek for time-invariant policies and an O(n)
    // re-rank over incrementally maintained state otherwise.
    let mut pool = PendingPool::new(*policy);
    for job in jobs {
        assert!(
            job.spec.width <= free.len(),
            "{} requests {} processors but the site has {}",
            job.id(),
            job.spec.width,
            free.len()
        );
        pool.push(job.clone());
    }
    let mut entries = Vec::with_capacity(jobs.len());
    while !pool.is_empty() {
        // Score at the next dispatch instant: the earliest processor-free
        // time (a wider pick launches later; its own entry records that).
        let t = free.iter().copied().min().expect("non-empty free list");
        let pick = pool.select_best(t).expect("non-empty pool");
        let job = pool.swap_remove(pick);
        entries.push(place(free, &job));
    }
    CandidateSchedule { entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbts_sim::Duration;
    use mbts_workload::{PenaltyBound, TaskSpec};

    fn job(id: u64, runtime: f64, value: f64, decay: f64) -> Job {
        Job::new(TaskSpec::new(
            id,
            0.0,
            runtime,
            value,
            decay,
            PenaltyBound::Unbounded,
        ))
    }

    fn free(n: usize) -> Vec<Time> {
        vec![Time::ZERO; n]
    }

    #[test]
    fn single_processor_fcfs_is_arrival_order() {
        let jobs = vec![job(0, 5.0, 10.0, 0.1), job(1, 3.0, 10.0, 0.1)];
        let s = build_candidate(
            &Policy::Fcfs,
            ScheduleMode::Static,
            Time::ZERO,
            &free(1),
            &jobs,
        );
        assert_eq!(s.entries[0].id, TaskId(0));
        assert_eq!(s.entries[0].start, Time::ZERO);
        assert_eq!(s.entries[0].completion, Time::from(5.0));
        assert_eq!(s.entries[1].start, Time::from(5.0));
        assert_eq!(s.entries[1].completion, Time::from(8.0));
    }

    #[test]
    fn srpt_orders_shortest_first() {
        let jobs = vec![
            job(0, 9.0, 10.0, 0.1),
            job(1, 1.0, 10.0, 0.1),
            job(2, 4.0, 10.0, 0.1),
        ];
        let s = build_candidate(
            &Policy::Srpt,
            ScheduleMode::Static,
            Time::ZERO,
            &free(1),
            &jobs,
        );
        let ids: Vec<u64> = s.entries.iter().map(|e| e.id.0).collect();
        assert_eq!(ids, vec![1, 2, 0]);
    }

    #[test]
    fn two_processors_pack_in_parallel() {
        let jobs = vec![
            job(0, 4.0, 10.0, 0.1),
            job(1, 4.0, 10.0, 0.1),
            job(2, 4.0, 10.0, 0.1),
        ];
        let s = build_candidate(
            &Policy::Fcfs,
            ScheduleMode::Static,
            Time::ZERO,
            &free(2),
            &jobs,
        );
        assert_eq!(s.entries[0].start, Time::ZERO);
        assert_eq!(s.entries[1].start, Time::ZERO);
        assert_eq!(s.entries[2].start, Time::from(4.0));
        assert_eq!(s.makespan(), Time::from(8.0));
    }

    #[test]
    fn busy_processors_clamp_to_free_times() {
        let jobs = vec![job(0, 2.0, 10.0, 0.1)];
        let busy = vec![Time::from(7.0), Time::from(3.0)];
        let s = build_candidate(
            &Policy::Fcfs,
            ScheduleMode::Static,
            Time::from(1.0),
            &busy,
            &jobs,
        );
        // Goes to the processor free at t = 3.
        assert_eq!(s.entries[0].start, Time::from(3.0));
        assert_eq!(s.entries[0].completion, Time::from(5.0));
    }

    #[test]
    fn past_free_times_clamp_to_now() {
        let jobs = vec![job(0, 2.0, 10.0, 0.1)];
        let s = build_candidate(
            &Policy::Fcfs,
            ScheduleMode::Static,
            Time::from(10.0),
            &[Time::from(1.0)],
            &jobs,
        );
        assert_eq!(s.entries[0].start, Time::from(10.0));
    }

    #[test]
    fn expected_yield_reflects_queueing_delay() {
        // Two equal tasks on one processor: the second one's yield decays.
        let jobs = vec![job(0, 10.0, 100.0, 1.0), job(1, 10.0, 100.0, 1.0)];
        let s = build_candidate(
            &Policy::Fcfs,
            ScheduleMode::Static,
            Time::ZERO,
            &free(1),
            &jobs,
        );
        assert_eq!(s.entries[0].expected_yield, 100.0);
        // Second completes at 20, earliest possible 10 → delay 10, decay 1.
        assert_eq!(s.entries[1].expected_yield, 90.0);
        assert_eq!(s.total_expected_yield(), 190.0);
    }

    #[test]
    fn behind_returns_later_entries() {
        let jobs = vec![
            job(0, 1.0, 100.0, 1.0),
            job(1, 1.0, 50.0, 1.0),
            job(2, 1.0, 20.0, 1.0),
        ];
        let s = build_candidate(
            &Policy::FirstPrice,
            ScheduleMode::Static,
            Time::ZERO,
            &free(1),
            &jobs,
        );
        // FirstPrice: unit gains 100, 50, 20 → order 0, 1, 2.
        let behind0 = s.behind(TaskId(0));
        assert_eq!(behind0.len(), 2);
        assert!(s.behind(TaskId(2)).is_empty());
        assert!(s.behind(TaskId(99)).is_empty());
        assert_eq!(s.position(TaskId(1)), Some(1));
    }

    #[test]
    fn dynamic_mode_reevaluates_scores() {
        // Construct a case where static and dynamic disagree: a task that
        // expires (stops losing value) by the time the second slot opens.
        // Static (scored at t=0) ranks it by its t=0 yield; dynamic sees
        // its yield already floored at the later dispatch instant.
        let fresh = Job::new(TaskSpec::new(0, 0.0, 10.0, 100.0, 1.0, PenaltyBound::ZERO));
        // Expires fast: value 6, decay 3, runtime 1 → expire at t = 3.
        let dying = Job::new(TaskSpec::new(1, 0.0, 1.0, 6.0, 3.0, PenaltyBound::ZERO));
        let jobs = vec![fresh, dying];
        let sta = build_candidate(
            &Policy::FirstPrice,
            ScheduleMode::Static,
            Time::ZERO,
            &free(1),
            &jobs,
        );
        let dyn_ = build_candidate(
            &Policy::FirstPrice,
            ScheduleMode::Dynamic,
            Time::ZERO,
            &free(1),
            &jobs,
        );
        // Both agree on the first pick (dying: unit gain 3/1=3 vs 90/10=9
        // → fresh first actually). Verify yields are consistent in both.
        for s in [&sta, &dyn_] {
            for e in &s.entries {
                let j = jobs.iter().find(|j| j.id() == e.id).unwrap();
                assert_eq!(j.spec.yield_at(e.completion), e.expected_yield);
            }
        }
    }

    #[test]
    fn static_and_dynamic_agree_for_time_invariant_scores() {
        // SWPT scores don't depend on `now`: both modes give one ordering.
        let jobs: Vec<Job> = (0..10)
            .map(|i| job(i, 1.0 + (i % 4) as f64, 50.0, 0.2 + (i % 3) as f64))
            .collect();
        let a = build_candidate(
            &Policy::Swpt,
            ScheduleMode::Static,
            Time::ZERO,
            &free(3),
            &jobs,
        );
        let b = build_candidate(
            &Policy::Swpt,
            ScheduleMode::Dynamic,
            Time::ZERO,
            &free(3),
            &jobs,
        );
        let ids_a: Vec<u64> = a.entries.iter().map(|e| e.id.0).collect();
        let ids_b: Vec<u64> = b.entries.iter().map(|e| e.id.0).collect();
        assert_eq!(ids_a, ids_b);
    }

    #[test]
    fn first_reward_schedule_builds_with_cost_model() {
        let jobs: Vec<Job> = (0..6).map(|i| job(i, 5.0, 50.0, 1.0 + i as f64)).collect();
        for mode in [ScheduleMode::Static, ScheduleMode::Dynamic] {
            let s = build_candidate(
                &Policy::first_reward(0.3, 0.01),
                mode,
                Time::ZERO,
                &free(2),
                &jobs,
            );
            assert_eq!(s.entries.len(), 6);
        }
    }

    #[test]
    fn partially_run_jobs_use_rpt_not_runtime() {
        let mut j = job(0, 10.0, 100.0, 1.0);
        j.advance(Duration::from(7.0));
        let s = build_candidate(
            &Policy::Fcfs,
            ScheduleMode::Static,
            Time::from(50.0),
            &free(1),
            &[j],
        );
        assert_eq!(s.entries[0].completion, Time::from(53.0));
    }

    #[test]
    fn empty_queue_empty_schedule() {
        let s = build_candidate(
            &Policy::Fcfs,
            ScheduleMode::Static,
            Time::ZERO,
            &free(2),
            &[],
        );
        assert!(s.entries.is_empty());
        assert_eq!(s.total_expected_yield(), 0.0);
        assert_eq!(s.makespan(), Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn no_processors_rejected() {
        let _ = build_candidate(&Policy::Fcfs, ScheduleMode::Static, Time::ZERO, &[], &[]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use mbts_workload::{PenaltyBound, TaskSpec};
    use proptest::prelude::*;

    proptest! {
        /// Schedule invariants, both modes, all policies: every job
        /// appears exactly once; completion = start + rpt; no processor
        /// ever runs two tasks at once; starts are never before `now`.
        #[test]
        fn schedule_invariants(
            procs in 1usize..5,
            jobs_seed in proptest::collection::vec((0.1f64..30.0, 0.0f64..200.0, 0.0f64..5.0, 1usize..=4), 1..40),
            now in 0.0f64..50.0,
            mode_dyn in any::<bool>(),
        ) {
            let jobs: Vec<Job> = jobs_seed
                .into_iter()
                .enumerate()
                .map(|(i, (rt, v, d, w))| {
                    Job::new(
                        TaskSpec::new(i as u64, 0.0, rt, v, d, PenaltyBound::Unbounded)
                            .with_width(w.min(procs)),
                    )
                })
                .collect();
            let mode = if mode_dyn { ScheduleMode::Dynamic } else { ScheduleMode::Static };
            let now = Time::from(now);
            let frees = vec![Time::ZERO; procs];
            for policy in [Policy::Fcfs, Policy::Srpt, Policy::FirstPrice, Policy::first_reward(0.4, 0.01)] {
                let s = build_candidate(&policy, mode, now, &frees, &jobs);
                prop_assert_eq!(s.entries.len(), jobs.len());
                // Exactly once each.
                let mut seen: Vec<u64> = s.entries.iter().map(|e| e.id.0).collect();
                seen.sort_unstable();
                let mut expect: Vec<u64> = jobs.iter().map(|j| j.id().0).collect();
                expect.sort_unstable();
                prop_assert_eq!(seen, expect);
                // Arithmetic + causality.
                for e in &s.entries {
                    let j = jobs.iter().find(|j| j.id() == e.id).unwrap();
                    prop_assert!(e.start >= now);
                    prop_assert!(e.completion.approx_eq(e.start + j.rpt));
                }
                // Capacity: at any instant the in-flight *processor*
                // usage (Σ widths of running gangs) never exceeds the
                // pool.
                let mut events: Vec<(Time, i64)> = Vec::new();
                for e in &s.entries {
                    let j = jobs.iter().find(|j| j.id() == e.id).unwrap();
                    let w = j.spec.width as i64;
                    events.push((e.start, w));
                    events.push((e.completion, -w));
                }
                events.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
                let mut in_flight: i64 = 0;
                for (_, delta) in events {
                    in_flight += delta;
                    prop_assert!(in_flight <= procs as i64);
                    prop_assert!(in_flight >= 0);
                }
            }
        }
    }
}
