//! Value functions (§3 of the paper, Figure 2).
//!
//! A value function maps a task's **completion time** to the value the
//! user pays for it. The paper's primary form is linear decay —
//! `yield = value − delay · decay`, optionally floored at a penalty bound
//! — captured by [`LinearDecay`]. §3 notes the framework "can generalize
//! to value functions that decay at variable rates"; [`PiecewiseLinear`]
//! implements that generalization (used by the extension experiments and
//! by contracts in the market layer).

use mbts_sim::{Duration, Time};
use mbts_workload::{PenaltyBound, TaskSpec};
use serde::{Deserialize, Serialize};

/// A mapping from completion time to user value.
pub trait ValueFunction {
    /// Value earned for a completion at absolute time `completion`.
    fn value_at(&self, completion: Time) -> f64;

    /// The maximum attainable value.
    fn max_value(&self) -> f64;

    /// Instantaneous decay rate (value lost per unit of additional delay)
    /// at the given completion time. Zero once the function has hit its
    /// floor.
    fn decay_at(&self, completion: Time) -> f64;

    /// The earliest completion time achieving [`max_value`](Self::max_value).
    fn earliest_completion(&self) -> Time;

    /// The absolute time at which the function stops decaying
    /// ([`Time::INFINITY`] if it never does).
    fn expire_time(&self) -> Time;
}

/// The paper's linear-decay value function: full `value` for completion at
/// or before `earliest`, then decaying at `decay` per time unit, floored
/// at `-max_penalty` when bounded.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearDecay {
    /// Earliest achievable completion (`arrival + runtime`).
    pub earliest: Time,
    /// Maximum value.
    pub value: f64,
    /// Decay rate per time unit of delay.
    pub decay: f64,
    /// Penalty bound.
    pub bound: PenaltyBound,
}

impl LinearDecay {
    /// The value function carried by a submitted task.
    pub fn from_spec(spec: &TaskSpec) -> Self {
        LinearDecay {
            earliest: spec.arrival + spec.runtime,
            value: spec.value,
            decay: spec.decay,
            bound: spec.bound,
        }
    }

    /// A value function anchored at an explicit earliest completion; used
    /// by contracts, whose decay is re-anchored at the *negotiated*
    /// completion time rather than the theoretical minimum.
    pub fn anchored(earliest: Time, value: f64, decay: f64, bound: PenaltyBound) -> Self {
        assert!(decay >= 0.0, "decay must be non-negative");
        LinearDecay {
            earliest,
            value,
            decay,
            bound,
        }
    }
}

impl ValueFunction for LinearDecay {
    fn value_at(&self, completion: Time) -> f64 {
        let delay = (completion - self.earliest).max_zero();
        (self.value - delay.as_f64() * self.decay).max(self.bound.floor())
    }

    fn max_value(&self) -> f64 {
        self.value
    }

    fn decay_at(&self, completion: Time) -> f64 {
        if completion >= self.expire_time() {
            0.0
        } else {
            self.decay
        }
    }

    fn earliest_completion(&self) -> Time {
        self.earliest
    }

    fn expire_time(&self) -> Time {
        match self.bound {
            PenaltyBound::Unbounded => Time::INFINITY,
            PenaltyBound::Bounded { max_penalty } => {
                if self.decay == 0.0 {
                    Time::INFINITY
                } else {
                    self.earliest + Duration::new((self.value + max_penalty) / self.decay)
                }
            }
        }
    }
}

/// A piecewise-linear value function: a start value and a sequence of
/// `(duration, rate)` decay segments, optionally floored. Generalizes
/// [`LinearDecay`] to variable decay rates (the paper's §3 extension).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseLinear {
    /// Earliest achievable completion; full value at or before this time.
    pub earliest: Time,
    /// Value at `earliest`.
    pub value: f64,
    /// Decay segments `(length, rate)` applied in order after `earliest`.
    /// After the last segment the *final* segment's rate continues forever.
    pub segments: Vec<(Duration, f64)>,
    /// Penalty floor.
    pub bound: PenaltyBound,
}

impl PiecewiseLinear {
    /// Builds a piecewise function; panics on negative rates or lengths.
    pub fn new(
        earliest: Time,
        value: f64,
        segments: Vec<(Duration, f64)>,
        bound: PenaltyBound,
    ) -> Self {
        assert!(!segments.is_empty(), "need at least one decay segment");
        for (len, rate) in &segments {
            assert!(len.as_f64() >= 0.0, "segment length must be non-negative");
            assert!(*rate >= 0.0, "decay rate must be non-negative");
        }
        PiecewiseLinear {
            earliest,
            value,
            segments,
            bound,
        }
    }

    /// A single-rate function, equivalent to [`LinearDecay`].
    pub fn single_rate(earliest: Time, value: f64, decay: f64, bound: PenaltyBound) -> Self {
        Self::new(earliest, value, vec![(Duration::INFINITY, decay)], bound)
    }

    /// Total decay accumulated after `delay` beyond the earliest
    /// completion, before flooring.
    fn raw_decay(&self, delay: Duration) -> f64 {
        let mut remaining = delay.max_zero().as_f64();
        let mut lost = 0.0;
        let (mut last_rate, mut consumed_all) = (0.0, true);
        for (len, rate) in &self.segments {
            last_rate = *rate;
            let span = len.as_f64().min(remaining);
            lost += span * rate;
            remaining -= span;
            if remaining <= 0.0 {
                consumed_all = false;
                break;
            }
        }
        if consumed_all && remaining > 0.0 {
            lost += remaining * last_rate;
        }
        lost
    }
}

impl ValueFunction for PiecewiseLinear {
    fn value_at(&self, completion: Time) -> f64 {
        let delay = (completion - self.earliest).max_zero();
        (self.value - self.raw_decay(delay)).max(self.bound.floor())
    }

    fn max_value(&self) -> f64 {
        self.value
    }

    fn decay_at(&self, completion: Time) -> f64 {
        if self.value_at(completion) <= self.bound.floor() {
            return 0.0;
        }
        let delay = (completion - self.earliest).max_zero().as_f64();
        let mut offset = 0.0;
        let mut last_rate = 0.0;
        for (len, rate) in &self.segments {
            last_rate = *rate;
            if delay < offset + len.as_f64() {
                return *rate;
            }
            offset += len.as_f64();
        }
        last_rate
    }

    fn earliest_completion(&self) -> Time {
        self.earliest
    }

    fn expire_time(&self) -> Time {
        let floor = self.bound.floor();
        if floor == f64::NEG_INFINITY {
            return Time::INFINITY;
        }
        // Walk segments until the accumulated decay reaches value − floor.
        let budget = self.value - floor;
        let mut lost = 0.0;
        let mut offset = 0.0;
        let mut last_rate = 0.0;
        for (len, rate) in &self.segments {
            last_rate = *rate;
            let seg_loss = len.as_f64() * rate;
            if lost + seg_loss >= budget {
                let need = (budget - lost) / rate;
                return self.earliest + Duration::new(offset + need);
            }
            lost += seg_loss;
            offset += len.as_f64();
        }
        if last_rate > 0.0 {
            self.earliest + Duration::new(offset + (budget - lost) / last_rate)
        } else {
            Time::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TaskSpec {
        TaskSpec::new(0, 10.0, 5.0, 100.0, 2.0, PenaltyBound::ZERO)
    }

    #[test]
    fn linear_matches_task_spec_yield() {
        let s = spec();
        let vf = LinearDecay::from_spec(&s);
        for t in [0.0, 15.0, 20.0, 64.9, 65.0, 200.0] {
            assert_eq!(
                vf.value_at(Time::from(t)),
                s.yield_at(Time::from(t)),
                "at {t}"
            );
        }
        assert_eq!(vf.earliest_completion(), Time::from(15.0));
        assert_eq!(vf.expire_time(), s.expire_time());
        assert_eq!(vf.max_value(), 100.0);
    }

    #[test]
    fn linear_decay_rate_goes_to_zero_at_expiry() {
        let vf = LinearDecay::from_spec(&spec());
        assert_eq!(vf.decay_at(Time::from(20.0)), 2.0);
        assert_eq!(vf.decay_at(Time::from(65.0)), 0.0);
        assert_eq!(vf.decay_at(Time::from(100.0)), 0.0);
    }

    #[test]
    fn unbounded_linear_never_expires() {
        let vf = LinearDecay::anchored(Time::ZERO, 10.0, 1.0, PenaltyBound::Unbounded);
        assert_eq!(vf.expire_time(), Time::INFINITY);
        assert_eq!(vf.decay_at(Time::from(1e9)), 1.0);
        assert_eq!(vf.value_at(Time::from(100.0)), -90.0);
    }

    #[test]
    fn anchored_shifts_origin() {
        let vf = LinearDecay::anchored(Time::from(50.0), 10.0, 1.0, PenaltyBound::ZERO);
        assert_eq!(vf.value_at(Time::from(40.0)), 10.0);
        assert_eq!(vf.value_at(Time::from(55.0)), 5.0);
        assert_eq!(vf.value_at(Time::from(60.0)), 0.0);
    }

    #[test]
    fn piecewise_single_rate_equals_linear() {
        let lin = LinearDecay::anchored(Time::from(10.0), 100.0, 2.0, PenaltyBound::ZERO);
        let pw = PiecewiseLinear::single_rate(Time::from(10.0), 100.0, 2.0, PenaltyBound::ZERO);
        for t in [0.0, 10.0, 30.0, 60.0, 100.0] {
            assert!((lin.value_at(Time::from(t)) - pw.value_at(Time::from(t))).abs() < 1e-12);
        }
        assert_eq!(lin.expire_time(), pw.expire_time());
    }

    #[test]
    fn piecewise_multiple_segments() {
        // Slow decay (rate 1) for 10 t.u., then fast (rate 5) forever.
        let pw = PiecewiseLinear::new(
            Time::ZERO,
            100.0,
            vec![(Duration::from(10.0), 1.0), (Duration::INFINITY, 5.0)],
            PenaltyBound::Unbounded,
        );
        assert_eq!(pw.value_at(Time::from(5.0)), 95.0);
        assert_eq!(pw.value_at(Time::from(10.0)), 90.0);
        assert_eq!(pw.value_at(Time::from(12.0)), 80.0);
        assert_eq!(pw.decay_at(Time::from(5.0)), 1.0);
        assert_eq!(pw.decay_at(Time::from(15.0)), 5.0);
    }

    #[test]
    fn piecewise_last_rate_continues() {
        // A finite last segment: its rate continues past its end.
        let pw = PiecewiseLinear::new(
            Time::ZERO,
            20.0,
            vec![(Duration::from(2.0), 1.0), (Duration::from(3.0), 4.0)],
            PenaltyBound::Unbounded,
        );
        // delay 10 = 2·1 + 3·4 + 5·4 = 2 + 12 + 20 = 34 lost.
        assert_eq!(pw.value_at(Time::from(10.0)), 20.0 - 34.0);
    }

    #[test]
    fn piecewise_expiry_bounded() {
        let pw = PiecewiseLinear::new(
            Time::ZERO,
            10.0,
            vec![(Duration::from(5.0), 1.0), (Duration::INFINITY, 5.0)],
            PenaltyBound::ZERO,
        );
        // Lose 5 over first 5 t.u., remaining 5 at rate 5 → +1 t.u. → expiry at 6.
        assert_eq!(pw.expire_time(), Time::from(6.0));
        assert_eq!(pw.value_at(Time::from(6.0)), 0.0);
        assert_eq!(pw.value_at(Time::from(100.0)), 0.0);
        assert_eq!(pw.decay_at(Time::from(7.0)), 0.0);
    }

    #[test]
    fn piecewise_zero_rate_tail_never_expires() {
        let pw = PiecewiseLinear::new(
            Time::ZERO,
            10.0,
            vec![(Duration::from(5.0), 1.0), (Duration::INFINITY, 0.0)],
            PenaltyBound::ZERO,
        );
        assert_eq!(pw.expire_time(), Time::INFINITY);
        assert_eq!(pw.value_at(Time::from(1e6)), 5.0);
    }

    #[test]
    #[should_panic(expected = "at least one decay segment")]
    fn empty_segments_rejected() {
        let _ = PiecewiseLinear::new(Time::ZERO, 1.0, vec![], PenaltyBound::ZERO);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_bound() -> impl Strategy<Value = PenaltyBound> {
        prop_oneof![
            Just(PenaltyBound::Unbounded),
            (0.0f64..50.0).prop_map(|max_penalty| PenaltyBound::Bounded { max_penalty }),
        ]
    }

    fn arb_piecewise() -> impl Strategy<Value = PiecewiseLinear> {
        (
            0.0f64..100.0,
            0.0f64..500.0,
            proptest::collection::vec((0.1f64..50.0, 0.0f64..10.0), 1..5),
            arb_bound(),
        )
            .prop_map(|(origin, value, segs, bound)| {
                PiecewiseLinear::new(
                    Time::from(origin),
                    value,
                    segs.into_iter()
                        .map(|(len, rate)| (Duration::from(len), rate))
                        .collect(),
                    bound,
                )
            })
    }

    proptest! {
        /// Piecewise value functions are non-increasing in completion time.
        #[test]
        fn piecewise_monotone(pw in arb_piecewise(), t in 0.0f64..500.0, dt in 0.0f64..500.0) {
            let v1 = pw.value_at(Time::from(t));
            let v2 = pw.value_at(Time::from(t + dt));
            prop_assert!(v2 <= v1 + 1e-9);
        }

        /// Value is always within [floor, max_value].
        #[test]
        fn piecewise_bounded(pw in arb_piecewise(), t in 0.0f64..2000.0) {
            let v = pw.value_at(Time::from(t));
            prop_assert!(v <= pw.max_value() + 1e-9);
            prop_assert!(v >= pw.bound.floor());
        }

        /// After the expiry time the value is pinned at the floor.
        #[test]
        fn piecewise_pinned_after_expiry(pw in arb_piecewise(), dt in 0.0f64..1000.0) {
            let expiry = pw.expire_time();
            if expiry < Time::INFINITY {
                let v = pw.value_at(expiry + Duration::from(dt));
                prop_assert!((v - pw.bound.floor()).abs() < 1e-6);
            }
        }

        /// decay_at is the (right-sided) derivative of value_at, up to
        /// flooring effects.
        #[test]
        fn decay_is_local_slope(pw in arb_piecewise(), t in 0.0f64..300.0) {
            let at = Time::from(t);
            if at > pw.earliest && pw.value_at(at) > pw.bound.floor() + 1e-6 {
                let h = 1e-7;
                let slope = (pw.value_at(at) - pw.value_at(at + Duration::from(h))) / h;
                // Only check in the interior of a segment (skip breakpoints).
                let rate = pw.decay_at(at);
                let rate_later = pw.decay_at(at + Duration::from(h));
                if (rate - rate_later).abs() < 1e-12 {
                    prop_assert!((slope - rate).abs() < 1e-3,
                        "slope {slope} vs rate {rate} at {t}");
                }
            }
        }
    }
}
