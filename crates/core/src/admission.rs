//! Admission control (§6, Equations 7 and 8).
//!
//! When a task bid arrives, the site integrates it into its candidate
//! schedule, reads off its expected completion and yield, and computes its
//! **slack** — the additional delay the task could absorb before its
//! reward drops below the (zero) yield threshold:
//!
//! ```text
//! slack_i = (PV_i − cost_i) / decay_i                    (Eq. 7)
//! cost_i  = Σ_{j behind i} decay_j · runtime_i           (Eq. 8)
//! ```
//!
//! `PV_i` is the present value of the expected yield at the candidate
//! completion; `cost_i` estimates the damage accepting `i` does to the
//! tasks scheduled behind it — each is pushed back by (up to) `i`'s
//! runtime, losing `decay_j · runtime_i`. (The paper's Eq. 8 subscripts
//! are ambiguous between `runtime_i` and `runtime_j`; the surrounding text
//! — "those tasks that will be delayed … by accepting this new task *i*" —
//! fixes the delay to the new task's runtime, which is what we implement.)
//!
//! The acceptance heuristic rejects tasks whose slack falls below a
//! threshold; Figure 7 shows the threshold's risk/reward trade-off.

use crate::heuristics::Policy;
use crate::job::Job;
use crate::schedule::{build_candidate, CandidateSchedule, ScheduleMode};
use mbts_sim::Time;
use mbts_workload::workflow::SuccessorContext;
use serde::{Deserialize, Serialize};

/// The site's acceptance heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum AdmissionPolicy {
    /// Accept every task (the constrained setting of §5, and the
    /// "FirstPrice w/o Admission Control" line of Figure 6).
    #[default]
    AcceptAll,
    /// Accept iff `slack_i ≥ threshold` (§6; Figure 6 uses 180).
    SlackThreshold {
        /// Minimum acceptable slack, in time units.
        threshold: f64,
    },
    /// Accept iff the expected yield at the candidate completion is
    /// positive — a simpler baseline for the `ablate admission` study.
    PositiveExpectedYield,
}

/// The outcome of evaluating one proposed task, with the quantities a
/// server bid is built from (§6: expected completion time and price).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionDecision {
    /// Whether the acceptance heuristic admits the task.
    pub accept: bool,
    /// Expected completion in the candidate schedule.
    pub expected_completion: Time,
    /// Expected yield (Eq. 1) at that completion — the server bid's price.
    pub expected_yield: f64,
    /// Present value of that yield (Eq. 3).
    pub present_value: f64,
    /// Eq. 8 cost: damage to tasks behind the candidate.
    pub cost: f64,
    /// Eq. 7 slack, in time units (±∞ for zero-decay tasks).
    pub slack: f64,
}

/// Evaluates `candidate` against a queue (which must already *include*
/// the candidate) per the §6 procedure. `processor_free` models the
/// running tasks; `discount_rate` feeds the PV term (the paper uses the
/// same 1 % as the scheduling heuristic).
#[allow(clippy::too_many_arguments)]
pub fn evaluate_admission(
    admission: &AdmissionPolicy,
    policy: &Policy,
    mode: ScheduleMode,
    discount_rate: f64,
    now: Time,
    processor_free: &[Time],
    queue_with_candidate: &[Job],
    candidate: &Job,
) -> AdmissionDecision {
    let schedule = build_candidate(policy, mode, now, processor_free, queue_with_candidate);
    decision_from_schedule(admission, discount_rate, &schedule, candidate)
}

/// Successor-aware variant of [`evaluate_admission`] (Eq. 7′/8′, see
/// `DESIGN.md` §14): when `successors` carries a non-empty
/// [`SuccessorContext`], the bid accounts for the candidate's downstream
/// critical-path runtime and the decayed value of everything behind it
/// in its workflow. With no context (or an empty one) this is exactly
/// [`evaluate_admission`].
#[allow(clippy::too_many_arguments)]
pub fn evaluate_admission_with_successors(
    admission: &AdmissionPolicy,
    policy: &Policy,
    mode: ScheduleMode,
    discount_rate: f64,
    now: Time,
    processor_free: &[Time],
    queue_with_candidate: &[Job],
    candidate: &Job,
    successors: Option<&SuccessorContext>,
) -> AdmissionDecision {
    let schedule = build_candidate(policy, mode, now, processor_free, queue_with_candidate);
    decision_from_schedule_with_successors(
        admission,
        discount_rate,
        &schedule,
        candidate,
        successors,
    )
}

/// Computes the decision given an already-built candidate schedule
/// containing the candidate (lets the site reuse one schedule for both
/// the server bid and the decision).
pub fn decision_from_schedule(
    admission: &AdmissionPolicy,
    discount_rate: f64,
    schedule: &CandidateSchedule,
    candidate: &Job,
) -> AdmissionDecision {
    decision_from_schedule_with_successors(admission, discount_rate, schedule, candidate, None)
}

/// Successor-aware decision (Eq. 7′/8′). The candidate's expected yield
/// — the server bid's *price* — stays task-level, but its present value
/// gains the estimated decayed value of its workflow descendants at
/// their earliest possible completion (`C_i + D_i`, the candidate's
/// completion plus the downstream critical path), discounted over that
/// longer horizon:
///
/// ```text
/// PV′_i   = (y_i(C_i) + V̂(C_i + D_i)) / (1 + r·(RPT_i + D_i))
/// slack′_i = (PV′_i − cost_i) / (decay_i + Σ_d decay_d)
/// ```
///
/// Eq. 8's cost is unchanged — delaying the queue behind the candidate
/// costs the same regardless of what the candidate unlocks. The slack
/// denominator grows by the summed descendant decay because delaying
/// this task delays its whole downstream cone. An empty context reduces
/// both expressions exactly to Eq. 7/8.
pub fn decision_from_schedule_with_successors(
    admission: &AdmissionPolicy,
    discount_rate: f64,
    schedule: &CandidateSchedule,
    candidate: &Job,
    successors: Option<&SuccessorContext>,
) -> AdmissionDecision {
    let entry = schedule
        .entry(candidate.id())
        .expect("candidate must be present in its own candidate schedule");
    let expected_yield = entry.expected_yield;
    let succ = successors.filter(|s| !s.is_empty());
    let present_value = match succ {
        None => expected_yield / (1.0 + discount_rate * candidate.rpt.as_f64()),
        Some(s) => {
            let downstream_done = entry.completion + mbts_sim::Duration::new(s.downstream_runtime);
            let downstream_value = s.downstream_value_at(downstream_done);
            (expected_yield + downstream_value)
                / (1.0 + discount_rate * (candidate.rpt.as_f64() + s.downstream_runtime))
        }
    };

    // Eq. 8: each task behind the candidate is pushed back by the
    // candidate's runtime.
    let runtime_i = candidate.spec.runtime.as_f64();
    let behind_decay: f64 = schedule
        .behind(candidate.id())
        .iter()
        .map(|e| e.decay)
        .sum();
    let cost = behind_decay * runtime_i;

    let effective_decay = candidate.spec.decay + succ.map(|s| s.sum_decay).unwrap_or(0.0);
    let slack = if effective_decay > 0.0 {
        (present_value - cost) / effective_decay
    } else if present_value - cost >= 0.0 {
        f64::INFINITY
    } else {
        f64::NEG_INFINITY
    };

    let accept = match admission {
        AdmissionPolicy::AcceptAll => true,
        AdmissionPolicy::SlackThreshold { threshold } => slack >= *threshold,
        AdmissionPolicy::PositiveExpectedYield => expected_yield > 0.0,
    };

    AdmissionDecision {
        accept,
        expected_completion: entry.completion,
        expected_yield,
        present_value,
        cost,
        slack,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbts_workload::{PenaltyBound, TaskSpec};

    fn job(id: u64, arrival: f64, runtime: f64, value: f64, decay: f64) -> Job {
        Job::new(TaskSpec::new(
            id,
            arrival,
            runtime,
            value,
            decay,
            PenaltyBound::Unbounded,
        ))
    }

    fn eval(
        admission: AdmissionPolicy,
        queue: &[Job],
        candidate: &Job,
        procs: usize,
    ) -> AdmissionDecision {
        evaluate_admission(
            &admission,
            &Policy::FirstPrice,
            ScheduleMode::Static,
            0.01,
            Time::ZERO,
            &vec![Time::ZERO; procs],
            queue,
            candidate,
        )
    }

    #[test]
    fn lone_task_on_idle_site_has_full_slack() {
        let c = job(0, 0.0, 10.0, 100.0, 0.5);
        let d = eval(AdmissionPolicy::AcceptAll, std::slice::from_ref(&c), &c, 1);
        assert!(d.accept);
        assert_eq!(d.expected_completion, Time::from(10.0));
        assert_eq!(d.expected_yield, 100.0);
        assert_eq!(d.cost, 0.0);
        // PV = 100/(1 + 0.01·10) = 90.909…; slack = PV/0.5 ≈ 181.8
        assert!((d.present_value - 100.0 / 1.1).abs() < 1e-9);
        assert!((d.slack - (100.0 / 1.1) / 0.5).abs() < 1e-6);
    }

    #[test]
    fn slack_threshold_rejects_tight_tasks() {
        let c = job(0, 0.0, 10.0, 100.0, 0.5);
        let accept = eval(
            AdmissionPolicy::SlackThreshold { threshold: 180.0 },
            std::slice::from_ref(&c),
            &c,
            1,
        );
        assert!(accept.accept, "slack {} ≥ 180", accept.slack);
        let reject = eval(
            AdmissionPolicy::SlackThreshold { threshold: 200.0 },
            std::slice::from_ref(&c),
            &c,
            1,
        );
        assert!(!reject.accept, "slack {} < 200", reject.slack);
    }

    #[test]
    fn queueing_behind_others_reduces_yield_and_slack() {
        // A crowded queue of higher-unit-gain tasks pushes the candidate
        // back, shrinking both its expected yield and its slack.
        let mut queue: Vec<Job> = (1..=4).map(|i| job(i, 0.0, 10.0, 500.0, 0.5)).collect();
        let c = job(0, 0.0, 10.0, 100.0, 0.5);
        queue.push(c.clone());
        let crowded = eval(AdmissionPolicy::AcceptAll, &queue, &c, 1);
        let alone = eval(AdmissionPolicy::AcceptAll, std::slice::from_ref(&c), &c, 1);
        assert!(crowded.expected_yield < alone.expected_yield);
        assert!(crowded.slack < alone.slack);
        // Completion pushed to the back: 5 tasks × 10 = 50.
        assert_eq!(crowded.expected_completion, Time::from(50.0));
    }

    #[test]
    fn tasks_behind_candidate_create_cost() {
        // Candidate beats one queued task under FirstPrice, so that task
        // sits behind it and contributes decay_j · runtime_i.
        let behind = job(1, 0.0, 10.0, 10.0, 2.0); // unit gain 1
        let c = job(0, 0.0, 10.0, 500.0, 0.5); // unit gain 50
        let d = eval(
            AdmissionPolicy::AcceptAll,
            &[behind.clone(), c.clone()],
            &c,
            1,
        );
        // cost = 2.0 (behind's decay) × 10 (candidate runtime) = 20.
        assert!((d.cost - 20.0).abs() < 1e-9);
        assert!(d.slack < d.present_value / 0.5);
    }

    #[test]
    fn zero_decay_candidate_has_infinite_slack() {
        let c = job(0, 0.0, 10.0, 100.0, 0.0);
        let d = eval(
            AdmissionPolicy::SlackThreshold { threshold: 1e9 },
            std::slice::from_ref(&c),
            &c,
            1,
        );
        assert!(d.slack.is_infinite() && d.slack > 0.0);
        assert!(d.accept);
    }

    #[test]
    fn zero_decay_candidate_with_net_loss_has_negative_infinite_slack() {
        // Zero-decay candidate whose acceptance damages the queue more
        // than its PV: slack = −∞, rejected by any threshold.
        let urgent = job(1, 0.0, 10.0, 1.0, 50.0); // huge decay behind
        let c = job(0, 0.0, 10.0, 5.0, 0.0);
        let d = evaluate_admission(
            &AdmissionPolicy::SlackThreshold { threshold: -1e12 },
            &Policy::FirstPrice,
            ScheduleMode::Static,
            0.0,
            Time::ZERO,
            &[Time::ZERO],
            &[urgent.clone(), c.clone()],
            &c,
        );
        // c's unit gain (0.5) beats urgent's (0.1)? No: urgent unit gain
        // = 1/10 = 0.1, c = 5/10 = 0.5, so urgent is behind c.
        // cost = 50 × 10 = 500 ≫ PV = 5 → slack −∞.
        assert!(d.slack.is_infinite() && d.slack < 0.0);
        assert!(!d.accept);
    }

    #[test]
    fn positive_expected_yield_policy() {
        // A task whose expected completion pushes its yield negative.
        let ahead: Vec<Job> = (1..=5).map(|i| job(i, 0.0, 20.0, 1000.0, 0.5)).collect();
        let c = job(0, 0.0, 5.0, 10.0, 1.0); // unit gain 2 < 50: goes last
        let mut queue = ahead.clone();
        queue.push(c.clone());
        let d = eval(AdmissionPolicy::PositiveExpectedYield, &queue, &c, 1);
        // Completes at 105; earliest 5; delay 100 → yield 10 − 100 < 0.
        assert!(d.expected_yield < 0.0);
        assert!(!d.accept);
    }

    #[test]
    fn accept_all_accepts_even_at_a_loss() {
        let ahead: Vec<Job> = (1..=5).map(|i| job(i, 0.0, 20.0, 1000.0, 0.5)).collect();
        let c = job(0, 0.0, 5.0, 10.0, 1.0);
        let mut queue = ahead.clone();
        queue.push(c.clone());
        let d = eval(AdmissionPolicy::AcceptAll, &queue, &c, 1);
        assert!(d.accept);
    }

    #[test]
    fn more_processors_raise_slack() {
        let others: Vec<Job> = (1..=3).map(|i| job(i, 0.0, 10.0, 500.0, 0.5)).collect();
        let c = job(0, 0.0, 10.0, 100.0, 0.5);
        let mut queue = others.clone();
        queue.push(c.clone());
        let narrow = eval(AdmissionPolicy::AcceptAll, &queue, &c, 1);
        let wide = eval(AdmissionPolicy::AcceptAll, &queue, &c, 4);
        assert!(wide.slack > narrow.slack);
        assert!(wide.expected_yield > narrow.expected_yield);
    }

    #[test]
    #[should_panic(expected = "candidate must be present")]
    fn candidate_missing_from_queue_panics() {
        let c = job(0, 0.0, 10.0, 100.0, 0.5);
        let other = job(1, 0.0, 10.0, 100.0, 0.5);
        let _ = eval(AdmissionPolicy::AcceptAll, &[other], &c, 1);
    }

    fn eval_succ(
        queue: &[Job],
        candidate: &Job,
        succ: Option<&mbts_workload::workflow::SuccessorContext>,
    ) -> AdmissionDecision {
        evaluate_admission_with_successors(
            &AdmissionPolicy::AcceptAll,
            &Policy::FirstPrice,
            ScheduleMode::Static,
            0.01,
            Time::ZERO,
            &[Time::ZERO],
            queue,
            candidate,
            succ,
        )
    }

    #[test]
    fn empty_successor_context_reduces_exactly_to_eq7() {
        let c = job(0, 0.0, 10.0, 100.0, 0.5);
        let queue = [c.clone()];
        let plain = eval_succ(&queue, &c, None);
        let empty = mbts_workload::workflow::SuccessorContext::default();
        let with_empty = eval_succ(&queue, &c, Some(&empty));
        assert_eq!(plain, with_empty);
    }

    #[test]
    fn successor_context_adds_downstream_value_and_decay() {
        // Candidate unlocks a descendant worth 200 with decay 1, one
        // 20-unit-runtime hop downstream.
        let c = job(0, 0.0, 10.0, 100.0, 0.5);
        let queue = [c.clone()];
        let succ = mbts_workload::workflow::SuccessorContext {
            downstream_runtime: 20.0,
            sum_value: 200.0,
            sum_decay: 1.0,
            sum_decay_runtime: 1.0 * 20.0,
            sum_floor: f64::NEG_INFINITY,
            workflow_arrival: 0.0,
        };
        let d = eval_succ(&queue, &c, Some(&succ));
        let plain = eval_succ(&queue, &c, None);
        // Completion at 10; descendants done earliest at 30; downstream
        // value = 200 − 1·(30 − 0) + 20 = 190, capped at sum_value.
        // PV′ = (100 + 190)/(1 + 0.01·(10 + 20)).
        let expect_pv = (100.0 + 190.0) / (1.0 + 0.01 * 30.0);
        assert!((d.present_value - expect_pv).abs() < 1e-9);
        assert!(d.present_value > plain.present_value);
        // Denominator: candidate decay + descendant decay.
        let expect_slack = (expect_pv - 0.0) / (0.5 + 1.0);
        assert!((d.slack - expect_slack).abs() < 1e-9);
        // The server bid price itself is unchanged: task-level.
        assert_eq!(d.expected_yield, plain.expected_yield);
    }

    #[test]
    fn downstream_value_clamps_at_descendant_floors() {
        // Descendants already fully decayed: a zero floor stops the
        // downstream estimate from going negative.
        let c = job(0, 0.0, 10.0, 100.0, 0.5);
        let queue = [c.clone()];
        let succ = mbts_workload::workflow::SuccessorContext {
            downstream_runtime: 20.0,
            sum_value: 5.0,
            sum_decay: 10.0,
            sum_decay_runtime: 10.0 * 20.0,
            sum_floor: 0.0,
            workflow_arrival: 0.0,
        };
        let d = eval_succ(&queue, &c, Some(&succ));
        // Raw estimate 5 − 10·30 + 200 = −95 → clamped to the floor 0.
        let expect_pv = (100.0 + 0.0) / (1.0 + 0.01 * 30.0);
        assert!((d.present_value - expect_pv).abs() < 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use mbts_workload::{PenaltyBound, TaskSpec};
    use proptest::prelude::*;

    fn arb_queue() -> impl Strategy<Value = Vec<Job>> {
        proptest::collection::vec((0.1f64..30.0, 0.0f64..300.0, 0.0f64..5.0), 1..25).prop_map(
            |specs| {
                specs
                    .into_iter()
                    .enumerate()
                    .map(|(i, (rt, v, d))| {
                        Job::new(TaskSpec::new(
                            i as u64,
                            0.0,
                            rt,
                            v,
                            d,
                            PenaltyBound::Unbounded,
                        ))
                    })
                    .collect()
            },
        )
    }

    proptest! {
        /// Admission monotonicity: if a task passes threshold T it passes
        /// every threshold below T (higher thresholds accept a subset).
        #[test]
        fn threshold_monotonicity(queue in arb_queue(), t1 in -500.0f64..500.0, dt in 0.0f64..500.0) {
            let candidate = queue.last().unwrap().clone();
            let strict = evaluate_admission(
                &AdmissionPolicy::SlackThreshold { threshold: t1 + dt },
                &Policy::FirstPrice, ScheduleMode::Static, 0.01,
                Time::ZERO, &[Time::ZERO, Time::ZERO], &queue, &candidate,
            );
            let lenient = evaluate_admission(
                &AdmissionPolicy::SlackThreshold { threshold: t1 },
                &Policy::FirstPrice, ScheduleMode::Static, 0.01,
                Time::ZERO, &[Time::ZERO, Time::ZERO], &queue, &candidate,
            );
            if strict.accept {
                prop_assert!(lenient.accept);
            }
            // The diagnostics are identical regardless of policy.
            prop_assert_eq!(strict.slack, lenient.slack);
            prop_assert_eq!(strict.expected_yield, lenient.expected_yield);
        }

        /// Slack decomposes per Eq. 7 whenever decay > 0.
        #[test]
        fn slack_identity(queue in arb_queue()) {
            let candidate = queue.last().unwrap().clone();
            let d = evaluate_admission(
                &AdmissionPolicy::AcceptAll,
                &Policy::FirstPrice, ScheduleMode::Static, 0.01,
                Time::ZERO, &[Time::ZERO], &queue, &candidate,
            );
            if candidate.spec.decay > 0.0 {
                let expect = (d.present_value - d.cost) / candidate.spec.decay;
                prop_assert!((d.slack - expect).abs() < 1e-9);
            }
        }
    }
}
