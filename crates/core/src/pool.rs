//! Incremental scheduling core: a persistent pending pool.
//!
//! The original dispatch loop rebuilt everything from scratch at every
//! scheduling point: an `O(n log n)` [`CostModel::build`] plus an `O(n)`
//! (or `O(n log n)` with per-candidate binary searches) scoring scan per
//! dispatched task. This module keeps that state alive *across* events
//! — submit, dispatch, cancel, expire — so each event pays only for what
//! actually changed:
//!
//! | event                    | rebuild-per-event     | [`PendingPool`]      |
//! |--------------------------|-----------------------|----------------------|
//! | submit (push)            | —                     | `O(log n)`           |
//! | dispatch, invariant [^i] | `O(n)` scan           | `O(log n)` heap peek |
//! | dispatch, FirstPrice/PV  | `O(n)` scan           | `O(k log n)` refresh [^k] |
//! | dispatch, FirstReward    | `O(n log n)` build + n searches | `O(n)` merge sweep |
//! | cancel / expire (remove) | `O(n)` compact        | `O(log n)`           |
//!
//! [^i]: `Fcfs`, `Srpt`, `Swpt`, `EarliestDeadline` — policies whose
//! score is fixed at submission ([`Policy::time_invariant_score`]).
//!
//! [^k]: `k` = entries whose stale bound still beats the true maximum,
//! typically O(1) between nearby dispatch instants; a periodic `O(n)`
//! rescale bounds the worst case.
//!
//! Three cooperating structures make this work:
//!
//! 1. [`IncrementalCostModel`] maintains the Eq. 4 inputs persistently:
//!    a Kahan-compensated [`DecaySum`] for never-expiring tasks and a
//!    sorted index ([`MergeMap`]: a dense run plus a small B-tree write
//!    overlay) of finite-window tasks keyed by **deadline**
//!    `expire − RPT` — the one instant at which a queued task's decay
//!    window closes. Deadlines are time-invariant while a task waits, so
//!    insert/remove are `O(log n)` amortized, and an in-order traversal
//!    yields windows already (nearly) sorted at dense-scan speed:
//!    materializing a [`CostModel`] snapshot for a new `now` is a linear
//!    pass plus an adaptive sort over presorted data.
//! 2. A lazy-deletion max-heap over `(score, lowest-id-wins)` serves
//!    time-invariant policies: selection is a peek, removal leaves a
//!    stale entry that is discarded when it surfaces (generation
//!    counters detect re-submitted ids after preemption). Time-varying
//!    simple policies (`FirstPrice`/`PresentValue`) reuse the same heap
//!    as a *bound* index: their scores only decay with time, so entries
//!    scored in the past are upper bounds, and selection refreshes just
//!    the entries that surface at the top until one survives its own
//!    refresh — with a periodic full rescale once refresh churn rivals
//!    a rebuild.
//! 3. An RPT-ordered index lets `FirstReward` score the whole frontier
//!    in one merge sweep: visiting candidates by ascending RPT makes the
//!    window split point monotone, so every Eq. 4 query is answered in
//!    `O(1)` amortized from two running sums — accumulated in exactly
//!    the order [`CostModel`]'s prefix arrays are, keeping scores
//!    bit-identical to the rebuild path's without materializing the
//!    model at all.
//!
//! Equivalence with the rebuild-from-scratch path is part of the
//! contract: the same `(score, lowest task id)` argmax, the same
//! tie-breaks, costs within 1e-9 (the only divergence is floating-point
//! summation order). Property tests below drive both implementations
//! through randomized event sequences and compare after every event.

use crate::cost::{CostModel, DecaySum};
use crate::heuristics::{Policy, ScoreCtx};
use crate::job::Job;
use crate::mergemap::MergeMap;
use mbts_sim::profiler::{self, Section};
use mbts_sim::{Duration, Time};
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, HashMap};

/// Persistently maintained inputs of the Eq. 4 opportunity-cost model.
///
/// `insert`/`remove` are `O(log n)` amortized; [`snapshot`](Self::snapshot)
/// materializes a [`CostModel`] for a given `now` in `O(n)` (reusing the
/// model's allocations) and caches it until the pool next changes.
///
/// Invariant: a job must be `remove`d with the same `rpt` and spec it
/// was `insert`ed with — true for queued jobs, whose RPT only changes
/// while running.
#[derive(Debug, Clone)]
pub struct IncrementalCostModel {
    /// Σ d_j over never-expiring tasks (infinite windows), drift-free.
    infinite: DecaySum,
    /// Finite-window tasks keyed by `(deadline, id)` where
    /// `deadline = expire − RPT` is when the task's decay window closes.
    /// Window order at any instant equals deadline order, so an in-order
    /// traversal feeds the snapshot nearly sorted — and the [`MergeMap`]
    /// makes that traversal a dense scan, since the sweep walks it once
    /// per dispatch decision.
    finite: MergeMap<(Time, u64), FiniteEntry>,
    /// Cached snapshot, valid at `model_now`.
    model: CostModel,
    model_now: Option<Time>,
}

#[derive(Debug, Clone, Copy)]
struct FiniteEntry {
    decay: f64,
    expire: Time,
    rpt: Duration,
}

impl IncrementalCostModel {
    /// An empty model.
    pub fn new() -> Self {
        IncrementalCostModel {
            infinite: DecaySum::new(),
            finite: MergeMap::new(),
            model: CostModel::empty(),
            model_now: None,
        }
    }

    /// Adds a queued job's contribution in `O(log n)`.
    pub fn insert(&mut self, job: &Job) {
        self.model_now = None;
        let d = job.spec.decay;
        if d == 0.0 {
            return; // contributes nothing at any instant, like in build()
        }
        let expire = job.spec.expire_time();
        if expire == Time::INFINITY {
            self.infinite.add(d);
        } else {
            let prev = self.finite.insert(
                (expire - job.rpt, job.id().0),
                FiniteEntry {
                    decay: d,
                    expire,
                    rpt: job.rpt,
                },
            );
            debug_assert!(prev.is_none(), "duplicate cost entry for {}", job.id());
        }
    }

    /// Removes a previously inserted job's contribution in `O(log n)`.
    pub fn remove(&mut self, job: &Job) {
        self.model_now = None;
        let d = job.spec.decay;
        if d == 0.0 {
            return;
        }
        let expire = job.spec.expire_time();
        if expire == Time::INFINITY {
            self.infinite.remove(d);
        } else {
            let prev = self.finite.remove(&(expire - job.rpt, job.id().0));
            debug_assert!(prev.is_some(), "missing cost entry for {}", job.id());
        }
    }

    /// The cost model at `now`, rebuilt from the persistent structures
    /// only if the pool changed or `now` moved since the last call.
    ///
    /// Entries whose deadline has passed need no eager cleanup: they
    /// evaluate to a zero window here and are skipped, exactly as
    /// [`CostModel::build`] skips expired jobs.
    pub fn snapshot(&mut self, now: Time) -> &CostModel {
        if self.model_now != Some(now) {
            let mut entries = Vec::with_capacity(self.finite.len());
            self.finite.for_each(|_, e| {
                // Bit-identical to Job::decay_window at this `now`.
                let w = (e.expire - (now + e.rpt)).max_zero();
                if w > Duration::ZERO {
                    entries.push((w.as_f64(), e.decay));
                }
            });
            self.model.rebuild_in_place(self.infinite.total(), entries);
            self.model_now = Some(now);
        }
        &self.model
    }

    /// Number of tracked (non-zero-decay) contributions.
    pub fn len(&self) -> usize {
        self.infinite.count() + self.finite.len()
    }

    /// `true` when nothing contributes cost.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for IncrementalCostModel {
    fn default() -> Self {
        Self::new()
    }
}

/// A max-heap entry: best score first, ties to the lowest task id —
/// the same total order [`Policy::select`] implements by scanning.
///
/// For time-varying policies (FirstPrice/PV) `score` is the value as of
/// `at`, which is an **upper bound** on the score at any later instant:
/// both policies only decay with time. `at` is excluded from the order;
/// it just lets a selection skip re-scoring an entry already exact at
/// the query instant.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    score: f64,
    id: u64,
    gen: u64,
    at: Time,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// Collapses `-0.0` to `+0.0` so the heap's `total_cmp` order agrees
/// with `select()`'s `==`-based tie handling (which treats the two
/// zeros as equal and falls through to the id tie-break).
fn normalize(score: f64) -> f64 {
    debug_assert!(!score.is_nan(), "policy scores must not be NaN");
    if score == 0.0 {
        0.0
    } else {
        score
    }
}

/// Everything the FirstReward merge sweep needs about a candidate,
/// denormalized out of [`Job`] at push time so the sweep touches only
/// the RPT-ordered B-tree — no random access into the jobs vector.
/// All fields are immutable while the job is queued.
#[derive(Debug, Clone, Copy)]
struct SweepJob {
    /// Position in `jobs` (kept in sync across `swap_remove`).
    slot: usize,
    /// `spec.decay`.
    decay: f64,
    /// `spec.value`.
    value: f64,
    /// `spec.bound.floor()`.
    floor: f64,
    /// `spec.arrival + spec.runtime` — the earliest possible completion,
    /// before which no decay is charged.
    earliest: Time,
    /// `spec.expire_time()`.
    expire: Time,
}

#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    /// Position in `jobs` (kept in sync across `swap_remove`).
    slot: usize,
    /// Incarnation counter: a re-pushed id (preemption requeue) gets a
    /// fresh generation, lazily invalidating its old heap entries.
    gen: u64,
}

/// The pending queue as a persistent, incrementally maintained
/// structure. See the [module docs](self) for the complexity story.
///
/// Selection ([`select_best`](Self::select_best)) returns the same job
/// the flat `(score, lowest id)` argmax over [`jobs`](Self::jobs) would
/// pick; positions follow `Vec::swap_remove` semantics so callers can
/// treat the pool as the plain `Vec<Job>` it replaces.
#[derive(Debug, Clone)]
pub struct PendingPool {
    policy: Policy,
    jobs: Vec<Job>,
    index: HashMap<u64, IndexEntry>,
    /// `gens[slot]` mirrors `index[jobs[slot].id].gen` — the dense copy
    /// lets a heap rebuild skip one hash lookup per job.
    gens: Vec<u64>,
    /// Lazy-deletion score heap (policies that don't need a cost model).
    heap: BinaryHeap<HeapEntry>,
    /// Watermark: the latest instant any heap entry was scored at;
    /// `None` = heap not built yet. Time-invariant policies pin scores
    /// at `Time::ZERO` and the heap never goes stale. FirstPrice/PV
    /// scores are non-increasing in time, so entries scored at or
    /// before the watermark are upper bounds for any query at or after
    /// it — selection refreshes only entries that surface at the top
    /// (periodic-rescale indexing), and a query that travels *backwards*
    /// past the watermark forces a full rebuild.
    heap_now: Option<Time>,
    /// All jobs keyed by `(RPT, id)` — the FirstReward merge sweep's
    /// visiting order, in a dense-scannable [`MergeMap`]. Only
    /// maintained when the policy needs it.
    by_rpt: MergeMap<(Duration, u64), SweepJob>,
    /// Reusable window-ordered `(window, decay)` buffer for the sweep.
    scratch: Vec<(f64, f64)>,
    generation: u64,
    cost: IncrementalCostModel,
}

impl PendingPool {
    /// An empty pool serving `policy`.
    pub fn new(policy: Policy) -> Self {
        PendingPool {
            policy,
            jobs: Vec::new(),
            index: HashMap::new(),
            gens: Vec::new(),
            heap: BinaryHeap::new(),
            heap_now: None,
            by_rpt: MergeMap::new(),
            scratch: Vec::new(),
            generation: 0,
            cost: IncrementalCostModel::new(),
        }
    }

    /// The policy the pool ranks by.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The queued jobs, in slot order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Enqueues a job in `O(log n)`. Instrumented as the profiler's
    /// `pool_insert` section (one relaxed load when profiling is off).
    pub fn push(&mut self, job: Job) {
        profiler::time(Section::PoolInsert, || self.push_impl(job))
    }

    fn push_impl(&mut self, job: Job) {
        let id = job.id().0;
        self.generation += 1;
        let gen = self.generation;
        let slot = self.jobs.len();
        let prev = self.index.insert(id, IndexEntry { slot, gen });
        debug_assert!(prev.is_none(), "task {id} is already pending");
        self.cost.insert(&job);
        if self.policy.needs_cost_model() {
            let prev = self.by_rpt.insert(
                (job.rpt, id),
                SweepJob {
                    slot,
                    decay: job.spec.decay,
                    value: job.spec.value,
                    floor: job.spec.bound.floor(),
                    earliest: job.spec.arrival + job.spec.runtime,
                    expire: job.spec.expire_time(),
                },
            );
            debug_assert!(prev.is_none(), "duplicate rpt entry for task {id}");
        } else if let Some(at) = self.heap_now {
            // Score at the watermark: exact for time-invariant policies
            // (which pin `at` to `Time::ZERO`), and a valid upper bound
            // for FirstPrice/PV queries at or after the watermark.
            let score = normalize(self.policy.score(&job, &ScoreCtx::simple(at)));
            self.heap.push(HeapEntry { score, id, gen, at });
        }
        self.gens.push(gen);
        self.jobs.push(job);
    }

    /// Removes and returns the job at `slot`, filling the hole with the
    /// last job (`Vec::swap_remove` semantics), in `O(log n)`.
    pub fn swap_remove(&mut self, slot: usize) -> Job {
        let job = self.jobs.swap_remove(slot);
        self.gens.swap_remove(slot);
        let id = job.id().0;
        let entry = self.index.remove(&id);
        debug_assert!(entry.is_some(), "pending job {id} must be indexed");
        if self.policy.needs_cost_model() {
            let prev = self.by_rpt.remove(&(job.rpt, id));
            debug_assert!(prev.is_some(), "pending job {id} must be rpt-indexed");
        }
        self.cost.remove(&job);
        // The heap entry (if any) goes stale and is discarded lazily.
        if let Some(moved) = self.jobs.get(slot) {
            let moved_id = moved.id().0;
            self.index
                .get_mut(&moved_id)
                .expect("moved job must be indexed")
                .slot = slot;
            if self.policy.needs_cost_model() {
                self.by_rpt
                    .get_mut(&(moved.rpt, moved_id))
                    .expect("moved job must be rpt-indexed")
                    .slot = slot;
            }
        }
        job
    }

    /// Removes every queued job at once, returning them in slot order —
    /// the crash-orphan path: a dead site's queue is handed back to the
    /// market for re-bidding. Equivalent to `swap_remove`ing every slot;
    /// all of the pool's indexes end empty.
    pub fn drain_all(&mut self) -> Vec<Job> {
        let mut out = Vec::with_capacity(self.jobs.len());
        while !self.jobs.is_empty() {
            let last = self.jobs.len() - 1;
            out.push(self.swap_remove(last));
        }
        out.reverse();
        out
    }

    /// Slot of the best job at `now`: maximum score, ties to the lowest
    /// task id — exactly what [`Policy::select`] over [`jobs`](Self::jobs)
    /// returns, at incremental cost. `None` when the pool is empty.
    /// Instrumented as the profiler's `cost_model_update` section.
    pub fn select_best(&mut self, now: Time) -> Option<usize> {
        if self.jobs.is_empty() {
            return None;
        }
        profiler::time(Section::CostModelUpdate, || self.select_best_impl(now))
    }

    fn select_best_impl(&mut self, now: Time) -> Option<usize> {
        if self.policy.needs_cost_model() {
            let mut best: Option<(f64, u64, usize)> = None;
            self.for_each_first_reward(now, |slot, id, score| {
                let better = match best {
                    None => true,
                    Some((bs, bid, _)) => score > bs || (score == bs && id < bid),
                };
                if better {
                    best = Some((score, id, slot));
                }
            });
            let pick = best.map(|(_, _, slot)| slot);
            #[cfg(debug_assertions)]
            {
                debug_assert_eq!(
                    pick,
                    self.select_rescan(now),
                    "merge sweep diverged from flat selection"
                );
            }
            return pick;
        }
        let invariant = self.policy.time_invariant_score();
        let rebuild_needed = match self.heap_now {
            None => true,
            // Entries are scored at instants ≤ the watermark; they are
            // upper bounds only for queries at or after it.
            Some(t) => !invariant && now < t,
        };
        if rebuild_needed {
            self.rebuild_heap(now);
        }
        if invariant {
            loop {
                let Some(top) = self.heap.peek() else {
                    // Only stale entries were left; a rebuild covers
                    // every live job and the pool is non-empty.
                    self.rebuild_heap(now);
                    continue;
                };
                match self.index.get(&top.id) {
                    Some(e) if e.gen == top.gen => return Some(e.slot),
                    _ => {
                        self.heap.pop();
                    }
                }
            }
        }
        let pick = self.select_decaying(now);
        #[cfg(debug_assertions)]
        {
            debug_assert_eq!(
                pick,
                self.select_rescan(now),
                "bound-heap selection diverged from flat selection"
            );
        }
        pick
    }

    /// Selection for FirstPrice/PV: heap entries hold stale *upper
    /// bounds*, so the true maximum is found by refreshing entries as
    /// they surface at the top. An entry whose refreshed score still
    /// tops the heap is exact: every other live entry's current score is
    /// ≤ its bound ≤ the top bound. Ties collapse to the same bound, so
    /// the heap's lowest-id order matches `Policy::select`. When a query
    /// has drifted far enough that refreshes thrash, one `O(n)` rescale
    /// (rebuild at `now`) makes every bound exact.
    fn select_decaying(&mut self, now: Time) -> Option<usize> {
        // Rebuild once refresh work rivals a full rescore; each refresh
        // is O(log n) against the rebuild's O(n).
        let refresh_limit = 8 + self.jobs.len() / 8;
        let mut refreshed = 0usize;
        loop {
            let Some(&top) = self.heap.peek() else {
                self.rebuild_heap(now);
                continue;
            };
            let e = match self.index.get(&top.id) {
                Some(e) if e.gen == top.gen => *e,
                _ => {
                    self.heap.pop();
                    continue;
                }
            };
            if top.at == now {
                return Some(e.slot);
            }
            let cur = normalize(
                self.policy
                    .score(&self.jobs[e.slot], &ScoreCtx::simple(now)),
            );
            debug_assert!(
                cur <= top.score,
                "decaying-policy score increased over time: {} -> {cur}",
                top.score
            );
            self.heap.pop();
            self.heap.push(HeapEntry {
                score: cur,
                id: top.id,
                gen: top.gen,
                at: now,
            });
            self.heap_now = Some(now);
            if cur == top.score {
                // The refreshed entry still carries the maximal bound,
                // and among equal bounds the heap already yielded the
                // lowest id — exact.
                return Some(e.slot);
            }
            refreshed += 1;
            if refreshed > refresh_limit {
                self.rebuild_heap(now);
            }
        }
    }

    /// Reference implementation of [`select_best`](Self::select_best):
    /// a flat scan via [`Policy::select`] over a fresh cost snapshot.
    /// Used by tests and debug assertions.
    pub fn select_rescan(&mut self, now: Time) -> Option<usize> {
        let policy = self.policy;
        if policy.needs_cost_model() {
            let model = self.cost.snapshot(now);
            let ctx = ScoreCtx::with_cost(now, model);
            policy.select(self.jobs.iter(), &ctx)
        } else {
            policy.select(self.jobs.iter(), &ScoreCtx::simple(now))
        }
    }

    /// All scores at `now`, in slot order — the backfill scan's input.
    /// Bit-identical to scoring each job with [`Policy::score`] against
    /// a fresh model. Instrumented as the profiler's `merge_sweep`
    /// section.
    pub fn scores(&mut self, now: Time) -> Vec<f64> {
        profiler::time(Section::MergeSweep, || self.scores_impl(now))
    }

    fn scores_impl(&mut self, now: Time) -> Vec<f64> {
        if self.policy.needs_cost_model() {
            let mut out = vec![0.0; self.jobs.len()];
            self.for_each_first_reward(now, |slot, _, score| out[slot] = score);
            out
        } else {
            let policy = self.policy;
            let ctx = ScoreCtx::simple(now);
            self.jobs.iter().map(|j| policy.score(j, &ctx)).collect()
        }
    }

    /// The opportunity-cost model of the queued set at `now` (cached
    /// between mutations).
    pub fn cost_model(&mut self, now: Time) -> &CostModel {
        self.cost.snapshot(now)
    }

    /// Scores every job under `FirstReward` in one RPT-ordered merge
    /// sweep. The split point into the window-ordered entries is
    /// monotone in RPT, so each Eq. 4 query is `O(1)` amortized from two
    /// running sums accumulated in exactly the left-to-right order
    /// [`CostModel`]'s `prefix_dw`/`prefix_d` arrays are built in —
    /// `visit` receives `(slot, id, score)` with scores bit-identical to
    /// [`Policy::score`] against [`Self::cost_model`], without
    /// materializing the model.
    fn for_each_first_reward(&mut self, now: Time, mut visit: impl FnMut(usize, u64, f64)) {
        let Policy::FirstReward {
            alpha,
            discount_rate,
        } = self.policy
        else {
            unreachable!("merge sweep is only reached for FirstReward")
        };
        // Window order equals deadline order, so one in-order pass over
        // the deadline B-tree yields the sorted (window, decay) list a
        // from-scratch build would sort into, plus its total decay —
        // summed left-to-right like `prefix_d[len]`.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let mut total_d = 0.0f64;
        self.cost.finite.for_each(|_, e| {
            // Bit-identical to Job::decay_window at this `now`.
            let w = (e.expire - (now + e.rpt)).max_zero();
            if w > Duration::ZERO {
                scratch.push((w.as_f64(), e.decay));
                total_d += e.decay;
            }
        });
        let infinite = self.cost.infinite.total();
        let mut split = 0usize;
        let mut running_dw = 0.0f64; // == prefix_dw[split]
        let mut running_d = 0.0f64; // == prefix_d[split]
        self.by_rpt.for_each(|&(rpt, id), sj| {
            let rpt_f = rpt.as_f64();
            while split < scratch.len() && scratch[split].0 < rpt_f {
                let (w, d) = scratch[split];
                running_dw += d * w;
                running_d += d;
                split += 1;
            }
            // Total Eq. 4 cost, op-for-op `CostModel::total_cost_at`.
            let mut total = infinite * rpt_f;
            total += running_dw;
            let d_tail = total_d - running_d;
            let total = total + d_tail * rpt_f;
            // Own contribution, op-for-op `CostModel::cost`.
            let own_window = if sj.expire == Time::INFINITY {
                Duration::INFINITY
            } else {
                (sj.expire - (now + rpt)).max_zero()
            };
            let own = if sj.decay == 0.0 || own_window == Duration::ZERO {
                0.0
            } else {
                sj.decay * rpt_f.min(own_window.as_f64())
            };
            let cost = (total - own).max(0.0);
            // PV, op-for-op `Job::present_value`.
            let delay = ((now + rpt) - sj.earliest).max_zero();
            let yield_if_started = (sj.value - delay.as_f64() * sj.decay).max(sj.floor);
            let pv = yield_if_started / (1.0 + discount_rate * rpt_f);
            let score = (alpha * pv - (1.0 - alpha) * cost) / rpt_f.max(f64::MIN_POSITIVE);
            visit(sj.slot, id, score);
        });
        self.scratch = scratch;
    }

    /// Serializable checkpoint: the queued jobs in slot order plus the
    /// exact state of the Kahan decay accumulator. Everything else in
    /// the pool (indexes, heaps, tombstones, cached models) is derived
    /// state that [`from_checkpoint`](Self::from_checkpoint) rebuilds
    /// with selection-identical behavior.
    pub fn checkpoint(&self) -> PoolCheckpoint {
        PoolCheckpoint {
            policy: self.policy,
            jobs: self.jobs.clone(),
            decay_sum: self.cost.infinite.state(),
        }
    }

    /// Rebuilds a pool from a [`checkpoint`](Self::checkpoint). Jobs are
    /// re-pushed in slot order, reproducing the jobs vector (and thus
    /// every future `swap_remove` position) exactly; the decay
    /// accumulator is then overwritten with its checkpointed state, since
    /// Kahan compensation is history-dependent and re-adding could differ
    /// in the low-order bits that near-tied scheduling comparisons see.
    /// Lazy-deletion heap tombstones and generation counters are *not*
    /// carried over: they are performance artifacts that never change
    /// which job `select_best` returns.
    pub fn from_checkpoint(c: PoolCheckpoint) -> Self {
        let mut pool = PendingPool::new(c.policy);
        for job in c.jobs {
            pool.push(job);
        }
        debug_assert_eq!(pool.cost.infinite.count(), c.decay_sum.2);
        pool.cost.infinite = DecaySum::from_state(c.decay_sum);
        pool.cost.model_now = None;
        pool
    }

    /// Rescores every job and heapifies in `O(n)`; reuses the heap's
    /// buffer. Time-invariant policies are scored at `Time::ZERO` (any
    /// instant gives the same value) so the heap stays valid forever.
    fn rebuild_heap(&mut self, now: Time) {
        let at = if self.policy.time_invariant_score() {
            Time::ZERO
        } else {
            now
        };
        let ctx = ScoreCtx::simple(at);
        let policy = self.policy;
        let mut entries = std::mem::take(&mut self.heap).into_vec();
        entries.clear();
        entries.extend(
            self.jobs
                .iter()
                .zip(&self.gens)
                .map(|(job, &gen)| HeapEntry {
                    score: normalize(policy.score(job, &ctx)),
                    id: job.id().0,
                    gen,
                    at,
                }),
        );
        self.heap = BinaryHeap::from(entries);
        self.heap_now = Some(at);
    }
}

/// Serializable state of a [`PendingPool`] — see
/// [`PendingPool::checkpoint`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolCheckpoint {
    /// The ranking policy.
    pub policy: Policy,
    /// Queued jobs in slot order.
    pub jobs: Vec<Job>,
    /// Exact `(sum, compensation, count)` of the infinite-window decay
    /// accumulator.
    pub decay_sum: (f64, f64, usize),
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbts_workload::{PenaltyBound, TaskSpec};

    fn job(id: u64, arrival: f64, runtime: f64, value: f64, decay: f64) -> Job {
        Job::new(TaskSpec::new(
            id,
            arrival,
            runtime,
            value,
            decay,
            PenaltyBound::Unbounded,
        ))
    }

    fn bounded(id: u64, runtime: f64, value: f64, decay: f64) -> Job {
        Job::new(TaskSpec::new(
            id,
            0.0,
            runtime,
            value,
            decay,
            PenaltyBound::ZERO,
        ))
    }

    #[test]
    fn empty_pool_selects_none() {
        let mut pool = PendingPool::new(Policy::Fcfs);
        assert_eq!(pool.select_best(Time::ZERO), None);
        assert!(pool.is_empty());
    }

    #[test]
    fn fcfs_pool_serves_in_arrival_order() {
        let mut pool = PendingPool::new(Policy::Fcfs);
        pool.push(job(2, 5.0, 1.0, 10.0, 0.1));
        pool.push(job(0, 1.0, 1.0, 10.0, 0.1));
        pool.push(job(1, 3.0, 1.0, 10.0, 0.1));
        let mut order = Vec::new();
        let mut t = 10.0;
        while let Some(slot) = pool.select_best(Time::from(t)) {
            order.push(pool.swap_remove(slot).id().0);
            t += 1.0;
        }
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn tied_scores_break_to_lowest_id_through_the_heap() {
        // Both arrive at 0.0: FCFS scores are -0.0, a negative-zero tie
        // the heap must treat exactly like select()'s `==` does.
        let mut pool = PendingPool::new(Policy::Fcfs);
        pool.push(job(5, 0.0, 1.0, 10.0, 0.1));
        pool.push(job(2, 0.0, 1.0, 10.0, 0.1));
        let slot = pool.select_best(Time::ZERO).unwrap();
        assert_eq!(pool.jobs()[slot].id().0, 2);
    }

    #[test]
    fn reinserted_job_gets_a_fresh_generation() {
        // Simulates a preemption requeue: remove, then push the same id.
        let mut pool = PendingPool::new(Policy::Srpt);
        pool.push(job(0, 0.0, 1.0, 10.0, 0.1)); // shortest: wins
        pool.push(job(1, 0.0, 4.0, 10.0, 0.1));
        let best = pool.select_best(Time::ZERO).unwrap();
        assert_eq!(pool.jobs()[best].id().0, 0);
        let mut removed = pool.swap_remove(best);
        // It "ran" a while backwards (preemption grew its RPT estimate).
        removed.rpt = mbts_sim::Duration::from(9.0);
        pool.push(removed);
        // The stale heap entry (rpt 1.0) must not win for id 0.
        let best = pool.select_best(Time::ZERO).unwrap();
        assert_eq!(pool.jobs()[best].id().0, 1);
    }

    #[test]
    fn time_varying_policy_rescores_as_now_advances() {
        // FirstPrice: a fast-decaying high-value job outranks a stable
        // one early, then falls below it.
        let mut pool = PendingPool::new(Policy::FirstPrice);
        pool.push(job(0, 0.0, 1.0, 100.0, 10.0));
        pool.push(job(1, 0.0, 1.0, 50.0, 0.0));
        let early = pool.select_best(Time::ZERO).unwrap();
        assert_eq!(pool.jobs()[early].id().0, 0);
        let late = pool.select_best(Time::from(8.0)).unwrap();
        assert_eq!(pool.jobs()[late].id().0, 1);
    }

    #[test]
    fn swap_remove_keeps_the_index_consistent() {
        let mut pool = PendingPool::new(Policy::Srpt);
        for i in 0..4 {
            pool.push(job(i, 0.0, 10.0 - i as f64, 10.0, 0.1));
        }
        // Remove a middle slot; the last job takes its place.
        pool.swap_remove(1);
        assert_eq!(pool.len(), 3);
        // Shortest remaining is id 3 (runtime 7), wherever it sits now.
        let best = pool.select_best(Time::ZERO).unwrap();
        assert_eq!(pool.jobs()[best].id().0, 3);
        pool.swap_remove(best);
        let best = pool.select_best(Time::ZERO).unwrap();
        assert_eq!(pool.jobs()[best].id().0, 2);
    }

    #[test]
    fn drain_all_empties_every_index() {
        let policy = Policy::first_reward(0.3, 0.01);
        let mut pool = PendingPool::new(policy);
        for i in 0..5 {
            pool.push(job(i, 0.0, 2.0 + i as f64, 50.0, 0.3));
        }
        let drained = pool.drain_all();
        assert_eq!(drained.len(), 5);
        // Slot order is preserved (push order here: no removals).
        let ids: Vec<u64> = drained.iter().map(|j| j.id().0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert!(pool.is_empty());
        assert_eq!(pool.select_best(Time::ZERO), None);
        // The pool is fully reusable: ids may return (orphan re-bid).
        for j in drained {
            pool.push(j);
        }
        assert_eq!(pool.len(), 5);
        assert!(pool.select_best(Time::from(1.0)).is_some());
    }

    #[test]
    fn first_reward_matches_flat_selection_on_mixed_bounds() {
        let policy = Policy::first_reward(0.3, 0.01);
        let mut pool = PendingPool::new(policy);
        pool.push(job(0, 0.0, 7.0, 100.0, 1.0));
        pool.push(bounded(1, 2.0, 30.0, 4.0));
        pool.push(bounded(2, 15.0, 200.0, 0.5));
        pool.push(job(3, 0.0, 1.0, 5.0, 9.0));
        pool.push(bounded(4, 4.0, 0.0, 2.0)); // value 0: expired window
        for t in [0.0, 1.0, 3.5, 50.0] {
            let now = Time::from(t);
            let model = CostModel::build(now, pool.jobs());
            let ctx = ScoreCtx::with_cost(now, &model);
            let want = policy.select(pool.jobs(), &ctx).unwrap();
            let got = pool.select_best(now).unwrap();
            assert_eq!(pool.jobs()[got].id(), pool.jobs()[want].id(), "t={t}");
        }
    }

    #[test]
    fn pool_scores_match_flat_scoring() {
        let policy = Policy::first_reward(0.4, 0.02);
        let mut pool = PendingPool::new(policy);
        for i in 0..6 {
            if i % 2 == 0 {
                pool.push(job(i, 0.0, 2.0 + i as f64, 40.0, 0.5 * i as f64));
            } else {
                pool.push(bounded(i, 1.0 + i as f64, 25.0, 1.5));
            }
        }
        let now = Time::from(2.5);
        let incremental = pool.scores(now);
        let model = CostModel::build(now, pool.jobs());
        let ctx = ScoreCtx::with_cost(now, &model);
        for (i, j) in pool.jobs().iter().enumerate() {
            assert!(
                (incremental[i] - policy.score(j, &ctx)).abs() < 1e-9,
                "slot {i}"
            );
        }
    }

    #[test]
    fn checkpoint_roundtrip_preserves_selection_sequence() {
        for policy in [
            Policy::Fcfs,
            Policy::Srpt,
            Policy::FirstPrice,
            Policy::pv(0.01),
            Policy::first_reward(0.3, 0.01),
        ] {
            let mut pool = PendingPool::new(policy);
            for i in 0..8 {
                if i % 2 == 0 {
                    pool.push(job(i, 0.1 * i as f64, 2.0 + i as f64, 40.0, 0.5));
                } else {
                    pool.push(bounded(i, 1.0 + i as f64, 25.0, 1.5));
                }
            }
            // Churn: dispatch a couple so the accumulator has history.
            for t in [1.0, 2.0] {
                let best = pool.select_best(Time::from(t)).unwrap();
                pool.swap_remove(best);
            }
            let ck = pool.checkpoint();
            let json = serde_json::to_string(&ck).unwrap();
            let back: PoolCheckpoint = serde_json::from_str(&json).unwrap();
            assert_eq!(back, ck, "{}", policy.name());
            let mut restored = PendingPool::from_checkpoint(back);
            assert_eq!(restored.jobs(), pool.jobs());
            // Both pools must dispatch identically from here on.
            let mut t = 3.0;
            while !pool.is_empty() {
                let a = pool.select_best(Time::from(t)).unwrap();
                let b = restored.select_best(Time::from(t)).unwrap();
                assert_eq!(a, b, "{} at t={t}", policy.name());
                assert_eq!(pool.swap_remove(a), restored.swap_remove(b));
                t += 0.7;
            }
            assert!(restored.is_empty());
        }
    }

    #[test]
    fn incremental_model_tracks_inserts_and_removes() {
        let jobs = vec![
            job(0, 0.0, 7.0, 100.0, 1.0),
            bounded(1, 2.0, 30.0, 4.0),
            bounded(2, 15.0, 200.0, 0.5),
            job(3, 0.0, 1.0, 5.0, 0.0), // zero decay: no contribution
        ];
        let mut inc = IncrementalCostModel::new();
        for j in &jobs {
            inc.insert(j);
        }
        assert_eq!(inc.len(), 3);
        for t in [0.0, 4.0, 40.0] {
            let now = Time::from(t);
            let scratch = CostModel::build(now, &jobs);
            let snap = inc.snapshot(now);
            for j in &jobs {
                assert!((snap.cost_of(j, now) - scratch.cost_of(j, now)).abs() < 1e-9);
            }
        }
        inc.remove(&jobs[1]);
        let remaining: Vec<&Job> = jobs.iter().filter(|j| j.id().0 != 1).collect();
        let now = Time::from(1.0);
        let scratch = CostModel::build(now, remaining.iter().copied());
        let snap = inc.snapshot(now);
        for j in &remaining {
            assert!((snap.cost_of(j, now) - scratch.cost_of(j, now)).abs() < 1e-9);
        }
        for j in &remaining {
            inc.remove(j);
        }
        assert!(inc.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use mbts_workload::{PenaltyBound, TaskSpec};
    use proptest::prelude::*;

    fn build_jobs(specs: &[(f64, f64, f64, u8)]) -> Vec<Job> {
        specs
            .iter()
            .enumerate()
            .map(|(i, &(rt, v, d, b))| {
                let bound = match b {
                    0 => PenaltyBound::Unbounded,
                    1 => PenaltyBound::ZERO,
                    _ => PenaltyBound::Bounded {
                        max_penalty: v * 0.4,
                    },
                };
                Job::new(TaskSpec::new(i as u64, 0.0, rt, v, d, bound))
            })
            .collect()
    }

    proptest! {
        /// Satellite invariant: after any interleaving of inserts,
        /// removes, and clock advances, the incrementally maintained
        /// model answers every cost query like a from-scratch
        /// `CostModel::build` over the same live set (within 1e-9).
        #[test]
        fn incremental_model_matches_scratch_build(
            specs in proptest::collection::vec(
                (0.1f64..50.0, 0.0f64..300.0, 0.0f64..10.0, 0u8..3u8), 1..30),
            ops in proptest::collection::vec((0u8..9u8, 0.0f64..15.0), 1..50),
        ) {
            let jobs = build_jobs(&specs);
            let mut inc = IncrementalCostModel::new();
            let mut live: Vec<usize> = Vec::new();
            let mut next = 0usize;
            let mut now = 0.0f64;
            for &(op, dt) in &ops {
                match op % 3 {
                    0 if next < jobs.len() => {
                        inc.insert(&jobs[next]);
                        live.push(next);
                        next += 1;
                    }
                    1 if !live.is_empty() => {
                        let k = (op as usize).wrapping_mul(7) % live.len();
                        let victim = live.swap_remove(k);
                        inc.remove(&jobs[victim]);
                    }
                    _ => now += dt,
                }
                let t = Time::from(now);
                let scratch = CostModel::build(t, live.iter().map(|&i| &jobs[i]));
                let snap = inc.snapshot(t);
                prop_assert!(
                    (snap.active_decay() - scratch.active_decay()).abs() <= 1e-9,
                    "active decay diverged"
                );
                for &i in &live {
                    let a = snap.cost_of(&jobs[i], t);
                    let b = scratch.cost_of(&jobs[i], t);
                    prop_assert!(
                        (a - b).abs() <= 1e-9 * (1.0 + b.abs()),
                        "job {}: incremental {} vs scratch {}", i, a, b
                    );
                }
            }
        }

        /// The pool's incremental selection equals the flat
        /// `(score, lowest id)` argmax over a from-scratch model, for
        /// every policy, through randomized push/dispatch/advance
        /// sequences.
        #[test]
        fn pool_selection_matches_flat_rescan(
            specs in proptest::collection::vec(
                (0.1f64..50.0, 0.0f64..300.0, 0.0f64..10.0, 0u8..3u8), 1..25),
            ops in proptest::collection::vec((0u8..9u8, 0.0f64..10.0), 1..40),
        ) {
            let jobs = build_jobs(&specs);
            for policy in [
                Policy::Fcfs,
                Policy::Srpt,
                Policy::Swpt,
                Policy::FirstPrice,
                Policy::EarliestDeadline,
                Policy::pv(0.01),
                Policy::first_reward(0.3, 0.01),
            ] {
                let mut pool = PendingPool::new(policy);
                let mut next = 0usize;
                let mut now = 0.0f64;
                for &(op, dt) in &ops {
                    match op % 3 {
                        0 if next < jobs.len() => {
                            pool.push(jobs[next].clone());
                            next += 1;
                        }
                        1 if !pool.is_empty() => {
                            // Dispatch the incrementally chosen best.
                            let best = pool.select_best(Time::from(now)).unwrap();
                            pool.swap_remove(best);
                        }
                        _ => now += dt,
                    }
                    let t = Time::from(now);
                    let scratch = CostModel::build(t, pool.jobs());
                    let ctx = if policy.needs_cost_model() {
                        ScoreCtx::with_cost(t, &scratch)
                    } else {
                        ScoreCtx::simple(t)
                    };
                    let want = policy.select(pool.jobs(), &ctx);
                    let got = pool.select_best(t);
                    let want_id = want.map(|s| pool.jobs()[s].id().0);
                    let got_id = got.map(|s| pool.jobs()[s].id().0);
                    prop_assert!(
                        got_id == want_id,
                        "{}: pool chose {:?}, flat rescan chose {:?}",
                        policy.name(), got_id, want_id
                    );
                }
            }
        }
    }
}
