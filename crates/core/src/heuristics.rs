//! Scheduling heuristics (§4 baselines, §5 risk/reward family).
//!
//! Every policy reduces to a **score**: at each dispatch point the
//! scheduler runs the queued job with the highest score (ties broken by
//! lower task id, i.e. earlier arrival — deterministic and replayable).
//!
//! | Policy | Score | Paper |
//! |---|---|---|
//! | `Fcfs` | `−arrival_i` | §4 baseline |
//! | `Srpt` | `−RPT_i` | §4 baseline |
//! | `Swpt` | `d_i / RPT_i` | §4/§5.2 (optimal for TWCT, simultaneous release) |
//! | `FirstPrice` | `yield_i / RPT_i` (unit gain) | Millennium, §4 |
//! | `PresentValue` | `PV_i / RPT_i`, `PV_i = yield_i/(1 + rate·RPT_i)` | §5.1, Eq. 3 |
//! | `FirstReward` | `(α·PV_i − (1−α)·cost_i) / RPT_i` | §5.3, Eq. 6 |
//!
//! `FirstReward` reduces to `PresentValue` at `α = 1` and to a variant of
//! SWPT at `α = 0` (cost-only), exactly as the paper observes; tests below
//! pin both reductions.

use crate::cost::CostModel;
use crate::job::Job;
use mbts_sim::Time;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A value-based scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Policy {
    /// First Come First Served: order by arrival time.
    Fcfs,
    /// Shortest Remaining Processing Time.
    Srpt,
    /// Shortest Weighted Processing Time: order by `decay / RPT`.
    Swpt,
    /// Millennium's greedy unit-gain heuristic: order by `yield / RPT`.
    FirstPrice,
    /// §5.1: discounted unit gain, `PV / RPT`.
    PresentValue {
        /// Simple-interest discount rate per time unit (e.g. `0.01` = 1 %).
        discount_rate: f64,
    },
    /// Earliest Deadline First over the value functions' expiration
    /// times — the deadline-scheduling strawman §3 argues against: it
    /// gives the scheduler "little guidance on how to proceed if there is
    /// no feasible schedule". Tasks that never expire sort last.
    EarliestDeadline,
    /// §5.3: the configurable risk/reward balance,
    /// `(α·PV − (1−α)·cost) / RPT`.
    FirstReward {
        /// Weight on (discounted) gains; `1 − α` weighs opportunity cost.
        alpha: f64,
        /// Discount rate fed into the PV term.
        discount_rate: f64,
    },
}

impl Policy {
    /// `PresentValue` with the given discount rate.
    pub fn pv(discount_rate: f64) -> Policy {
        assert!(discount_rate >= 0.0, "discount rate must be non-negative");
        Policy::PresentValue { discount_rate }
    }

    /// `FirstReward` with the given α and discount rate.
    pub fn first_reward(alpha: f64, discount_rate: f64) -> Policy {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        assert!(discount_rate >= 0.0, "discount rate must be non-negative");
        Policy::FirstReward {
            alpha,
            discount_rate,
        }
    }

    /// `true` when scoring needs an opportunity-cost model of the queue.
    pub fn needs_cost_model(&self) -> bool {
        matches!(self, Policy::FirstReward { .. })
    }

    /// `true` when [`score`](Self::score) ignores `ctx.now`: the score of
    /// a queued job is fixed at submission (arrival, RPT, decay, and
    /// expiration are all constant while it waits). Such scores can be
    /// cached once and served from a heap instead of recomputed per
    /// dispatch instant (see [`crate::pool::PendingPool`]).
    pub fn time_invariant_score(&self) -> bool {
        matches!(
            self,
            Policy::Fcfs | Policy::Srpt | Policy::Swpt | Policy::EarliestDeadline
        )
    }

    /// Short, stable name for reports and bench labels.
    pub fn name(&self) -> String {
        match self {
            Policy::Fcfs => "FCFS".into(),
            Policy::Srpt => "SRPT".into(),
            Policy::Swpt => "SWPT".into(),
            Policy::FirstPrice => "FirstPrice".into(),
            Policy::EarliestDeadline => "EDF".into(),
            Policy::PresentValue { discount_rate } => {
                format!("PV(rate={discount_rate})")
            }
            Policy::FirstReward {
                alpha,
                discount_rate,
            } => format!("FirstReward(α={alpha},rate={discount_rate})"),
        }
    }

    /// Scores `job` at dispatch point `ctx.now`; higher runs first.
    ///
    /// Panics if the policy [`needs_cost_model`](Self::needs_cost_model)
    /// and `ctx.cost` is `None` — callers own providing the queue model.
    pub fn score(&self, job: &Job, ctx: &ScoreCtx<'_>) -> f64 {
        let rpt = job.rpt.as_f64().max(f64::MIN_POSITIVE);
        match self {
            Policy::Fcfs => -job.spec.arrival.as_f64(),
            Policy::Srpt => -rpt,
            Policy::Swpt => job.spec.decay / rpt,
            Policy::FirstPrice => job.yield_if_started(ctx.now) / rpt,
            Policy::EarliestDeadline => {
                let expire = job.spec.expire_time();
                if expire == Time::INFINITY {
                    f64::NEG_INFINITY
                } else {
                    -expire.as_f64()
                }
            }
            Policy::PresentValue { discount_rate } => {
                job.present_value(ctx.now, *discount_rate) / rpt
            }
            Policy::FirstReward {
                alpha,
                discount_rate,
            } => {
                let pv = job.present_value(ctx.now, *discount_rate);
                let cost = ctx
                    .cost
                    .expect("FirstReward requires a CostModel in ScoreCtx")
                    .cost_of(job, ctx.now);
                (alpha * pv - (1.0 - alpha) * cost) / rpt
            }
        }
    }

    /// Selects the index of the best job in `queue` at `ctx.now`
    /// (max score, ties to the lowest task id). `None` on an empty queue.
    pub fn select<'a>(
        &self,
        queue: impl IntoIterator<Item = &'a Job>,
        ctx: &ScoreCtx<'_>,
    ) -> Option<usize> {
        let mut best: Option<(usize, f64, u64)> = None;
        for (idx, job) in queue.into_iter().enumerate() {
            let score = self.score(job, ctx);
            let id = job.id().0;
            let better = match &best {
                None => true,
                Some((_, bs, bid)) => score > *bs || (score == *bs && id < *bid),
            };
            if better {
                best = Some((idx, score, id));
            }
        }
        best.map(|(idx, _, _)| idx)
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Everything a policy may consult when scoring a job.
#[derive(Debug, Clone, Copy)]
pub struct ScoreCtx<'a> {
    /// The dispatch instant scores are evaluated at.
    pub now: Time,
    /// Opportunity-cost model of the competing queue, built at `now`.
    /// Required by [`Policy::FirstReward`], ignored by the rest.
    pub cost: Option<&'a CostModel>,
}

impl<'a> ScoreCtx<'a> {
    /// A context without a cost model (sufficient for all gain-only
    /// policies).
    pub fn simple(now: Time) -> Self {
        ScoreCtx { now, cost: None }
    }

    /// A context carrying the queue's cost model.
    pub fn with_cost(now: Time, cost: &'a CostModel) -> Self {
        ScoreCtx {
            now,
            cost: Some(cost),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbts_workload::{PenaltyBound, TaskSpec};

    fn job(id: u64, arrival: f64, runtime: f64, value: f64, decay: f64) -> Job {
        Job::new(TaskSpec::new(
            id,
            arrival,
            runtime,
            value,
            decay,
            PenaltyBound::Unbounded,
        ))
    }

    #[test]
    fn fcfs_prefers_earlier_arrival() {
        let a = job(0, 1.0, 10.0, 5.0, 0.1);
        let b = job(1, 2.0, 1.0, 500.0, 9.0);
        let ctx = ScoreCtx::simple(Time::from(10.0));
        assert!(Policy::Fcfs.score(&a, &ctx) > Policy::Fcfs.score(&b, &ctx));
    }

    #[test]
    fn srpt_prefers_shorter() {
        let long = job(0, 0.0, 10.0, 500.0, 9.0);
        let short = job(1, 0.0, 1.0, 5.0, 0.1);
        let ctx = ScoreCtx::simple(Time::from(10.0));
        assert!(Policy::Srpt.score(&short, &ctx) > Policy::Srpt.score(&long, &ctx));
    }

    #[test]
    fn swpt_prefers_high_decay_per_time() {
        let urgent_short = job(0, 0.0, 2.0, 10.0, 4.0); // d/rpt = 2
        let calm_long = job(1, 0.0, 10.0, 1000.0, 1.0); // d/rpt = 0.1
        let ctx = ScoreCtx::simple(Time::ZERO);
        assert!(Policy::Swpt.score(&urgent_short, &ctx) > Policy::Swpt.score(&calm_long, &ctx));
    }

    #[test]
    fn first_price_is_unit_gain() {
        let j = job(0, 0.0, 10.0, 100.0, 1.0);
        // Started at t=5: completes 15, delay 5 → yield 95 → score 9.5.
        let ctx = ScoreCtx::simple(Time::from(5.0));
        assert!((Policy::FirstPrice.score(&j, &ctx) - 9.5).abs() < 1e-12);
    }

    #[test]
    fn pv_at_zero_rate_equals_first_price() {
        let jobs: Vec<Job> = (0..5)
            .map(|i| job(i, 0.0, 1.0 + i as f64, 10.0 * (i + 1) as f64, 0.3))
            .collect();
        let ctx = ScoreCtx::simple(Time::from(3.0));
        for j in &jobs {
            assert_eq!(
                Policy::pv(0.0).score(j, &ctx),
                Policy::FirstPrice.score(j, &ctx)
            );
        }
    }

    #[test]
    fn pv_discount_penalizes_long_jobs() {
        // Same unit gain, different lengths: discounting favours short.
        let short = job(0, 0.0, 1.0, 10.0, 0.0);
        let long = job(1, 0.0, 100.0, 1000.0, 0.0);
        let ctx = ScoreCtx::simple(Time::ZERO);
        // Equal under FirstPrice…
        assert!(
            (Policy::FirstPrice.score(&short, &ctx) - Policy::FirstPrice.score(&long, &ctx)).abs()
                < 1e-12
        );
        // …but short wins under PV.
        let pv = Policy::pv(0.01);
        assert!(pv.score(&short, &ctx) > pv.score(&long, &ctx));
    }

    #[test]
    fn first_reward_alpha_one_is_pv() {
        let jobs: Vec<Job> = (0..4)
            .map(|i| job(i, 0.0, 2.0 + i as f64, 50.0, 0.5 * i as f64))
            .collect();
        let model = CostModel::build(Time::from(1.0), &jobs);
        let ctx = ScoreCtx::with_cost(Time::from(1.0), &model);
        for j in &jobs {
            let fr = Policy::first_reward(1.0, 0.02).score(j, &ctx);
            let pv = Policy::pv(0.02).score(j, &ctx);
            assert!((fr - pv).abs() < 1e-12);
        }
    }

    #[test]
    fn first_reward_alpha_zero_orders_like_swpt_when_unbounded() {
        // With unbounded penalties, cost_i/RPT_i = D − d_i, so
        // −cost/rpt = d_i − D: same ordering as SWPT's d_i/rpt? Not in
        // general — the paper's α=0 limit is a *variant* of SWPT: it
        // minimizes per-unit cost. Eq. 5 shows cost_i/RPT_i = D − d_i,
        // whose argmin is argmax d_i. For equal RPTs the orderings agree.
        let jobs: Vec<Job> = (0..4)
            .map(|i| job(i, 0.0, 5.0, 50.0, 1.0 + i as f64))
            .collect();
        let model = CostModel::build(Time::ZERO, &jobs);
        let ctx = ScoreCtx::with_cost(Time::ZERO, &model);
        let fr = Policy::first_reward(0.0, 0.01);
        let best_fr = fr.select(&jobs, &ctx).unwrap();
        let best_swpt = Policy::Swpt
            .select(&jobs, &ScoreCtx::simple(Time::ZERO))
            .unwrap();
        assert_eq!(best_fr, best_swpt);
        assert_eq!(best_fr, 3); // the most urgent task
    }

    #[test]
    fn first_reward_balances_gain_and_cost() {
        // High-gain candidate vs. low-gain candidate in a queue with an
        // urgent competitor: at high α gain wins, at low α cost dominates
        // and the *shorter* (cheaper to run) task wins.
        let high_gain_long = job(0, 0.0, 20.0, 400.0, 0.1);
        let low_gain_short = job(1, 0.0, 1.0, 10.0, 0.1);
        let urgent = job(2, 0.0, 5.0, 50.0, 8.0);
        let queue = vec![high_gain_long.clone(), low_gain_short.clone(), urgent];
        let model = CostModel::build(Time::ZERO, &queue);
        let ctx = ScoreCtx::with_cost(Time::ZERO, &model);

        let gain_heavy = Policy::first_reward(1.0, 0.0);
        assert!(gain_heavy.score(&high_gain_long, &ctx) > gain_heavy.score(&low_gain_short, &ctx));

        let cost_heavy = Policy::first_reward(0.0, 0.0);
        // Per-unit cost is (D − d_i) which is equal here, so scores tie on
        // cost; gain ignored → equal. Use a small α to break toward the
        // very different per-unit gains… the long job's per-unit cost
        // equals the short one's; with α=0.1 the unit-gain difference
        // decides. unit gains: 400/20 = 20 vs 10/1 = 10 minus cost terms.
        let s_long = cost_heavy.score(&high_gain_long, &ctx);
        let s_short = cost_heavy.score(&low_gain_short, &ctx);
        assert!((s_long - s_short).abs() < 1e-9);
    }

    #[test]
    fn select_breaks_ties_by_id() {
        let a = job(3, 0.0, 5.0, 50.0, 1.0);
        let b = job(1, 0.0, 5.0, 50.0, 1.0);
        let c = job(2, 0.0, 5.0, 50.0, 1.0);
        let ctx = ScoreCtx::simple(Time::ZERO);
        let queue = vec![a, b, c];
        // All identical scores: the lowest id (1) at index 1 wins.
        assert_eq!(Policy::FirstPrice.select(&queue, &ctx), Some(1));
    }

    #[test]
    fn select_empty_queue_is_none() {
        let ctx = ScoreCtx::simple(Time::ZERO);
        assert_eq!(Policy::FirstPrice.select(&[], &ctx), None);
    }

    #[test]
    #[should_panic(expected = "requires a CostModel")]
    fn first_reward_without_model_panics() {
        let j = job(0, 0.0, 5.0, 50.0, 1.0);
        let ctx = ScoreCtx::simple(Time::ZERO);
        let _ = Policy::first_reward(0.5, 0.01).score(&j, &ctx);
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0, 1]")]
    fn alpha_out_of_range_rejected() {
        let _ = Policy::first_reward(1.5, 0.01);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Policy::Fcfs.name(), "FCFS");
        assert_eq!(Policy::pv(0.01).name(), "PV(rate=0.01)");
        assert!(Policy::first_reward(0.3, 0.01).name().contains("α=0.3"));
    }

    #[test]
    fn serde_roundtrip() {
        for p in [
            Policy::Fcfs,
            Policy::Srpt,
            Policy::Swpt,
            Policy::FirstPrice,
            Policy::pv(0.02),
            Policy::first_reward(0.4, 0.01),
        ] {
            let json = serde_json::to_string(&p).unwrap();
            let back: Policy = serde_json::from_str(&json).unwrap();
            assert_eq!(back, p);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use mbts_workload::{PenaltyBound, TaskSpec};
    use proptest::prelude::*;

    fn arb_job(id: u64) -> impl Strategy<Value = Job> {
        (0.1f64..50.0, 0.0f64..300.0, 0.0f64..10.0).prop_map(move |(rt, v, d)| {
            Job::new(TaskSpec::new(id, 0.0, rt, v, d, PenaltyBound::Unbounded))
        })
    }

    proptest! {
        /// select() always returns the argmax of score() with lowest-id
        /// tie-break, for every policy.
        #[test]
        fn select_is_argmax(
            rts in proptest::collection::vec((0.1f64..50.0, 0.0f64..300.0, 0.0f64..10.0), 1..30),
            now in 0.0f64..100.0,
        ) {
            let jobs: Vec<Job> = rts.iter().enumerate().map(|(i, (rt, v, d))| {
                Job::new(TaskSpec::new(i as u64, 0.0, *rt, *v, *d, PenaltyBound::Unbounded))
            }).collect();
            let now = Time::from(now);
            let model = CostModel::build(now, &jobs);
            for policy in [
                Policy::Fcfs, Policy::Srpt, Policy::Swpt, Policy::FirstPrice,
                Policy::pv(0.01), Policy::first_reward(0.3, 0.01),
            ] {
                let ctx = ScoreCtx::with_cost(now, &model);
                let chosen = policy.select(&jobs, &ctx).unwrap();
                let chosen_score = policy.score(&jobs[chosen], &ctx);
                for (i, j) in jobs.iter().enumerate() {
                    let s = policy.score(j, &ctx);
                    prop_assert!(s <= chosen_score + 1e-12);
                    if s == chosen_score && i != chosen {
                        prop_assert!(jobs[chosen].id().0 < j.id().0);
                    }
                }
            }
        }

        /// FirstReward interpolates: its score is a monotone function of α
        /// between the pure-cost and pure-gain extremes.
        #[test]
        fn first_reward_interpolates(j in arb_job(0), others in proptest::collection::vec(arb_job(1), 1..10), now in 0.0f64..50.0) {
            let now = Time::from(now);
            let mut all = vec![j.clone()];
            all.extend(others);
            let model = CostModel::build(now, &all);
            let ctx = ScoreCtx::with_cost(now, &model);
            let s0 = Policy::first_reward(0.0, 0.01).score(&j, &ctx);
            let s5 = Policy::first_reward(0.5, 0.01).score(&j, &ctx);
            let s1 = Policy::first_reward(1.0, 0.01).score(&j, &ctx);
            // s(α) is linear in α: midpoint equals the average.
            prop_assert!((s5 - 0.5 * (s0 + s1)).abs() < 1e-6);
        }
    }
}

#[cfg(test)]
mod edf_tests {
    use super::*;
    use mbts_workload::{PenaltyBound, TaskSpec};

    fn bounded(id: u64, runtime: f64, value: f64, decay: f64) -> Job {
        Job::new(TaskSpec::new(
            id,
            0.0,
            runtime,
            value,
            decay,
            PenaltyBound::ZERO,
        ))
    }

    #[test]
    fn edf_orders_by_expiration() {
        // Expire times: value/decay after earliest completion.
        let soon = bounded(0, 1.0, 10.0, 10.0); // expires at 1 + 1 = 2
        let later = bounded(1, 1.0, 100.0, 1.0); // expires at 1 + 100 = 101
        let ctx = ScoreCtx::simple(Time::ZERO);
        assert!(
            Policy::EarliestDeadline.score(&soon, &ctx)
                > Policy::EarliestDeadline.score(&later, &ctx)
        );
    }

    #[test]
    fn edf_puts_deadline_free_tasks_last() {
        let dead = bounded(0, 1.0, 10.0, 1.0);
        let immortal = Job::new(TaskSpec::new(
            1,
            0.0,
            1.0,
            10.0,
            1.0,
            PenaltyBound::Unbounded,
        ));
        let ctx = ScoreCtx::simple(Time::ZERO);
        assert!(
            Policy::EarliestDeadline.score(&dead, &ctx)
                > Policy::EarliestDeadline.score(&immortal, &ctx)
        );
        assert_eq!(
            Policy::EarliestDeadline.score(&immortal, &ctx),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn edf_is_time_invariant() {
        // Expiration is absolute: EDF scores don't drift with `now`.
        let j = bounded(0, 5.0, 50.0, 2.0);
        let early = Policy::EarliestDeadline.score(&j, &ScoreCtx::simple(Time::ZERO));
        let late = Policy::EarliestDeadline.score(&j, &ScoreCtx::simple(Time::from(100.0)));
        assert_eq!(early, late);
    }

    #[test]
    fn edf_name_and_serde() {
        assert_eq!(Policy::EarliestDeadline.name(), "EDF");
        let json = serde_json::to_string(&Policy::EarliestDeadline).unwrap();
        let back: Policy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Policy::EarliestDeadline);
    }
}
