//! Emits `BENCH_market.json`: market-economy event throughput of the
//! sharded conservative-PDES runner vs the serial engine, across a
//! sites-scaling curve up to 1000 sites × 5000 tasks.
//!
//! Run with `cargo run --release -p mbts-bench --bin bench_market`.
//! Writes to the current directory, or to the path given as the first
//! argument.
//!
//! Honesty rules: the sharded engine is only *expected* to win when the
//! machine can actually run shards concurrently. The ≥2× gate on the
//! 256-site / 8-shard configuration is therefore enforced only when
//! `std::thread::available_parallelism()` reports at least 2 CPUs; on a
//! single-CPU machine the run records the measured ratio (with the
//! parallelism that produced it) and asserts only that the sharded
//! path's coordination overhead stays within a 0.5× sanity floor.
//! Either way, every measured pair is first checked bit-identical —
//! throughput numbers from diverging runs would be meaningless.

use mbts_core::{AdmissionPolicy, Policy};
use mbts_market::{EconomyConfig, EconomyRun, ShardExecMode, ShardedEconomyRun};
use mbts_site::SiteConfig;
use mbts_trace::Tracer;
use mbts_workload::{generate_trace, MixConfig, Trace};
use std::fmt::Write as _;
use std::time::Instant;

/// Full measurement passes; each row keeps its best-throughput trial.
const TRIALS: usize = 2;

/// Shard count for the scaling gate.
const GATE_SHARDS: usize = 8;

/// Sites count the ≥2× gate is measured at.
const GATE_SITES: usize = 256;

/// Speedup floor at `GATE_SITES`/`GATE_SHARDS` on a multi-CPU machine.
const MIN_SPEEDUP: f64 = 2.0;

/// Coordination-overhead floor everywhere: even time-sliced on one CPU
/// the sharded engine must stay within 2× of serial.
const SANITY_FLOOR: f64 = 0.5;

struct Row {
    sites: usize,
    tasks: usize,
    shards: usize,
    threaded: bool,
    events: u64,
    serial_events_per_sec: f64,
    sharded_events_per_sec: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.sharded_events_per_sec / self.serial_events_per_sec
    }
}

fn workload(sites: usize) -> (EconomyConfig, Trace) {
    let tasks = 5 * sites;
    let cfg = EconomyConfig::uniform(
        sites,
        SiteConfig::new(2)
            .with_policy(Policy::FirstPrice)
            .with_admission(AdmissionPolicy::SlackThreshold { threshold: 0.0 }),
    );
    let trace = generate_trace(
        &MixConfig::millennium_default()
            .with_tasks(tasks)
            .with_processors(2 * sites)
            .with_load_factor(1.2),
        7,
    );
    (cfg, trace)
}

/// Times one serial run; returns (events handled, events/sec, paid bits).
fn run_serial(cfg: &EconomyConfig, trace: &Trace) -> (u64, f64, u64) {
    let mut run = EconomyRun::new(cfg.clone(), trace, Tracer::Off);
    let start = Instant::now();
    run.run_to_completion();
    let secs = start.elapsed().as_secs_f64();
    let events = run.events_handled();
    let (outcome, _) = run.finish();
    (events, events as f64 / secs, outcome.total_paid.to_bits())
}

/// Times one sharded run; returns (events/sec, threaded?, paid bits).
fn run_sharded(cfg: &EconomyConfig, trace: &Trace, shards: usize) -> (f64, bool, u64) {
    let mut run =
        ShardedEconomyRun::new(cfg.clone(), trace, Tracer::Off, shards, ShardExecMode::Auto);
    let start = Instant::now();
    run.run_to_completion();
    let secs = start.elapsed().as_secs_f64();
    let events = run.events_handled();
    let threaded = run.shard_stats().threaded;
    let (outcome, _) = run.finish();
    (events as f64 / secs, threaded, outcome.total_paid.to_bits())
}

fn collect_rows(trial: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for sites in [64usize, 128, 256, 512, 1000] {
        let (cfg, trace) = workload(sites);
        let (events, serial_eps, serial_bits) = run_serial(&cfg, &trace);
        let (sharded_eps, threaded, sharded_bits) = run_sharded(&cfg, &trace, GATE_SHARDS);
        assert_eq!(
            serial_bits, sharded_bits,
            "{sites} sites: sharded run diverged from serial — benchmark void"
        );
        let row = Row {
            sites,
            tasks: trace.tasks.len(),
            shards: GATE_SHARDS,
            threaded,
            events,
            serial_events_per_sec: serial_eps,
            sharded_events_per_sec: sharded_eps,
        };
        eprintln!(
            "trial {trial}: {sites:>5} sites x {:>5} tasks ({} events): serial {serial_eps:>10.0} ev/s, \
             sharded x{GATE_SHARDS}{} {sharded_eps:>10.0} ev/s, speedup {:.2}x",
            row.tasks,
            row.events,
            if threaded { " (threaded)" } else { " (inline)" },
            row.speedup()
        );
        rows.push(row);
    }
    rows
}

fn gate_row(rows: &[Row]) -> &Row {
    rows.iter()
        .find(|r| r.sites == GATE_SITES)
        .expect("gated configuration present")
}

/// Extracts prior `"history"` entries so each run appends its record.
fn load_history(path: &str) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut entries = Vec::new();
    let mut in_history = false;
    for line in text.lines() {
        let t = line.trim();
        if in_history {
            if t == "]" || t == "]," {
                break;
            }
            entries.push(t.trim_end_matches(',').to_string());
        } else if t.starts_with("\"history\"") && t.ends_with('[') {
            in_history = true;
        }
    }
    entries
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_market.json".to_string());
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut rows: Vec<Row> = Vec::new();
    for trial in 1..=TRIALS {
        let pass = collect_rows(trial);
        if rows.is_empty() {
            rows = pass;
        } else {
            for (best, cand) in rows.iter_mut().zip(pass) {
                debug_assert_eq!(best.sites, cand.sites);
                if cand.speedup() > best.speedup() {
                    *best = cand;
                }
            }
        }
    }

    let gate = gate_row(&rows);
    let gated = parallelism >= 2;
    eprintln!(
        "gate: {GATE_SITES} sites x{GATE_SHARDS} shards speedup {:.2}x on {parallelism} CPUs \
         (hard >= {MIN_SPEEDUP}x {}, best of {TRIALS} trials)",
        gate.speedup(),
        if gated {
            "enforced"
        } else {
            "NOT enforced: single CPU"
        },
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"market_sharded_scaling\",");
    let _ = writeln!(json, "  \"parallelism\": {parallelism},");
    let _ = writeln!(json, "  \"trials\": {TRIALS},");
    let _ = writeln!(json, "  \"best_of\": true,");
    let _ = writeln!(
        json,
        "  \"gate\": {{ \"sites\": {GATE_SITES}, \"shards\": {GATE_SHARDS}, \
         \"min_speedup\": {MIN_SPEEDUP}, \"enforced\": {gated}, \"speedup\": {:.3} }},",
        gate.speedup()
    );
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{ \"sites\": {}, \"tasks\": {}, \"shards\": {}, \"threaded\": {}, \
             \"events\": {}, \"serial_events_per_sec\": {:.1}, \
             \"sharded_events_per_sec\": {:.1}, \"speedup\": {:.3} }}",
            r.sites,
            r.tasks,
            r.shards,
            r.threaded,
            r.events,
            r.serial_events_per_sec,
            r.sharded_events_per_sec,
            r.speedup()
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");

    let mut history = load_history(&out);
    history.push(format!(
        "{{ \"run\": {}, \"parallelism\": {parallelism}, \"gate_speedup\": {:.3} }}",
        history.len() + 1,
        gate.speedup()
    ));
    json.push_str("  \"history\": [\n");
    for (i, entry) in history.iter().enumerate() {
        let _ = write!(json, "    {entry}");
        json.push_str(if i + 1 < history.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, json).expect("write BENCH_market.json");
    eprintln!("wrote {out} ({} history entries)", history.len());

    for r in &rows {
        assert!(
            r.speedup() >= SANITY_FLOOR,
            "sanity floor: {} sites sharded/serial ratio {:.2}x < {SANITY_FLOOR}x — \
             coordination overhead is out of hand",
            r.sites,
            r.speedup()
        );
    }
    if gated {
        assert!(
            gate_row(&rows).speedup() >= MIN_SPEEDUP,
            "scaling gate: {GATE_SITES} sites x{GATE_SHARDS} shards speedup {:.2}x < {MIN_SPEEDUP}x \
             on {parallelism} CPUs",
            gate_row(&rows).speedup()
        );
    }
}
