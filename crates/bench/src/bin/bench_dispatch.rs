//! Emits `BENCH_dispatch.json`: dispatch throughput of the incremental
//! pending pool vs the rebuild-per-event baseline on the shared
//! [`mbts_bench::hotpath`] fixtures, plus the incremental/rebuild
//! speedup ratio per (policy, queue depth).
//!
//! Run with `cargo run --release -p mbts-bench --bin bench_dispatch`
//! (release: the numbers gate a ≥5× regression budget for FirstReward
//! at 10 000 pending). Every run takes [`TRIALS`] full measurement
//! passes and reports each configuration's best trial, so neither the
//! gate nor the history entries record single-trial noise. Writes to
//! the current directory, or to the path given as the first argument.

use mbts_bench::hotpath::{drain_incremental, drain_rebuild, pending_queue, pool_of};
use mbts_core::Policy;
use std::fmt::Write as _;
use std::time::Instant;

const EVENTS: usize = 200;
const DT: f64 = 0.05;
const REPS: usize = 25;

/// Full measurement passes per run; each row reports its best trial.
const TRIALS: usize = 3;

/// The regression budget for the gated configuration.
const MIN_SPEEDUP: f64 = 5.0;

struct Row {
    policy: &'static str,
    pending: usize,
    incremental_events_per_sec: f64,
    rebuild_events_per_sec: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.incremental_events_per_sec / self.rebuild_events_per_sec
    }
}

/// Best-of-`REPS` wall time for `events` decisions. Each rep gets a
/// fresh fixture from `setup`, built outside the timed region. Returns
/// (events/sec, pick checksum).
fn measure<S>(mut setup: impl FnMut() -> S, mut run: impl FnMut(&mut S) -> u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut checksum = 0;
    for _ in 0..REPS {
        let mut state = setup();
        let start = Instant::now();
        checksum = run(&mut state);
        best = best.min(start.elapsed().as_secs_f64());
    }
    (EVENTS as f64 / best, checksum)
}

/// One full measurement pass over every (policy, depth) configuration.
fn collect_rows(trial: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for n in [1_000usize, 10_000] {
        let jobs = pending_queue(n);
        for (label, policy) in [
            ("FirstPrice", Policy::FirstPrice),
            ("FirstReward", Policy::first_reward(0.3, 0.01)),
        ] {
            let (inc, inc_sum) = measure(
                || pool_of(policy, &jobs),
                |pool| drain_incremental(pool, EVENTS, DT),
            );
            let (reb, reb_sum) = measure(
                || jobs.clone(),
                |queue| drain_rebuild(policy, queue, EVENTS, DT),
            );
            assert_eq!(
                inc_sum, reb_sum,
                "{label}@{n}: the two paths picked different tasks"
            );
            let row = Row {
                policy: label,
                pending: n,
                incremental_events_per_sec: inc,
                rebuild_events_per_sec: reb,
            };
            eprintln!(
                "trial {trial}: {label:>12} @ {n:>6} pending: incremental {inc:>12.0} ev/s, \
                 rebuild {reb:>12.0} ev/s, speedup {:.2}x",
                row.speedup()
            );
            rows.push(row);
        }
    }
    rows
}

fn gate_speedup(rows: &[Row]) -> f64 {
    rows.iter()
        .find(|r| r.policy == "FirstReward" && r.pending == 10_000)
        .expect("gated configuration present")
        .speedup()
}

/// Extracts the entry lines of the `"history"` array from a previously
/// written `BENCH_dispatch.json`, so each run appends to the record
/// instead of erasing it. Files written before the history array
/// existed (or a missing file) yield an empty history.
fn load_history(path: &str) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut entries = Vec::new();
    let mut in_history = false;
    for line in text.lines() {
        let t = line.trim();
        if in_history {
            if t == "]" || t == "]," {
                break;
            }
            entries.push(t.trim_end_matches(',').to_string());
        } else if t.starts_with("\"history\"") && t.ends_with('[') {
            in_history = true;
        }
    }
    entries
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_dispatch.json".to_string());

    // Always take TRIALS full passes and keep, per configuration, the
    // trial with the best speedup. A single pass is hostage to one-off
    // machine stalls; the per-row best-of keeps every history entry and
    // every row comparable across runs.
    let mut rows: Vec<Row> = Vec::new();
    for trial in 1..=TRIALS {
        let pass = collect_rows(trial);
        if rows.is_empty() {
            rows = pass;
        } else {
            for (best, cand) in rows.iter_mut().zip(pass) {
                debug_assert_eq!(best.policy, cand.policy);
                debug_assert_eq!(best.pending, cand.pending);
                if cand.speedup() > best.speedup() {
                    *best = cand;
                }
            }
        }
    }
    let trials = TRIALS;
    eprintln!(
        "gate: FirstReward @ 10000 pending speedup {:.2}x, best of {trials} trials \
         (budget >= {MIN_SPEEDUP}x)",
        gate_speedup(&rows)
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"dispatch_hotpath\",");
    let _ = writeln!(json, "  \"events_per_measurement\": {EVENTS},");
    let _ = writeln!(json, "  \"dt_per_event\": {DT},");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(json, "  \"trials\": {trials},");
    let _ = writeln!(json, "  \"best_of\": true,");
    let _ = writeln!(
        json,
        "  \"gate\": {{ \"policy\": \"FirstReward\", \"pending\": 10000, \
         \"min_speedup\": {MIN_SPEEDUP}, \"speedup\": {:.3} }},",
        gate_speedup(&rows)
    );
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{ \"policy\": \"{}\", \"pending\": {}, \
             \"incremental_events_per_sec\": {:.1}, \
             \"rebuild_events_per_sec\": {:.1}, \"speedup\": {:.3} }}",
            r.policy,
            r.pending,
            r.incremental_events_per_sec,
            r.rebuild_events_per_sec,
            r.speedup()
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");

    // Every run appends one entry to the history array, so the file
    // doubles as a machine-local record of gate speedups over time.
    let mut history = load_history(&out);
    history.push(format!(
        "{{ \"run\": {}, \"trials\": {trials}, \"gate_speedup\": {:.3} }}",
        history.len() + 1,
        gate_speedup(&rows)
    ));
    json.push_str("  \"history\": [\n");
    for (i, entry) in history.iter().enumerate() {
        let _ = write!(json, "    {entry}");
        json.push_str(if i + 1 < history.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, json).expect("write BENCH_dispatch.json");
    eprintln!("wrote {out} ({} history entries)", history.len());

    assert!(
        gate_speedup(&rows) >= MIN_SPEEDUP,
        "regression gate: FirstReward @ 10000 pending speedup {:.2}x < {MIN_SPEEDUP}x \
         after {trials} trials",
        gate_speedup(&rows)
    );
}
