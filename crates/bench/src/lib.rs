//! Shared helpers for MBTS Criterion benches.
