//! Shared helpers for MBTS Criterion benches.
//!
//! [`hotpath`] carries the dispatch-loop fixtures used by both the
//! `scheduler_hotpath` criterion bench and the `bench_dispatch` binary
//! that emits `BENCH_dispatch.json`, so the two always measure the same
//! workload.

pub mod hotpath {
    //! The dispatch hot path: one scheduling decision per queue event,
    //! either on the incremental [`PendingPool`] or by rebuilding scores
    //! (and the cost model) from scratch — the pre-pool baseline.

    use mbts_core::{CostModel, Job, PendingPool, Policy, ScoreCtx};
    use mbts_sim::Time;
    use mbts_workload::{generate_trace, BoundPolicy, MixConfig};

    /// A backlog of `n` pending jobs with mixed finite/unbounded decay
    /// windows, so the cost model's BTree path carries real weight.
    pub fn pending_queue(n: usize) -> Vec<Job> {
        let mix = MixConfig::millennium_default()
            .with_tasks(n)
            .with_processors(8)
            .with_load_factor(4.0)
            .with_bound(BoundPolicy::ProportionalPenalty { fraction: 0.5 });
        generate_trace(&mix, 97)
            .tasks
            .into_iter()
            .map(Job::new)
            .collect()
    }

    /// A pool pre-loaded with clones of `jobs`.
    pub fn pool_of(policy: Policy, jobs: &[Job]) -> PendingPool {
        let mut pool = PendingPool::new(policy);
        for job in jobs {
            pool.push(job.clone());
        }
        pool
    }

    /// Drains `events` dispatch decisions from the incremental pool,
    /// advancing the clock by `dt` per decision. Returns a checksum of
    /// the picked task ids so the work cannot be optimized away and the
    /// two paths can be cross-checked.
    pub fn drain_incremental(pool: &mut PendingPool, events: usize, dt: f64) -> u64 {
        let mut now = Time::ZERO;
        let mut sum = 0u64;
        for _ in 0..events {
            let Some(best) = pool.select_best(now) else {
                break;
            };
            sum = sum
                .wrapping_mul(31)
                .wrapping_add(pool.swap_remove(best).id().0);
            now = Time::new(now.as_f64() + dt);
        }
        sum
    }

    /// The same drain on the rebuild-per-event baseline: every decision
    /// rebuilds the cost model and rescores the whole queue.
    pub fn drain_rebuild(policy: Policy, queue: &mut Vec<Job>, events: usize, dt: f64) -> u64 {
        let mut now = Time::ZERO;
        let mut sum = 0u64;
        for _ in 0..events {
            if queue.is_empty() {
                break;
            }
            let model = policy
                .needs_cost_model()
                .then(|| CostModel::build(now, queue.iter()));
            let ctx = match &model {
                Some(m) => ScoreCtx::with_cost(now, m),
                None => ScoreCtx::simple(now),
            };
            let Some(best) = policy.select(queue.iter(), &ctx) else {
                break;
            };
            sum = sum
                .wrapping_mul(31)
                .wrapping_add(queue.swap_remove(best).id().0);
            now = Time::new(now.as_f64() + dt);
        }
        sum
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn both_drains_pick_the_same_tasks() {
            let jobs = pending_queue(200);
            for policy in [
                Policy::Fcfs,
                Policy::FirstPrice,
                Policy::first_reward(0.3, 0.01),
            ] {
                let mut pool = pool_of(policy, &jobs);
                let mut queue = jobs.clone();
                let a = drain_incremental(&mut pool, 150, 0.05);
                let b = drain_rebuild(policy, &mut queue, 150, 0.05);
                assert_eq!(a, b, "{policy:?} drains diverged");
            }
        }
    }
}
