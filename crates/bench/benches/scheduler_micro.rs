//! Scheduler micro-benchmarks and the ablation benches DESIGN.md calls
//! out:
//!
//! * `dispatch_select` — argmax dispatch per policy across queue sizes,
//! * `cost_modes` — Eq. 4 via the prefix-sum [`CostModel`] vs the naive
//!   O(n) reference vs the Eq. 5 aggregate fast path,
//! * `schedule_modes` — static vs dynamic candidate-schedule builds,
//! * `event_queue` — pending-event-set throughput,
//! * `decay_sum` — the incremental aggregate-decay accumulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbts_core::{build_candidate, cost, CostModel, DecaySum, Job, Policy, ScheduleMode, ScoreCtx};
use mbts_sim::{EventQueue, Time};
use mbts_workload::{generate_trace, BoundPolicy, MixConfig};
use std::hint::black_box;

fn queue_of(n: usize, bound: BoundPolicy) -> Vec<Job> {
    let mix = MixConfig::millennium_default()
        .with_tasks(n)
        .with_processors(8)
        .with_bound(bound);
    generate_trace(&mix, 7)
        .tasks
        .into_iter()
        .map(Job::new)
        .collect()
}

fn dispatch_select(c: &mut Criterion) {
    let mut g = c.benchmark_group("dispatch_select");
    for n in [16usize, 128, 1024] {
        let jobs = queue_of(n, BoundPolicy::ZeroFloor);
        let now = Time::from(50.0);
        for (label, policy) in [
            ("FirstPrice", Policy::FirstPrice),
            ("FirstReward", Policy::first_reward(0.3, 0.01)),
        ] {
            g.bench_with_input(
                BenchmarkId::new(label, n),
                &(&jobs, policy),
                |b, (jobs, policy)| {
                    b.iter(|| {
                        let model = policy
                            .needs_cost_model()
                            .then(|| CostModel::build(now, jobs.iter()));
                        let ctx = match &model {
                            Some(m) => ScoreCtx::with_cost(now, m),
                            None => ScoreCtx::simple(now),
                        };
                        black_box(policy.select(jobs.iter(), &ctx))
                    })
                },
            );
        }
    }
    g.finish();
}

fn cost_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("cost_modes");
    for n in [64usize, 512, 4096] {
        let bounded = queue_of(n, BoundPolicy::ZeroFloor);
        let unbounded = queue_of(n, BoundPolicy::Unbounded);
        let now = Time::from(50.0);
        // Prefix-sum model: one build + n queries (a full dispatch step).
        g.bench_with_input(BenchmarkId::new("prefix_sum", n), &bounded, |b, jobs| {
            b.iter(|| {
                let model = CostModel::build(now, jobs.iter());
                let total: f64 = jobs.iter().map(|j| model.cost_of(j, now)).sum();
                black_box(total)
            })
        });
        // Naive Eq. 4: O(n) per candidate, O(n²) per step.
        g.bench_with_input(BenchmarkId::new("naive", n), &bounded, |b, jobs| {
            b.iter(|| {
                let total: f64 = jobs.iter().map(|j| cost::cost_naive(now, j, jobs)).sum();
                black_box(total)
            })
        });
        // Eq. 5 aggregate fast path (valid for all-unbounded queues).
        g.bench_with_input(BenchmarkId::new("aggregate", n), &unbounded, |b, jobs| {
            b.iter(|| {
                let total_decay: f64 = jobs.iter().map(|j| j.spec.decay).sum();
                let model = CostModel::unbounded(total_decay);
                let total: f64 = jobs.iter().map(|j| model.cost_of(j, now)).sum();
                black_box(total)
            })
        });
    }
    g.finish();
}

fn schedule_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule_modes");
    let free = vec![Time::ZERO; 8];
    for n in [32usize, 256] {
        let jobs = queue_of(n, BoundPolicy::Unbounded);
        for (label, mode) in [
            ("static", ScheduleMode::Static),
            ("dynamic", ScheduleMode::Dynamic),
        ] {
            g.bench_with_input(BenchmarkId::new(label, n), &jobs, |b, jobs| {
                b.iter(|| {
                    black_box(build_candidate(
                        &Policy::first_reward(0.3, 0.01),
                        mode,
                        Time::ZERO,
                        &free,
                        jobs,
                    ))
                })
            });
        }
    }
    g.finish();
}

fn event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            for i in 0..10_000u64 {
                // Scatter timestamps without a stdlib RNG dependency.
                let t = ((i.wrapping_mul(2654435761)) % 100_000) as f64;
                q.schedule(Time::from(t), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
}

fn decay_sum(c: &mut Criterion) {
    c.bench_function("decay_sum_add_remove_10k", |b| {
        b.iter(|| {
            let mut s = DecaySum::new();
            for i in 0..10_000 {
                s.add(0.1 + (i % 13) as f64 * 0.01);
            }
            for i in 0..10_000 {
                s.remove(0.1 + (i % 13) as f64 * 0.01);
            }
            black_box(s.total())
        })
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(10);
    targets = dispatch_select, cost_modes, schedule_modes, event_queue, decay_sum
}
criterion_main!(micro);
