//! Market-layer benchmarks: the Figure-1 negotiation loop, elastic
//! provisioning, and SWF parsing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbts_core::{AdmissionPolicy, Policy};
use mbts_market::{
    run_elastic, ClientSelection, Economy, EconomyConfig, ElasticConfig, MigrationConfig,
    ProvisioningPolicy,
};
use mbts_site::SiteConfig;
use mbts_workload::{generate_trace, parse_swf, MixConfig, SwfOptions};
use std::hint::black_box;

fn trace(tasks: usize) -> mbts_workload::Trace {
    generate_trace(
        &MixConfig::millennium_default()
            .with_tasks(tasks)
            .with_processors(8)
            .with_load_factor(1.5)
            .with_mean_decay(0.05),
        42,
    )
}

/// Whole-economy negotiation across site counts.
fn economy_negotiation(c: &mut Criterion) {
    let t = trace(300);
    let mut g = c.benchmark_group("economy_negotiation");
    for sites in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(sites), &sites, |b, &n| {
            let mut cfg = EconomyConfig::uniform(
                n,
                SiteConfig::new(8 / n)
                    .with_policy(Policy::first_reward(0.2, 0.01))
                    .with_admission(AdmissionPolicy::SlackThreshold { threshold: 0.0 }),
            );
            cfg.selection = ClientSelection::EarliestCompletion;
            b.iter(|| black_box(Economy::new(cfg.clone()).run_trace(black_box(&t)).placed))
        });
    }
    g.finish();
}

/// Contract enforcement + migration overhead.
fn economy_migration(c: &mut Criterion) {
    let t = trace(300);
    let mut g = c.benchmark_group("economy_migration");
    for (label, migration) in [
        ("off", None),
        (
            "on",
            Some(MigrationConfig {
                grace: 100.0,
                max_attempts: 3,
            }),
        ),
    ] {
        g.bench_function(label, |b| {
            let mut cfg =
                EconomyConfig::uniform(2, SiteConfig::new(4).with_policy(Policy::FirstPrice));
            cfg.migration = migration;
            b.iter(|| black_box(Economy::new(cfg.clone()).run_trace(black_box(&t)).placed))
        });
    }
    g.finish();
}

/// The elastic reseller loop across provisioning policies.
fn elastic_provisioning(c: &mut Criterion) {
    let t = trace(300);
    let mut g = c.benchmark_group("elastic_provisioning");
    for (label, policy) in [
        ("static", ProvisioningPolicy::Static),
        (
            "queue_pressure",
            ProvisioningPolicy::QueuePressure {
                target_backlog: 100.0,
                step: 2,
            },
        ),
        (
            "marginal_gain",
            ProvisioningPolicy::MarginalGain {
                margin: 2.0,
                step: 4,
            },
        ),
    ] {
        g.bench_function(label, |b| {
            let cfg = ElasticConfig {
                site: SiteConfig::new(4).with_policy(Policy::FirstPrice),
                pool_total: 32,
                rent: 0.05,
                policy,
                review_interval: 50.0,
            };
            b.iter(|| black_box(run_elastic(&cfg, black_box(&t)).profit()))
        });
    }
    g.finish();
}

/// SWF parsing throughput.
fn swf_parse(c: &mut Criterion) {
    let mut text = String::from("; generated log\n");
    for i in 0..5000 {
        text.push_str(&format!(
            "{} {} 0 {} {} -1 -1 {} {} -1 1 1 1 1 1 -1 -1 -1\n",
            i + 1,
            i * 10,
            60 + i % 240,
            1 << (i % 4),
            1 << (i % 4),
            120 + i % 240,
        ));
    }
    let opts = SwfOptions::new(MixConfig::millennium_default(), 7);
    c.bench_function("swf_parse_5k_jobs", |b| {
        b.iter(|| black_box(parse_swf(black_box(&text), &opts).unwrap().len()))
    });
}

criterion_group! {
    name = market;
    config = Criterion::default().sample_size(10);
    targets = economy_negotiation, economy_migration, elastic_provisioning, swf_parse
}
criterion_main!(market);
