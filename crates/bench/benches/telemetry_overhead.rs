//! Overhead of the always-on live-telemetry registry on the serve hot
//! path.
//!
//! Every request the daemon answers pays one `count_request` plus one
//! `record_ns` (and the journal path two `telemetry::time` sections), so
//! these micro-benches price exactly the per-request instrumentation
//! cost. Three angles:
//!
//! * `disabled` — one relaxed atomic load per call, the floor the
//!   byte-identity tests rely on being negligible;
//! * `enabled` — shard selection + relaxed fetch-adds, what the daemon
//!   pays on every request (the flood ±5% gate in CI enforces this stays
//!   in the noise at the whole-request level);
//! * `scrape` — `snapshot().render_prometheus()`, the cost a `GET
//!   /metrics` poll puts on a worker thread, measured over a populated
//!   registry so bucket skipping doesn't flatter it.

use criterion::{criterion_group, criterion_main, Criterion};
use mbts_trace::telemetry::{self, Hist, Outcome, Route};
use std::hint::black_box;

/// One synthetic "request" worth of instrumentation: exactly the calls
/// `serve` issues per accepted submit (route counter + request latency
/// sample + the two journal sections).
fn instrument_one(i: u64) {
    telemetry::count_request(Route::Submit, Outcome::Ack);
    telemetry::record_ns(Hist::Request, 1_000 + (i % 512) * 37);
    telemetry::time(Hist::JournalAppend, || black_box(i.wrapping_mul(0x9e37)));
    telemetry::time(Hist::Apply, || black_box(i.wrapping_add(0x79b9)));
}

fn telemetry_overhead(c: &mut Criterion) {
    telemetry::disable();
    c.bench_function("serve_telemetry/disabled", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            instrument_one(black_box(i));
        })
    });

    telemetry::reset();
    telemetry::enable();
    c.bench_function("serve_telemetry/enabled", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            instrument_one(black_box(i));
        })
    });

    // Populate a realistic spread of series before pricing a scrape.
    for (r, route) in telemetry::ROUTES.iter().enumerate() {
        for (o, outcome) in telemetry::OUTCOMES.iter().enumerate() {
            telemetry::count_request(*route, *outcome);
            telemetry::record_ns(Hist::Request, ((r + 1) * (o + 1) * 911) as u64);
        }
    }
    c.bench_function("serve_telemetry/scrape", |b| {
        b.iter(|| black_box(telemetry::snapshot().render_prometheus()))
    });
    telemetry::disable();
}

criterion_group!(benches, telemetry_overhead);
criterion_main!(benches);
