//! The dispatch hot path under a deep backlog: incremental
//! [`mbts_core::PendingPool`] selection vs the rebuild-per-event
//! baseline, per policy and queue depth. `bench_dispatch` (the
//! `BENCH_dispatch.json` emitter) measures the same fixtures; this bench
//! is the interactive/regression view.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbts_bench::hotpath::{drain_incremental, drain_rebuild, pending_queue, pool_of};
use mbts_core::Policy;
use std::hint::black_box;

/// Events drained per timed routine. Large enough that the per-routine
/// fixture clone amortizes to noise against the per-event work.
const EVENTS: usize = 200;
const DT: f64 = 0.05;

fn scheduler_hotpath(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler_hotpath");
    for n in [1_000usize, 10_000] {
        let jobs = pending_queue(n);
        for (label, policy) in [
            ("FirstPrice", Policy::FirstPrice),
            ("FirstReward", Policy::first_reward(0.3, 0.01)),
        ] {
            g.bench_with_input(
                BenchmarkId::new(format!("incremental/{label}"), n),
                &jobs,
                |b, jobs| {
                    b.iter(|| {
                        let mut pool = pool_of(policy, jobs);
                        black_box(drain_incremental(&mut pool, EVENTS, DT))
                    })
                },
            );
            g.bench_with_input(
                BenchmarkId::new(format!("rebuild/{label}"), n),
                &jobs,
                |b, jobs| {
                    b.iter(|| {
                        let mut queue = jobs.to_vec();
                        black_box(drain_rebuild(policy, &mut queue, EVENTS, DT))
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, scheduler_hotpath);
criterion_main!(benches);
