//! One Criterion bench group per paper figure: each measures the
//! simulation workload behind one point of that figure at reduced scale
//! (the full regeneration lives in `mbts-experiments`; these benches
//! track the *cost* of each experiment's inner loop so regressions in
//! the scheduler show up in CI timings).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbts_core::{AdmissionPolicy, Policy};
use mbts_site::{Site, SiteConfig};
use mbts_workload::{fig3_mix, fig45_mix, fig67_mix, generate_trace, Trace};
use std::hint::black_box;

const TASKS: usize = 400;
const PROCS: usize = 8;

fn trace_for(mix: mbts_workload::MixConfig) -> Trace {
    generate_trace(&mix.with_tasks(TASKS).with_processors(PROCS), 42)
}

/// Figure 3: PV vs FirstPrice on the Millennium batch mix, preemption on.
fn fig3_pv_vs_firstprice(c: &mut Criterion) {
    let trace = trace_for(fig3_mix(4.0));
    let mut g = c.benchmark_group("fig3_pv_vs_firstprice");
    for (label, policy) in [
        ("FirstPrice", Policy::FirstPrice),
        ("PV(1%)", Policy::pv(0.01)),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &policy, |b, &p| {
            b.iter(|| {
                let site = Site::new(SiteConfig::new(PROCS).with_policy(p).with_preemption(true));
                black_box(site.run_trace(black_box(&trace)).metrics.total_yield)
            })
        });
    }
    g.finish();
}

/// Figure 4: FirstReward α sweep under bounded penalties.
fn fig4_alpha_bounded(c: &mut Criterion) {
    let trace = trace_for(fig45_mix(5.0, true));
    let mut g = c.benchmark_group("fig4_alpha_bounded");
    for alpha in [0.0, 0.3, 0.9] {
        g.bench_with_input(BenchmarkId::from_parameter(alpha), &alpha, |b, &a| {
            b.iter(|| {
                let site =
                    Site::new(SiteConfig::new(PROCS).with_policy(Policy::first_reward(a, 0.01)));
                black_box(site.run_trace(black_box(&trace)).metrics.total_yield)
            })
        });
    }
    g.finish();
}

/// Figure 5: the same sweep with unbounded penalties (exercises the
/// Eq. 5 aggregate-decay fast path of the cost model).
fn fig5_alpha_unbounded(c: &mut Criterion) {
    let trace = trace_for(fig45_mix(5.0, false));
    let mut g = c.benchmark_group("fig5_alpha_unbounded");
    for alpha in [0.0, 0.3, 0.9] {
        g.bench_with_input(BenchmarkId::from_parameter(alpha), &alpha, |b, &a| {
            b.iter(|| {
                let site =
                    Site::new(SiteConfig::new(PROCS).with_policy(Policy::first_reward(a, 0.01)));
                black_box(site.run_trace(black_box(&trace)).metrics.total_yield)
            })
        });
    }
    g.finish();
}

/// Figure 6: admission-controlled FirstReward vs uncontrolled FirstPrice
/// at a heavy load point (exercises the per-arrival candidate-schedule
/// build).
fn fig6_admission_load(c: &mut Criterion) {
    let trace = trace_for(fig67_mix(3.0));
    let mut g = c.benchmark_group("fig6_admission_load");
    g.bench_function("FirstReward+slack180", |b| {
        b.iter(|| {
            let site = Site::new(
                SiteConfig::new(PROCS)
                    .with_policy(Policy::first_reward(0.2, 0.01))
                    .with_admission(AdmissionPolicy::SlackThreshold { threshold: 180.0 }),
            );
            black_box(site.run_trace(black_box(&trace)).metrics.yield_rate())
        })
    });
    g.bench_function("FirstPrice_no_admission", |b| {
        b.iter(|| {
            let site = Site::new(SiteConfig::new(PROCS).with_policy(Policy::FirstPrice));
            black_box(site.run_trace(black_box(&trace)).metrics.yield_rate())
        })
    });
    g.finish();
}

/// Figure 7: the slack-threshold sweep's inner run at three thresholds.
fn fig7_slack_threshold(c: &mut Criterion) {
    let trace = trace_for(fig67_mix(2.0));
    let mut g = c.benchmark_group("fig7_slack_threshold");
    for threshold in [-200.0, 180.0, 700.0] {
        g.bench_with_input(
            BenchmarkId::from_parameter(threshold),
            &threshold,
            |b, &t| {
                b.iter(|| {
                    let site = Site::new(
                        SiteConfig::new(PROCS)
                            .with_policy(Policy::first_reward(0.2, 0.01))
                            .with_admission(AdmissionPolicy::SlackThreshold { threshold: t }),
                    );
                    black_box(site.run_trace(black_box(&trace)).metrics.yield_rate())
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = fig3_pv_vs_firstprice, fig4_alpha_bounded, fig5_alpha_unbounded,
              fig6_admission_load, fig7_slack_threshold
}
criterion_main!(figures);
