//! Overhead of the hot-path self-profiler on the dispatch loop.
//!
//! The pool's hot paths (`push`, `select_best`, `scores`) run inside
//! `mbts_sim::profiler::time` sections, so this bench measures exactly
//! what shipping code pays. Two cases:
//!
//! * `disabled` — the default: each section is one relaxed atomic load,
//!   which must stay within measurement noise of the pre-profiler
//!   numbers (the `bench_dispatch` ≥5× gate runs over the same
//!   instrumented pool and is the CI enforcement of that claim);
//! * `enabled` — full timing + histogram recording, the price of
//!   `mbts run --profile`.

use criterion::{criterion_group, criterion_main, Criterion};
use mbts_bench::hotpath::{drain_incremental, pending_queue, pool_of};
use mbts_core::Policy;
use std::hint::black_box;

const EVENTS: usize = 200;
const DT: f64 = 0.05;
const PENDING: usize = 10_000;

fn profiler_overhead(c: &mut Criterion) {
    let jobs = pending_queue(PENDING);
    let policy = Policy::first_reward(0.3, 0.01);

    mbts_sim::profiler::disable();
    c.bench_function("dispatch_profiler/disabled", |b| {
        b.iter(|| {
            let mut pool = pool_of(policy, &jobs);
            black_box(drain_incremental(&mut pool, EVENTS, DT))
        })
    });

    mbts_sim::profiler::reset();
    mbts_sim::profiler::enable();
    c.bench_function("dispatch_profiler/enabled", |b| {
        b.iter(|| {
            let mut pool = pool_of(policy, &jobs);
            black_box(drain_incremental(&mut pool, EVENTS, DT))
        })
    });
    mbts_sim::profiler::disable();
}

criterion_group!(benches, profiler_overhead);
criterion_main!(benches);
