//! Deterministic fault injection: seeded crash/repair schedules.
//!
//! A [`FaultInjector`] turns a pair of MTTF/MTTR distributions into a
//! reproducible alternating up/down timeline for every *fault unit* — a
//! single processor of a site, or a whole site. The injector owns one
//! private RNG stream per unit (derived from the experiment seed via
//! [`RngFactory`] names), so the fault process for unit A is unchanged by
//! how often unit B's samples are drawn and by the interleaving of the
//! surrounding event loop: the same `(seed, config)` always produces the
//! same timeline.
//!
//! The injector is deliberately passive — it only *samples*. The driving
//! model (a site trace replay or the multi-site economy) schedules the
//! events: on a crash it asks for [`downtime`](FaultInjector::downtime)
//! and schedules the repair; on a repair it asks for
//! [`uptime`](FaultInjector::uptime) and schedules the next crash. That
//! keeps the crash/repair *event kinds* in the caller's event enum, where
//! the rest of its events live.

use crate::dist::Dist;
use crate::rng::{RngFactory, SimRng};
use crate::time::{Duration, Time};
use serde::{Deserialize, Serialize};

/// An alternating failure/repair process: time-to-failure drawn from
/// `mttf`, downtime drawn from `mttr`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpDown {
    /// Distribution of up-time until the next failure.
    pub mttf: Dist,
    /// Distribution of repair (down) time.
    pub mttr: Dist,
}

impl UpDown {
    /// Exponential up/down times with the given means — the classic
    /// memoryless failure model.
    pub fn exponential(mttf_mean: f64, mttr_mean: f64) -> Self {
        assert!(mttf_mean > 0.0 && mttr_mean > 0.0, "means must be positive");
        UpDown {
            mttf: Dist::exponential(mttf_mean),
            mttr: Dist::exponential(mttr_mean),
        }
    }
}

/// Which failure processes are active.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultConfig {
    /// Per-processor failures: each processor of each site fails and
    /// repairs independently. `None` disables processor faults.
    pub processor: Option<UpDown>,
    /// Whole-site outages: all of a site's processors go down together.
    /// `None` disables site faults.
    pub site: Option<UpDown>,
}

impl FaultConfig {
    /// No faults at all — a run with this config is byte-identical to a
    /// run without an injector (no fault events are ever scheduled).
    pub fn none() -> Self {
        FaultConfig::default()
    }

    /// `true` when neither failure process is active.
    pub fn is_none(&self) -> bool {
        self.processor.is_none() && self.site.is_none()
    }
}

/// One independently failing unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultUnit {
    /// One processor slot of a site.
    Processor {
        /// Site index.
        site: usize,
        /// Processor slot within the site (0-based).
        slot: usize,
    },
    /// A whole site.
    Site {
        /// Site index.
        site: usize,
    },
}

impl FaultUnit {
    /// The site this unit belongs to.
    pub fn site(&self) -> usize {
        match *self {
            FaultUnit::Processor { site, .. } | FaultUnit::Site { site } => site,
        }
    }
}

/// Samples reproducible crash/repair timelines for a set of sites.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    /// One stream per processor slot, `proc_rngs[site][slot]`.
    proc_rngs: Vec<Vec<SimRng>>,
    /// One stream per site-level outage process.
    site_rngs: Vec<SimRng>,
}

impl FaultInjector {
    /// An injector for sites of the given sizes (`procs_per_site[s]`
    /// processors at site `s`), seeded so every `(seed, config)` pair
    /// yields the same timelines.
    pub fn new(config: FaultConfig, seed: u64, procs_per_site: &[usize]) -> Self {
        let factory = RngFactory::new(seed).child("fault-injector");
        let proc_rngs = procs_per_site
            .iter()
            .enumerate()
            .map(|(s, &p)| {
                let site_factory = factory.child("processors");
                (0..p)
                    .map(|j| site_factory.stream_indexed("slot", (s as u64) << 20 | j as u64))
                    .collect()
            })
            .collect();
        let site_rngs = (0..procs_per_site.len())
            .map(|s| factory.stream_indexed("site", s as u64))
            .collect();
        FaultInjector {
            config,
            proc_rngs,
            site_rngs,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Every configured fault unit, in deterministic order (all processor
    /// slots site-major, then the site units).
    pub fn units(&self) -> Vec<FaultUnit> {
        let mut units = Vec::new();
        if self.config.processor.is_some() {
            for (site, rngs) in self.proc_rngs.iter().enumerate() {
                for slot in 0..rngs.len() {
                    units.push(FaultUnit::Processor { site, slot });
                }
            }
        }
        if self.config.site.is_some() {
            for site in 0..self.site_rngs.len() {
                units.push(FaultUnit::Site { site });
            }
        }
        units
    }

    /// Samples the next up-time (time until `unit`'s next failure).
    /// Returns `None` when the matching failure process is disabled.
    pub fn uptime(&mut self, unit: FaultUnit) -> Option<Duration> {
        let (dist, rng) = self.process(unit)?;
        Some(Duration::new(dist.sample(rng).max(0.0)))
    }

    /// Samples `unit`'s repair (down) time. `None` when the matching
    /// failure process is disabled.
    pub fn downtime(&mut self, unit: FaultUnit) -> Option<Duration> {
        let (dist, rng) = self.repair_process(unit)?;
        Some(Duration::new(dist.sample(rng).max(0.0)))
    }

    /// First crash instants for every configured unit, measured from
    /// time 0 — what a driver schedules before running its event loop.
    pub fn initial_crashes(&mut self) -> Vec<(Time, FaultUnit)> {
        self.units()
            .into_iter()
            .map(|u| {
                let up = self.uptime(u).expect("unit comes from units()");
                (Time::ZERO + up, u)
            })
            .collect()
    }

    /// Serializable checkpoint of the injector: config plus the raw state
    /// words of every per-unit RNG stream, so recovery resumes each
    /// timeline mid-stream (RNG words are tuples because the vendored
    /// serde shim has no fixed-size-array impls).
    pub fn state(&self) -> FaultInjectorState {
        let pack = |r: &SimRng| {
            let s = r.state();
            (s[0], s[1], s[2], s[3])
        };
        FaultInjectorState {
            config: self.config.clone(),
            proc_rngs: self
                .proc_rngs
                .iter()
                .map(|site| site.iter().map(pack).collect())
                .collect(),
            site_rngs: self.site_rngs.iter().map(pack).collect(),
        }
    }

    /// Rebuilds an injector from [`state`](Self::state) output; every
    /// stream continues exactly where the checkpoint left it.
    pub fn from_state(state: FaultInjectorState) -> Self {
        let unpack = |t: &(u64, u64, u64, u64)| SimRng::from_state([t.0, t.1, t.2, t.3]);
        FaultInjector {
            config: state.config,
            proc_rngs: state
                .proc_rngs
                .iter()
                .map(|site| site.iter().map(unpack).collect())
                .collect(),
            site_rngs: state.site_rngs.iter().map(unpack).collect(),
        }
    }

    fn process(&mut self, unit: FaultUnit) -> Option<(Dist, &mut SimRng)> {
        match unit {
            FaultUnit::Processor { site, slot } => {
                let dist = self.config.processor.as_ref()?.mttf.clone();
                Some((dist, &mut self.proc_rngs[site][slot]))
            }
            FaultUnit::Site { site } => {
                let dist = self.config.site.as_ref()?.mttf.clone();
                Some((dist, &mut self.site_rngs[site]))
            }
        }
    }

    fn repair_process(&mut self, unit: FaultUnit) -> Option<(Dist, &mut SimRng)> {
        match unit {
            FaultUnit::Processor { site, slot } => {
                let dist = self.config.processor.as_ref()?.mttr.clone();
                Some((dist, &mut self.proc_rngs[site][slot]))
            }
            FaultUnit::Site { site } => {
                let dist = self.config.site.as_ref()?.mttr.clone();
                Some((dist, &mut self.site_rngs[site]))
            }
        }
    }
}

/// Serializable mid-stream checkpoint of a [`FaultInjector`]. Produced by
/// [`FaultInjector::state`], consumed by [`FaultInjector::from_state`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultInjectorState {
    /// The active failure processes.
    pub config: FaultConfig,
    /// Raw xoshiro state words per processor slot, `proc_rngs[site][slot]`.
    pub proc_rngs: Vec<Vec<(u64, u64, u64, u64)>>,
    /// Raw xoshiro state words per site-outage stream.
    pub site_rngs: Vec<(u64, u64, u64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> FaultConfig {
        FaultConfig {
            processor: Some(UpDown::exponential(1000.0, 50.0)),
            site: Some(UpDown::exponential(5000.0, 200.0)),
        }
    }

    #[test]
    fn none_config_has_no_units() {
        let mut inj = FaultInjector::new(FaultConfig::none(), 1, &[4, 4]);
        assert!(inj.units().is_empty());
        assert!(inj.initial_crashes().is_empty());
        assert_eq!(inj.uptime(FaultUnit::Site { site: 0 }), None);
        assert_eq!(
            inj.downtime(FaultUnit::Processor { site: 0, slot: 0 }),
            None
        );
    }

    #[test]
    fn units_enumerate_processors_and_sites() {
        let inj = FaultInjector::new(config(), 1, &[2, 3]);
        let units = inj.units();
        assert_eq!(units.len(), 2 + 3 + 2);
        assert_eq!(units[0], FaultUnit::Processor { site: 0, slot: 0 });
        assert_eq!(units[4], FaultUnit::Processor { site: 1, slot: 2 });
        assert_eq!(units[6], FaultUnit::Site { site: 1 });
    }

    #[test]
    fn timelines_are_reproducible() {
        let mut a = FaultInjector::new(config(), 42, &[4]);
        let mut b = FaultInjector::new(config(), 42, &[4]);
        assert_eq!(a.initial_crashes(), b.initial_crashes());
        let u = FaultUnit::Processor { site: 0, slot: 2 };
        for _ in 0..16 {
            assert_eq!(a.uptime(u), b.uptime(u));
            assert_eq!(a.downtime(u), b.downtime(u));
        }
    }

    #[test]
    fn units_draw_from_independent_streams() {
        // Draining one unit's stream must not shift another's samples.
        let mut a = FaultInjector::new(config(), 7, &[4]);
        let mut b = FaultInjector::new(config(), 7, &[4]);
        let victim = FaultUnit::Processor { site: 0, slot: 1 };
        let other = FaultUnit::Processor { site: 0, slot: 3 };
        for _ in 0..100 {
            let _ = a.uptime(other);
        }
        for _ in 0..8 {
            assert_eq!(a.uptime(victim), b.uptime(victim));
        }
        // Site streams are independent of processor streams too.
        let site = FaultUnit::Site { site: 0 };
        assert_eq!(a.uptime(site), b.uptime(site));
    }

    #[test]
    fn different_seeds_decorrelate() {
        let mut a = FaultInjector::new(config(), 1, &[2]);
        let mut b = FaultInjector::new(config(), 2, &[2]);
        let u = FaultUnit::Processor { site: 0, slot: 0 };
        let draws = |inj: &mut FaultInjector| -> Vec<Duration> {
            (0..8).map(|_| inj.uptime(u).unwrap()).collect()
        };
        assert_ne!(draws(&mut a), draws(&mut b));
    }

    #[test]
    fn samples_are_nonnegative_and_finite() {
        let mut inj = FaultInjector::new(config(), 3, &[8]);
        for u in inj.units() {
            for _ in 0..50 {
                let up = inj.uptime(u).unwrap();
                let down = inj.downtime(u).unwrap();
                assert!(up.as_f64() >= 0.0 && up.as_f64().is_finite());
                assert!(down.as_f64() >= 0.0 && down.as_f64().is_finite());
            }
        }
    }

    #[test]
    fn serde_roundtrip() {
        let c = config();
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<FaultConfig>(&json).unwrap(), c);
    }

    #[test]
    fn state_checkpoint_resumes_streams_exactly() {
        let mut live = FaultInjector::new(config(), 11, &[3, 2]);
        // Advance some streams unevenly, then checkpoint mid-stream.
        let u0 = FaultUnit::Processor { site: 0, slot: 1 };
        let u1 = FaultUnit::Site { site: 1 };
        for _ in 0..5 {
            let _ = live.uptime(u0);
        }
        let _ = live.downtime(u1);
        let state = live.state();
        let json = serde_json::to_string(&state).unwrap();
        let restored_state: FaultInjectorState = serde_json::from_str(&json).unwrap();
        assert_eq!(restored_state, state);
        let mut restored = FaultInjector::from_state(restored_state);
        for u in live.units() {
            for _ in 0..8 {
                assert_eq!(live.uptime(u), restored.uptime(u));
                assert_eq!(live.downtime(u), restored.downtime(u));
            }
        }
    }
}
