//! Pending-event set.
//!
//! A thin wrapper over [`std::collections::BinaryHeap`] keyed by
//! ([`Time`], insertion sequence) so that events scheduled for the same
//! instant pop in **FIFO order**. Stable tie-breaking matters: the paper's
//! Figure 3 workload releases 16 tasks *per batch arrival*, i.e. many events
//! share a timestamp, and heuristic comparisons must see them in a
//! deterministic order for runs to be replayable.

use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered, FIFO-stable pending-event set.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: Time, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Like [`pop`](Self::pop) but also returns the entry's sequence
    /// number. The sharded market runner uses the `(time, seq)` key to
    /// replay the exact serial pop order when merging per-shard results.
    pub fn pop_entry(&mut self) -> Option<(Time, u64, E)> {
        self.heap.pop().map(|e| (e.at, e.seq, e.event))
    }

    /// `(time, seq)` key of the next event without removing it — the
    /// lookahead barrier for conservative windowed execution: every event
    /// strictly before this key is already in the queue and safe to run.
    pub fn peek_key(&self) -> Option<(Time, u64)> {
        self.heap.peek().map(|e| (e.at, e.seq))
    }

    /// Schedules `event` with an explicit, caller-assigned sequence
    /// number instead of the auto-incrementing counter. The counter is
    /// bumped past `seq` so later [`schedule`](Self::schedule) calls can
    /// never collide. Used by the deterministic window merge to give
    /// events spawned inside a shard the same `(time, seq)` keys the
    /// serial engine would have assigned.
    pub fn schedule_with_seq(&mut self, at: Time, seq: u64, event: E) {
        self.next_seq = self.next_seq.max(seq + 1);
        self.heap.push(Entry { at, seq, event });
    }

    /// Advances the sequence counter to at least `next`. A window merge
    /// that *consumed* spawned events (rather than re-queueing them) still
    /// has to account for the sequence numbers the serial engine would
    /// have burned on them.
    pub fn advance_seq_to(&mut self, next: u64) {
        self.next_seq = self.next_seq.max(next);
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// The next event's `(time, payload)` without removing it — the event
    /// a [`pop`](Self::pop) would return. Used by the durable journal to
    /// frame an event record *before* the engine applies it.
    pub fn peek(&self) -> Option<(Time, &E)> {
        self.heap.peek().map(|e| (e.at, &e.event))
    }

    /// Sequence number the next [`schedule`](Self::schedule) will assign.
    /// Part of replay state: FIFO tie-breaking among same-time events is
    /// decided by these numbers.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// All pending entries as `(time, seq, payload)` triples, sorted by
    /// `(time, seq)` — a canonical, heap-layout-independent view for
    /// snapshots.
    pub fn snapshot_entries(&self) -> Vec<(Time, u64, E)>
    where
        E: Clone,
    {
        let mut entries: Vec<(Time, u64, E)> = self
            .heap
            .iter()
            .map(|e| (e.at, e.seq, e.event.clone()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        entries
    }

    /// Rebuilds a queue from [`snapshot_entries`](Self::snapshot_entries)
    /// output plus the saved sequence counter. Existing sequence numbers
    /// are preserved verbatim so tie-breaking replays identically.
    pub fn restore(entries: Vec<(Time, u64, E)>, next_seq: u64) -> Self {
        let mut heap = BinaryHeap::with_capacity(entries.len());
        for (at, seq, event) in entries {
            debug_assert!(seq < next_seq, "restored seq {seq} >= next_seq {next_seq}");
            heap.push(Entry { at, seq, event });
        }
        EventQueue { heap, next_seq }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from(3.0), "c");
        q.schedule(Time::from(1.0), "a");
        q.schedule(Time::from(2.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Time::from(5.0), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(Time::from(10.0), "late");
        q.schedule(Time::from(1.0), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.schedule(Time::from(5.0), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(Time::from(7.0), ());
        assert_eq!(q.peek_time(), Some(Time::from(7.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn explicit_seq_interleaves_with_auto_seq() {
        let mut q = EventQueue::new();
        q.schedule(Time::from(1.0), "auto-0");
        q.schedule(Time::from(1.0), "auto-1");
        // A merge re-queues a leftover event with the seq the serial
        // engine would have assigned.
        q.schedule_with_seq(Time::from(1.0), 5, "explicit-5");
        assert_eq!(q.next_seq(), 6);
        q.schedule(Time::from(1.0), "auto-6");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["auto-0", "auto-1", "explicit-5", "auto-6"]);
    }

    #[test]
    fn pop_entry_and_peek_key_expose_sequence_numbers() {
        let mut q = EventQueue::new();
        q.schedule(Time::from(2.0), "b");
        q.schedule(Time::from(1.0), "a");
        assert_eq!(q.peek_key(), Some((Time::from(1.0), 1)));
        assert_eq!(q.pop_entry(), Some((Time::from(1.0), 1, "a")));
        assert_eq!(q.pop_entry(), Some((Time::from(2.0), 0, "b")));
        assert_eq!(q.peek_key(), None);
        q.advance_seq_to(10);
        q.schedule(Time::ZERO, "c");
        assert_eq!(q.peek_key(), Some((Time::ZERO, 10)));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(Time::ZERO, 1);
        q.schedule(Time::ZERO, 2);
        q.clear();
        assert!(q.is_empty());
        // Sequence counter keeps increasing, FIFO order still holds after clear.
        q.schedule(Time::ZERO, 3);
        q.schedule(Time::ZERO, 4);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Events always pop in non-decreasing time order, and events that
        /// share a timestamp pop in insertion order.
        #[test]
        fn pop_order_is_time_then_fifo(times in proptest::collection::vec(0u32..50, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(Time::from(*t as f64), i);
            }
            let mut last: Option<(Time, usize)> = None;
            while let Some((at, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(at >= lt);
                    if at == lt {
                        prop_assert!(idx > lidx);
                    }
                }
                last = Some((at, idx));
            }
        }

        /// The queue drains exactly what was scheduled.
        #[test]
        fn conservation(times in proptest::collection::vec(0.0f64..100.0, 0..100)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(Time::from(*t), i);
            }
            prop_assert_eq!(q.len(), times.len());
            let mut seen = vec![false; times.len()];
            while let Some((_, idx)) = q.pop() {
                prop_assert!(!seen[idx]);
                seen[idx] = true;
            }
            prop_assert!(seen.iter().all(|&s| s));
        }
    }
}
