//! Simulation time.
//!
//! The paper's model is continuous-time (exponential inter-arrival times,
//! fractional runtimes), so [`Time`] wraps an `f64` measured in abstract
//! *time units* (t.u.). The wrapper exists to
//!
//! * give time a **total order** (`NaN` is rejected at construction, so
//!   `Ord` is sound),
//! * keep absolute instants ([`Time`]) and spans ([`Duration`]) from being
//!   mixed up in scheduler arithmetic, and
//! * centralize the tolerance used when comparing derived instants.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An absolute instant in simulation time, in abstract time units.
///
/// Construction panics on `NaN`, which makes the manual `Ord` impl total.
#[derive(Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
#[serde(transparent)]
pub struct Time(f64);

/// A span of simulation time (always a difference of two [`Time`]s or an
/// explicitly constructed length). May be negative: slack computations in
/// the admission controller legitimately produce negative spans.
#[derive(Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
#[serde(transparent)]
pub struct Duration(f64);

/// Comparison tolerance for derived instants (e.g. two completion times
/// computed along different arithmetic paths).
pub const TIME_EPSILON: f64 = 1e-9;

impl Time {
    /// The origin of simulation time.
    pub const ZERO: Time = Time(0.0);
    /// A time later than any reachable instant; useful as a sentinel.
    pub const INFINITY: Time = Time(f64::INFINITY);

    /// Creates a time from raw units. Panics on `NaN`.
    #[inline]
    pub fn new(t: f64) -> Self {
        assert!(!t.is_nan(), "Time must not be NaN");
        Time(t)
    }

    /// Raw value in time units.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// `true` if within [`TIME_EPSILON`] of `other`.
    #[inline]
    pub fn approx_eq(self, other: Time) -> bool {
        (self.0 - other.0).abs() <= TIME_EPSILON
    }

    /// Later of two instants.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Earlier of two instants.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0.0);
    /// An unbounded span; useful as a sentinel for "never expires".
    pub const INFINITY: Duration = Duration(f64::INFINITY);

    /// Creates a duration from raw units. Panics on `NaN`.
    #[inline]
    pub fn new(d: f64) -> Self {
        assert!(!d.is_nan(), "Duration must not be NaN");
        Duration(d)
    }

    /// Raw value in time units.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// `true` for spans of negative length.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.0 < 0.0
    }

    /// Clamps negative spans to zero (used when converting a signed delay
    /// into queueing delay, which cannot be negative).
    #[inline]
    pub fn max_zero(self) -> Duration {
        if self.0 > 0.0 {
            self
        } else {
            Duration::ZERO
        }
    }

    /// Smaller of two spans.
    #[inline]
    pub fn min(self, other: Duration) -> Duration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Larger of two spans.
    #[inline]
    pub fn max(self, other: Duration) -> Duration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl From<f64> for Time {
    #[inline]
    fn from(t: f64) -> Self {
        Time::new(t)
    }
}

impl From<f64> for Duration {
    #[inline]
    fn from(d: f64) -> Self {
        Duration::new(d)
    }
}

impl Eq for Time {}
impl Eq for Duration {}

impl PartialOrd for Time {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Sound: NaN is rejected at construction.
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for Duration {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Duration {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Duration) -> Time {
        Time::new(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
        assert!(!self.0.is_nan(), "Time must not be NaN");
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Duration) -> Time {
        Time::new(self.0 - rhs.0)
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Time) -> Duration {
        Duration::new(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration::new(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
        assert!(!self.0.is_nan(), "Duration must not be NaN");
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration::new(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
        assert!(!self.0.is_nan(), "Duration must not be NaN");
    }
}

impl Mul<f64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: f64) -> Duration {
        Duration::new(self.0 * rhs)
    }
}

impl Div<f64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: f64) -> Duration {
        Duration::new(self.0 / rhs)
    }
}

impl Div for Duration {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Duration) -> f64 {
        self.0 / rhs.0
    }
}

impl Neg for Duration {
    type Output = Duration;
    #[inline]
    fn neg(self) -> Duration {
        Duration::new(-self.0)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.4}", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Δ{:.4}", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_sane() {
        assert!(Time::ZERO < Time::from(1.0));
        assert!(Time::from(1.0) < Time::INFINITY);
        assert_eq!(Time::from(2.0).max(Time::from(3.0)), Time::from(3.0));
        assert_eq!(Time::from(2.0).min(Time::from(3.0)), Time::from(2.0));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = Time::from(10.0);
        let d = Duration::from(2.5);
        assert_eq!(t + d - d, t);
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 2.0, Duration::from(5.0));
        assert_eq!(d / 2.5, Duration::from(1.0));
        assert!((Duration::from(5.0) / Duration::from(2.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn negative_durations_are_legal_and_clampable() {
        let d = Time::from(1.0) - Time::from(4.0);
        assert!(d.is_negative());
        assert_eq!(d.max_zero(), Duration::ZERO);
        assert_eq!(-d, Duration::from(3.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_rejected() {
        let _ = Time::new(f64::NAN);
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Time::from(1.0);
        let b = Time::from(1.0 + 1e-12);
        assert!(a.approx_eq(b));
        assert!(!a.approx_eq(Time::from(1.1)));
    }

    #[test]
    fn serde_roundtrip_is_transparent() {
        let t = Time::from(42.5);
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(json, "42.5");
        let back: Time = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
