//! Process-global hot-path self-profiler: HDR-style log-bucketed latency
//! histograms over the scheduler's critical sections.
//!
//! This module is the *instrumentation* half of the profiler: a fixed set
//! of [`Section`]s, a global enable flag, and lock-free atomic counters.
//! It lives at the bottom of the crate stack so `mbts-core`'s pending
//! pool and `mbts-durable`'s snapshot writer can both wrap their hot
//! paths without new dependency edges; the *reporting* half (JSON
//! capture, text and Prometheus rendering) lives in `mbts-trace`.
//!
//! Disabled cost is one relaxed atomic load per instrumented call — no
//! clock read, no allocation — so always-compiled-in instrumentation
//! stays within noise of uninstrumented code (the `bench_dispatch` gate
//! enforces this). Enabled cost is two `Instant` reads plus three relaxed
//! atomic RMWs. The profiler observes wall-clock latencies only; it never
//! feeds back into simulation time or scheduling decisions, so enabling
//! it cannot perturb a replay.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Number of log2 latency buckets: bucket `i` counts samples in
/// `[2^i, 2^(i+1))` nanoseconds, with the last bucket absorbing the tail
/// (`2^39`ns ≈ 9 minutes — far beyond any real section).
pub const PROFILER_BUCKETS: usize = 40;

/// The instrumented scheduler hot paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// `PendingPool::push` — admission into the persistent pending pool.
    PoolInsert = 0,
    /// `PendingPool::select_best` — incremental cost-model maintenance
    /// and best-candidate selection at dispatch.
    CostModelUpdate = 1,
    /// `PendingPool::scores` — full score materialization (the backfill
    /// merge sweep).
    MergeSweep = 2,
    /// Durable snapshot frame serialization + journal write.
    SnapshotWrite = 3,
    /// Sharded market: one shard executing its slice of a completion
    /// window (site-local stepping between barriers).
    ShardWindow = 4,
    /// Sharded market: the coordinator blocked at a lookahead barrier
    /// waiting for the slowest shard's reply.
    BarrierStall = 5,
    /// Live service: parsing one HTTP request off the wire.
    ServeParse = 6,
    /// Live service: a request's wait in the bounded admission queue,
    /// from enqueue to the core thread picking it up.
    ServeQueueWait = 7,
    /// Live service: journal append + state-machine apply of one
    /// accepted command.
    ServeApply = 8,
    /// Live service: journal append (+ cadence fsync) of one accepted
    /// command — the durability half of [`Section::ServeApply`], split
    /// out so fsync stalls are visible separately from the fold.
    ServeJournalAppend = 9,
}

/// Every section, in wire order. Indexes match `Section as usize`.
pub const SECTIONS: [Section; 10] = [
    Section::PoolInsert,
    Section::CostModelUpdate,
    Section::MergeSweep,
    Section::SnapshotWrite,
    Section::ShardWindow,
    Section::BarrierStall,
    Section::ServeParse,
    Section::ServeQueueWait,
    Section::ServeApply,
    Section::ServeJournalAppend,
];

impl Section {
    /// Stable snake_case name used in reports and Prometheus labels.
    pub fn name(self) -> &'static str {
        match self {
            Section::PoolInsert => "pool_insert",
            Section::CostModelUpdate => "cost_model_update",
            Section::MergeSweep => "merge_sweep",
            Section::SnapshotWrite => "snapshot_write",
            Section::ShardWindow => "shard_window",
            Section::BarrierStall => "barrier_stall",
            Section::ServeParse => "serve_parse",
            Section::ServeQueueWait => "serve_queue_wait",
            Section::ServeApply => "serve_apply",
            Section::ServeJournalAppend => "serve_journal_append",
        }
    }
}

const NSECTIONS: usize = SECTIONS.len();

static ENABLED: AtomicBool = AtomicBool::new(false);

struct SectionCounters {
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; PROFILER_BUCKETS],
}

impl SectionCounters {
    const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        SectionCounters {
            count: ZERO,
            sum_ns: ZERO,
            max_ns: ZERO,
            buckets: [ZERO; PROFILER_BUCKETS],
        }
    }
}

static COUNTERS: [SectionCounters; NSECTIONS] = [
    SectionCounters::new(),
    SectionCounters::new(),
    SectionCounters::new(),
    SectionCounters::new(),
    SectionCounters::new(),
    SectionCounters::new(),
    SectionCounters::new(),
    SectionCounters::new(),
    SectionCounters::new(),
    SectionCounters::new(),
];

/// Turns sampling on. Instrumented sections start taking timestamps.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns sampling off (counters are retained until [`reset`]).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether sampling is currently on.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes every counter (sampling state is left unchanged).
pub fn reset() {
    for c in &COUNTERS {
        c.count.store(0, Ordering::Relaxed);
        c.sum_ns.store(0, Ordering::Relaxed);
        c.max_ns.store(0, Ordering::Relaxed);
        for b in &c.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Folds one latency sample into a section's histogram.
pub fn record_ns(section: Section, ns: u64) {
    let c = &COUNTERS[section as usize];
    c.count.fetch_add(1, Ordering::Relaxed);
    c.sum_ns.fetch_add(ns, Ordering::Relaxed);
    c.max_ns.fetch_max(ns, Ordering::Relaxed);
    let bucket = (63 - ns.max(1).leading_zeros() as usize).min(PROFILER_BUCKETS - 1);
    c.buckets[bucket].fetch_add(1, Ordering::Relaxed);
}

/// Runs `f`, timing it into `section` when the profiler is enabled. The
/// disabled path is a single relaxed load and a direct call.
#[inline]
pub fn time<R>(section: Section, f: impl FnOnce() -> R) -> R {
    if !is_enabled() {
        return f();
    }
    let start = Instant::now();
    let out = f();
    let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    record_ns(section, ns);
    out
}

/// A point-in-time copy of one section's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionSample {
    /// Which section this samples.
    pub section: Section,
    /// Samples recorded.
    pub count: u64,
    /// Total nanoseconds across all samples.
    pub sum_ns: u64,
    /// Largest single sample, in nanoseconds.
    pub max_ns: u64,
    /// Log2 bucket counts: `buckets[i]` counts samples in
    /// `[2^i, 2^(i+1))` ns.
    pub buckets: Vec<u64>,
}

/// Reads a consistent-enough copy of every section's counters. Individual
/// loads are relaxed; concurrent recording can skew a bucket by a sample,
/// which is irrelevant at reporting granularity.
pub fn sample() -> Vec<SectionSample> {
    COUNTERS
        .iter()
        .zip(SECTIONS)
        .map(|(c, section)| SectionSample {
            section,
            count: c.count.load(Ordering::Relaxed),
            sum_ns: c.sum_ns.load(Ordering::Relaxed),
            max_ns: c.max_ns.load(Ordering::Relaxed),
            buckets: c
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The profiler is process-global, so tests in this module serialize
    // on a lock to avoid cross-test interference; tests elsewhere only
    // assert on deltas of their own sections.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_profiler_records_nothing() {
        let _g = LOCK.lock().unwrap();
        disable();
        reset();
        let out = time(Section::PoolInsert, || 7);
        assert_eq!(out, 7);
        assert_eq!(sample()[Section::PoolInsert as usize].count, 0);
    }

    #[test]
    fn enabled_profiler_buckets_samples_logarithmically() {
        let _g = LOCK.lock().unwrap();
        disable();
        reset();
        // Synthetic samples: bucket index is floor(log2(ns)).
        record_ns(Section::MergeSweep, 1); // bucket 0
        record_ns(Section::MergeSweep, 2); // bucket 1
        record_ns(Section::MergeSweep, 3); // bucket 1
        record_ns(Section::MergeSweep, 1024); // bucket 10
        record_ns(Section::MergeSweep, 0); // clamps to bucket 0
        let s = &sample()[Section::MergeSweep as usize];
        assert_eq!(s.count, 5);
        assert_eq!(s.sum_ns, 1030);
        assert_eq!(s.max_ns, 1024);
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[1], 2);
        assert_eq!(s.buckets[10], 1);
        reset();
        assert_eq!(sample()[Section::MergeSweep as usize].count, 0);
    }

    #[test]
    fn time_measures_when_enabled() {
        let _g = LOCK.lock().unwrap();
        reset();
        enable();
        let out = time(Section::SnapshotWrite, || {
            std::hint::black_box((0..1000).sum::<u64>())
        });
        disable();
        assert_eq!(out, 499_500);
        let s = &sample()[Section::SnapshotWrite as usize];
        assert_eq!(s.count, 1);
        assert!(s.sum_ns > 0, "a timed closure takes nonzero time");
        reset();
    }

    #[test]
    fn huge_samples_land_in_the_tail_bucket() {
        let _g = LOCK.lock().unwrap();
        disable();
        reset();
        record_ns(Section::CostModelUpdate, u64::MAX);
        let s = &sample()[Section::CostModelUpdate as usize];
        assert_eq!(s.buckets[PROFILER_BUCKETS - 1], 1);
        reset();
    }
}
