//! Deterministic, splittable random-number streams.
//!
//! Every stochastic component of an experiment (inter-arrival times,
//! runtimes, value draws, decay draws, class membership, …) gets its **own
//! named stream** derived from a single experiment seed. This gives two
//! properties the evaluation methodology depends on:
//!
//! * **Replayability** — a `(seed)` pair pins the entire trace.
//! * **Common random numbers** — changing one workload parameter (say, the
//!   decay skew ratio) does not perturb the arrival process, because each
//!   dimension draws from an independent stream. Paired comparisons across
//!   heuristics then see identical workloads, which is exactly how the
//!   paper compares PV/FirstReward against FirstPrice on "the same" mix.
//!
//! Streams are derived with SplitMix64 (Steele et al., *Fast Splittable
//! Pseudorandom Number Generators*, OOPSLA 2014) over `seed ⊕ hash(name)`,
//! then used to key rand's `StdRng`.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic RNG stream. Thin alias so downstream crates never name
/// a concrete rand generator.
pub type SimRng = StdRng;

/// SplitMix64 step: the standard 64-bit finalizer-based generator.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string; used to turn stream names into seed salt.
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Derives independent named RNG streams from a single experiment seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngFactory {
    seed: u64,
}

impl RngFactory {
    /// A factory rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        RngFactory { seed }
    }

    /// The root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// An independent stream for `name`. The same `(seed, name)` always
    /// yields the same stream; distinct names yield decorrelated streams.
    pub fn stream(&self, name: &str) -> SimRng {
        self.stream_indexed(name, 0)
    }

    /// Like [`stream`](Self::stream) but additionally salted with an index,
    /// for families of streams (e.g. one per replication or per site).
    pub fn stream_indexed(&self, name: &str, index: u64) -> SimRng {
        let mut state =
            self.seed ^ fnv1a(name.as_bytes()) ^ index.wrapping_mul(0xA076_1D64_78BD_642F);
        let mut key = [0u8; 32];
        for chunk in key.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
        }
        StdRng::from_seed(key)
    }

    /// A sub-factory for a named component, so components can derive their
    /// own private stream families without coordinating names globally.
    pub fn child(&self, name: &str) -> RngFactory {
        let mut state = self.seed ^ fnv1a(name.as_bytes());
        RngFactory {
            seed: splitmix64(&mut state),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn draws(mut rng: SimRng, n: usize) -> Vec<u64> {
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn same_seed_same_stream() {
        let f = RngFactory::new(42);
        assert_eq!(
            draws(f.stream("arrivals"), 16),
            draws(f.stream("arrivals"), 16)
        );
    }

    #[test]
    fn different_names_decorrelate() {
        let f = RngFactory::new(42);
        assert_ne!(
            draws(f.stream("arrivals"), 16),
            draws(f.stream("runtimes"), 16)
        );
    }

    #[test]
    fn different_seeds_decorrelate() {
        let a = RngFactory::new(1).stream("x");
        let b = RngFactory::new(2).stream("x");
        assert_ne!(draws(a, 16), draws(b, 16));
    }

    #[test]
    fn indexed_streams_are_distinct_families() {
        let f = RngFactory::new(7);
        let s0 = draws(f.stream_indexed("rep", 0), 8);
        let s1 = draws(f.stream_indexed("rep", 1), 8);
        assert_ne!(s0, s1);
        assert_eq!(s0, draws(f.stream_indexed("rep", 0), 8));
        // index 0 matches the unindexed form
        assert_eq!(s0, draws(f.stream("rep"), 8));
    }

    #[test]
    fn children_are_independent_namespaces() {
        let f = RngFactory::new(9);
        let a = f.child("site-a").stream("arrivals");
        let b = f.child("site-b").stream("arrivals");
        assert_ne!(draws(a, 8), draws(b, 8));
        // but reproducible
        assert_eq!(
            draws(f.child("site-a").stream("arrivals"), 8),
            draws(f.child("site-a").stream("arrivals"), 8)
        );
    }

    #[test]
    fn splitmix_known_values() {
        // Reference values for seed 0 from the SplitMix64 reference
        // implementation.
        let mut s = 0u64;
        let first = splitmix64(&mut s);
        let second = splitmix64(&mut s);
        assert_eq!(first, 0xE220_A839_7B1D_CDAF);
        assert_eq!(second, 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn streams_cover_the_unit_interval() {
        // Cheap sanity check that the generator is not obviously broken.
        let mut rng = RngFactory::new(1234).stream("u");
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            lo |= u < 0.1;
            hi |= u > 0.9;
        }
        assert!(lo && hi);
    }
}
