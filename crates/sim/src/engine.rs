//! Next-event-time-advance simulation engine.
//!
//! The engine owns a [`Model`] and an [`EventQueue`]; `run_*` pops the
//! earliest event, advances the clock, and hands the event to the model,
//! which may schedule further events. This is the classic DES loop — the
//! task-service site, the market economy, and every experiment harness in
//! the workspace are all models driven by this engine.

use crate::event::EventQueue;
use crate::time::Time;

/// A simulation model: application state plus an event handler.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Handles `event` occurring at `now`. New events go into `queue`;
    /// scheduling into the past is a logic error the engine will catch.
    fn handle(&mut self, now: Time, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// The discrete-event engine: clock + queue + model.
pub struct Engine<M: Model> {
    model: M,
    queue: EventQueue<M::Event>,
    now: Time,
    handled: u64,
}

impl<M: Model> Engine<M> {
    /// Wraps `model` with an empty queue at time zero.
    pub fn new(model: M) -> Self {
        Engine {
            model,
            queue: EventQueue::new(),
            now: Time::ZERO,
            handled: 0,
        }
    }

    /// Current simulation time (the timestamp of the last handled event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events handled so far.
    pub fn events_handled(&self) -> u64 {
        self.handled
    }

    /// Read access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model (for pre-run setup and post-run
    /// extraction).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the engine and returns the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Read access to the pending-event queue (for snapshotting).
    pub fn queue(&self) -> &EventQueue<M::Event> {
        &self.queue
    }

    /// Reassembles an engine from checkpointed parts: a restored model, a
    /// restored queue, and the saved clock and event counter. The inverse
    /// of reading `queue()` / `now()` / `events_handled()` off a live
    /// engine at an event boundary.
    pub fn from_parts(model: M, queue: EventQueue<M::Event>, now: Time, handled: u64) -> Self {
        if let Some(next) = queue.peek_time() {
            assert!(next >= now, "restored queue holds an event before `now`");
        }
        Engine {
            model,
            queue,
            now,
            handled,
        }
    }

    /// Schedules an initial/external event.
    pub fn schedule(&mut self, at: Time, event: M::Event) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at:?} < {:?}",
            self.now
        );
        self.queue.schedule(at, event);
    }

    /// Handles a single event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some((at, event)) => {
                debug_assert!(at >= self.now, "event queue went backwards");
                self.now = at;
                self.handled += 1;
                self.model.handle(at, event, &mut self.queue);
                true
            }
            None => false,
        }
    }

    /// Runs until no events remain.
    pub fn run_to_completion(&mut self) {
        while self.step() {}
    }

    /// Runs until the queue is empty or the next event is strictly after
    /// `until`. Events at exactly `until` are handled.
    pub fn run_until(&mut self, until: Time) {
        while let Some(next) = self.queue.peek_time() {
            if next > until {
                break;
            }
            self.step();
        }
    }

    /// Runs at most `limit` more events; returns how many were handled.
    /// A guard for tests that must terminate even if a model misbehaves.
    pub fn run_bounded(&mut self, limit: u64) -> u64 {
        let mut n = 0;
        while n < limit && self.step() {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    /// An M/D/1-ish toy: arrivals every 2 t.u., service takes 3 t.u.,
    /// single server, FIFO. Used to validate the engine against hand
    /// computation.
    struct ToyQueue {
        arrivals_left: u32,
        busy_until: Time,
        completions: Vec<Time>,
    }

    #[derive(Debug)]
    enum Ev {
        Arrive,
        Complete,
    }

    impl Model for ToyQueue {
        type Event = Ev;
        fn handle(&mut self, now: Time, event: Ev, queue: &mut EventQueue<Ev>) {
            match event {
                Ev::Arrive => {
                    let start = self.busy_until.max(now);
                    let done = start + Duration::from(3.0);
                    self.busy_until = done;
                    queue.schedule(done, Ev::Complete);
                    self.arrivals_left -= 1;
                    if self.arrivals_left > 0 {
                        queue.schedule(now + Duration::from(2.0), Ev::Arrive);
                    }
                }
                Ev::Complete => self.completions.push(now),
            }
        }
    }

    fn toy(n: u32) -> Engine<ToyQueue> {
        let mut e = Engine::new(ToyQueue {
            arrivals_left: n,
            busy_until: Time::ZERO,
            completions: Vec::new(),
        });
        e.schedule(Time::ZERO, Ev::Arrive);
        e
    }

    #[test]
    fn toy_queue_matches_hand_computation() {
        let mut e = toy(3);
        e.run_to_completion();
        // Arrivals at 0, 2, 4; service 3 each, FIFO: completions 3, 6, 9.
        assert_eq!(
            e.model().completions,
            vec![Time::from(3.0), Time::from(6.0), Time::from(9.0)]
        );
        assert_eq!(e.now(), Time::from(9.0));
        // 3 arrivals + 3 completions.
        assert_eq!(e.events_handled(), 6);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut e = toy(3);
        e.run_until(Time::from(6.0));
        // Completions at 3 and 6 handled; 9 still pending.
        assert_eq!(e.model().completions.len(), 2);
        e.run_to_completion();
        assert_eq!(e.model().completions.len(), 3);
    }

    #[test]
    fn run_bounded_limits_events() {
        let mut e = toy(3);
        assert_eq!(e.run_bounded(2), 2);
        assert_eq!(e.run_bounded(100), 4);
        assert_eq!(e.run_bounded(100), 0);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut e = toy(1);
        e.run_to_completion();
        e.schedule(Time::from(1.0), Ev::Arrive);
    }

    #[test]
    fn clock_is_monotone() {
        struct Recorder {
            seen: Vec<Time>,
        }
        impl Model for Recorder {
            type Event = u8;
            fn handle(&mut self, now: Time, _: u8, _: &mut EventQueue<u8>) {
                self.seen.push(now);
            }
        }
        let mut e = Engine::new(Recorder { seen: vec![] });
        for t in [5.0, 1.0, 3.0, 1.0, 9.0, 0.0] {
            e.schedule(Time::from(t), 0);
        }
        e.run_to_completion();
        let seen = &e.model().seen;
        assert!(seen.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(seen.len(), 6);
    }
}
