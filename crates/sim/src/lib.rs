//! # mbts-sim — discrete-event simulation substrate
//!
//! This crate is the foundation the rest of the market-based task service
//! (MBTS) stack is built on. It deliberately contains nothing specific to
//! scheduling or economics; it provides:
//!
//! * [`Time`] / [`Duration`] — totally-ordered simulation time,
//! * [`EventQueue`] — a stable (FIFO tie-breaking) pending-event set,
//! * [`Engine`] — a minimal next-event-time-advance loop,
//! * [`rng`] — deterministic, splittable random-number streams,
//! * [`dist`] — the distributions used by the paper's synthetic workloads
//!   (exponential, truncated normal, bimodal class mixtures, …),
//! * [`fault`] — seeded MTTF/MTTR crash-and-repair timelines for
//!   fault-injection experiments,
//! * [`stats`] — online summary statistics, histograms, and confidence
//!   intervals for multi-seed replication.
//!
//! Everything is seeded and replayable: two runs with the same seed produce
//! bit-identical event orderings.
//!
//! ```
//! use mbts_sim::{Engine, Time, Duration};
//!
//! // Count ticks: a model that re-schedules itself 10 times.
//! struct Ticker { ticks: u32 }
//! impl mbts_sim::Model for Ticker {
//!     type Event = ();
//!     fn handle(&mut self, now: Time, _ev: (), sched: &mut mbts_sim::EventQueue<()>) {
//!         self.ticks += 1;
//!         if self.ticks < 10 {
//!             sched.schedule(now + Duration::from(1.0), ());
//!         }
//!     }
//! }
//! let mut engine = Engine::new(Ticker { ticks: 0 });
//! engine.schedule(Time::ZERO, ());
//! engine.run_to_completion();
//! assert_eq!(engine.model().ticks, 10);
//! assert_eq!(engine.now(), Time::from(9.0));
//! ```

pub mod dist;
pub mod engine;
pub mod event;
pub mod fault;
pub mod profiler;
pub mod rng;
pub mod stats;
pub mod time;

pub use dist::Dist;
pub use engine::{Engine, Model};
pub use event::EventQueue;
pub use fault::{FaultConfig, FaultInjector, FaultInjectorState, FaultUnit, UpDown};
pub use rng::{RngFactory, SimRng};
pub use stats::{Histogram, OnlineStats, PairedComparison, Summary};
pub use time::{Duration, Time};
