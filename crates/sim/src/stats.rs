//! Online statistics for experiment aggregation.
//!
//! Experiments replicate every configuration across several seeds and
//! report mean ± confidence interval; the per-run simulators also track
//! distributions of delays and yields. [`OnlineStats`] is Welford's
//! single-pass algorithm (numerically stable for long runs); [`Histogram`]
//! is a fixed-bin histogram with out-of-range tails; [`Summary`] is the
//! serializable mean/CI bundle reports are built from.

use serde::{Deserialize, Serialize};

/// Welford single-pass mean/variance accumulator.
///
/// Serde impls are hand-written: the empty accumulator's min/max
/// sentinels are ±∞, which the vendored `serde_json` renders as `null`
/// (unrecoverable), so every float field is encoded via its IEEE-754 bit
/// pattern. That also makes snapshots of the accumulator bit-exact, which
/// the durable-recovery layer depends on.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Serialize for OnlineStats {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("n".into(), serde::Value::Int(self.n as i128)),
            ("mean_bits".into(), self.mean.to_bits().to_value()),
            ("m2_bits".into(), self.m2.to_bits().to_value()),
            ("min_bits".into(), self.min.to_bits().to_value()),
            ("max_bits".into(), self.max.to_bits().to_value()),
        ])
    }
}

impl Deserialize for OnlineStats {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("OnlineStats: expected object"))?;
        let field = |name: &str| -> Result<&serde::Value, serde::Error> {
            serde::get_field(entries, name)
                .ok_or_else(|| serde::Error::missing_field(name, "OnlineStats"))
        };
        let bits = |name: &str| -> Result<f64, serde::Error> {
            Ok(f64::from_bits(u64::from_value(field(name)?)?))
        };
        Ok(OnlineStats {
            n: u64::from_value(field("n")?)?,
            mean: bits("mean_bits")?,
            m2: bits("m2_bits")?,
            min: bits("min_bits")?,
            max: bits("max_bits")?,
        })
    }
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Smallest observation (∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Half-width of an ~95 % normal-approximation confidence interval.
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_err()
    }

    /// Merges another accumulator (parallel reduction of per-thread stats).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Snapshot as a serializable [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.n,
            mean: self.mean(),
            std_dev: self.std_dev(),
            ci95: self.ci95_half_width(),
            min: if self.n == 0 { 0.0 } else { self.min },
            max: if self.n == 0 { 0.0 } else { self.max },
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = OnlineStats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

/// Serializable mean/CI bundle, one cell of a report table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Summary {
    /// Number of observations behind this summary.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Half-width of the 95 % confidence interval for the mean.
    pub ci95: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

/// Fixed-bin histogram over `[lo, hi)` with explicit underflow/overflow
/// tails; used for delay and yield distributions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// A histogram with `bins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            // Guard against FP edge cases at the upper boundary.
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Count in bin `i`.
    pub fn bin(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Folds another histogram with the same range and bin count into
    /// this one (bin-wise sum, tails included).
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.bins.len() == other.bins.len(),
            "cannot merge histograms with different ranges or bin counts"
        );
        for (b, o) in self.bins.iter_mut().zip(&other.bins) {
            *b += o;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// `[lo, hi)` bounds of bin `i`.
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + i as f64 * width, self.lo + (i + 1) as f64 * width)
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded, including tails.
    pub fn total(&self) -> u64 {
        self.underflow + self.overflow + self.bins.iter().sum::<u64>()
    }

    /// Approximate `q`-quantile (0 ≤ q ≤ 1) by linear scan over bins,
    /// counting the tails at the range boundaries.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        let total = self.total();
        if total == 0 {
            return f64::NAN;
        }
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return self.lo;
        }
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.bin_bounds(i).1;
            }
        }
        self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s: OnlineStats = xs.iter().copied().collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Direct unbiased variance = 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_err(), 0.0);
        assert_eq!(s.summary().count, 0);
    }

    #[test]
    fn single_observation() {
        let mut s = OnlineStats::new();
        s.push(3.0);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 3.0);
        assert_eq!(s.max(), 3.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let all: OnlineStats = xs.iter().copied().collect();
        let left: OnlineStats = xs[..37].iter().copied().collect();
        let right: OnlineStats = xs[37..].iter().copied().collect();
        let mut merged = left;
        merged.merge(&right);
        assert_eq!(merged.count(), all.count());
        assert!((merged.mean() - all.mean()).abs() < 1e-9);
        assert!((merged.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(merged.min(), all.min());
        assert_eq!(merged.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a: OnlineStats = [1.0, 2.0, 3.0].into_iter().collect();
        let mut b = a;
        b.merge(&OnlineStats::new());
        assert_eq!(a, b);
        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.mean(), a.mean());
    }

    #[test]
    fn ci_shrinks_with_n() {
        let few: OnlineStats = (0..10).map(|i| i as f64).collect();
        let many: OnlineStats = (0..1000).map(|i| (i % 10) as f64).collect();
        assert!(many.ci95_half_width() < few.ci95_half_width());
    }

    #[test]
    fn histogram_bins_and_tails() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [-1.0, 0.0, 0.5, 5.0, 9.99, 10.0, 42.0] {
            h.record(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bin(0), 2); // 0.0 and 0.5
        assert_eq!(h.bin(5), 1);
        assert_eq!(h.bin(9), 1);
        assert_eq!(h.total(), 7);
        assert_eq!(h.bin_bounds(3), (3.0, 4.0));
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let median = h.quantile(0.5);
        assert!((median - 50.0).abs() <= 1.0, "median {median}");
        let p90 = h.quantile(0.9);
        assert!((p90 - 90.0).abs() <= 1.0, "p90 {p90}");
        assert_eq!(h.quantile(1.0), 100.0);
    }

    #[test]
    fn empty_histogram_quantile_is_nan() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert!(h.quantile(0.5).is_nan());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Welford mean/variance agree with the two-pass formulas.
        #[test]
        fn welford_vs_two_pass(xs in proptest::collection::vec(-1e3f64..1e3, 2..200)) {
            let s: OnlineStats = xs.iter().copied().collect();
            let n = xs.len() as f64;
            let mean = xs.iter().sum::<f64>() / n;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
            prop_assert!((s.mean() - mean).abs() < 1e-6);
            prop_assert!((s.variance() - var).abs() < 1e-4);
        }

        /// merge() is associative with sequential pushes for any split point.
        #[test]
        fn merge_any_split(xs in proptest::collection::vec(-100f64..100.0, 1..100), split in 0usize..100) {
            let split = split % (xs.len() + 1);
            let all: OnlineStats = xs.iter().copied().collect();
            let mut left: OnlineStats = xs[..split].iter().copied().collect();
            let right: OnlineStats = xs[split..].iter().copied().collect();
            left.merge(&right);
            prop_assert_eq!(left.count(), all.count());
            prop_assert!((left.mean() - all.mean()).abs() < 1e-7);
            prop_assert!((left.variance() - all.variance()).abs() < 1e-5);
        }

        /// Histogram conserves its observation count.
        #[test]
        fn histogram_conserves(xs in proptest::collection::vec(-10f64..110.0, 0..300)) {
            let mut h = Histogram::new(0.0, 100.0, 13);
            for &x in &xs { h.record(x); }
            prop_assert_eq!(h.total(), xs.len() as u64);
        }
    }
}

/// Paired-sample comparison between two treatments measured on the same
/// seeds (the common-random-numbers design every experiment here uses).
/// Computes the mean difference, its confidence interval, and a paired
/// t-statistic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairedComparison {
    /// Number of pairs.
    pub n: usize,
    /// Mean of (treatment − baseline).
    pub mean_diff: f64,
    /// Standard error of the mean difference.
    pub std_err: f64,
    /// Paired t-statistic (`mean_diff / std_err`); 0 when degenerate.
    pub t_stat: f64,
}

impl PairedComparison {
    /// Builds the comparison from per-seed treatment and baseline values.
    /// Panics if the slices differ in length or have fewer than 2 pairs.
    pub fn new(treatment: &[f64], baseline: &[f64]) -> Self {
        assert_eq!(
            treatment.len(),
            baseline.len(),
            "paired comparison needs equal-length samples"
        );
        assert!(treatment.len() >= 2, "need at least two pairs");
        let diffs: OnlineStats = treatment.iter().zip(baseline).map(|(t, b)| t - b).collect();
        let std_err = diffs.std_err();
        let mean_diff = diffs.mean();
        let t_stat = if std_err > 0.0 {
            mean_diff / std_err
        } else if mean_diff == 0.0 {
            0.0
        } else {
            // A perfectly consistent nonzero difference: infinitely
            // significant.
            f64::INFINITY.copysign(mean_diff)
        };
        PairedComparison {
            n: treatment.len(),
            mean_diff,
            std_err,
            t_stat,
        }
    }

    /// Two-sided 95 % critical value of Student's t for `df` degrees of
    /// freedom (exact table through 30, normal limit beyond).
    pub fn t_crit_95(df: usize) -> f64 {
        const TABLE: [f64; 30] = [
            12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
            2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
            2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
        ];
        if df == 0 {
            f64::INFINITY
        } else if df <= 30 {
            TABLE[df - 1]
        } else {
            1.960
        }
    }

    /// Half-width of the 95 % CI for the mean difference.
    pub fn ci95_half_width(&self) -> f64 {
        Self::t_crit_95(self.n - 1) * self.std_err
    }

    /// `true` if the difference is significant at the 95 % level.
    pub fn significant_95(&self) -> bool {
        self.t_stat.abs() > Self::t_crit_95(self.n - 1)
    }
}

#[cfg(test)]
mod paired_tests {
    use super::*;

    #[test]
    fn clear_difference_is_significant() {
        let baseline = [10.0, 11.0, 9.5, 10.5, 10.2];
        let treatment = [12.0, 13.1, 11.4, 12.6, 12.1];
        let c = PairedComparison::new(&treatment, &baseline);
        assert!(c.mean_diff > 1.9 && c.mean_diff < 2.2);
        assert!(c.significant_95(), "t = {}", c.t_stat);
        assert!(c.ci95_half_width() < c.mean_diff);
    }

    #[test]
    fn noise_is_not_significant() {
        let baseline = [10.0, 11.0, 9.5, 10.5, 10.2];
        let treatment = [10.1, 10.8, 9.7, 10.4, 10.3];
        let c = PairedComparison::new(&treatment, &baseline);
        assert!(!c.significant_95(), "t = {}", c.t_stat);
    }

    #[test]
    fn pairing_beats_unpaired_when_seeds_dominate() {
        // Huge between-seed variance, tiny consistent treatment effect:
        // the paired design detects it.
        let baseline = [100.0, 500.0, 900.0, 1300.0, 250.0, 720.0];
        let treatment: Vec<f64> = baseline.iter().map(|b| b + 5.0).collect();
        let c = PairedComparison::new(&treatment, &baseline);
        assert!((c.mean_diff - 5.0).abs() < 1e-12);
        assert!(c.significant_95());
    }

    #[test]
    fn degenerate_zero_variance() {
        let c = PairedComparison::new(&[3.0, 3.0, 3.0], &[3.0, 3.0, 3.0]);
        assert_eq!(c.mean_diff, 0.0);
        assert_eq!(c.t_stat, 0.0);
        assert!(!c.significant_95());
    }

    #[test]
    fn t_table_sane() {
        assert!(PairedComparison::t_crit_95(1) > 12.0);
        assert!((PairedComparison::t_crit_95(10) - 2.228).abs() < 1e-9);
        assert!((PairedComparison::t_crit_95(100) - 1.96).abs() < 1e-9);
        assert!(PairedComparison::t_crit_95(0).is_infinite());
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mismatched_lengths_panic() {
        let _ = PairedComparison::new(&[1.0, 2.0], &[1.0]);
    }
}
