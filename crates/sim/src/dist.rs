//! Sampling distributions for synthetic workloads.
//!
//! The paper's methodology (§4.1) uses:
//!
//! * **exponential** inter-arrival times and job durations (the common
//!   batch-workload case per the cited trace studies),
//! * **normal** inter-arrival/durations for the Millennium-comparison
//!   experiments (Fig. 3), and
//! * **bimodal class mixtures** for value and decay: a high class and a low
//!   class, normal within class, with the ratio of class means called the
//!   *skew ratio*.
//!
//! [`Dist`] is a small closed enum rather than a trait object: workload
//! configs must be serializable (traces are written to disk for replay),
//! and a closed set keeps sampling free of virtual dispatch in the
//! generator's hot loop. Normal sampling uses Box–Muller; we implement it
//! here rather than pull in `rand_distr`, keeping the dependency set to the
//! approved list.

use crate::rng::SimRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A continuous sampling distribution over `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// Always `value`.
    Constant { value: f64 },
    /// Exponential with the given mean (not rate).
    Exponential { mean: f64 },
    /// Normal truncated below at `min` (resampled, not clipped, so the
    /// distribution stays smooth; used for durations/values that must stay
    /// positive).
    Normal { mean: f64, std_dev: f64, min: f64 },
    /// Uniform over `[lo, hi)`.
    Uniform { lo: f64, hi: f64 },
    /// With probability `p_high` sample from `high`, else from `low`.
    /// This is the paper's bimodal value/decay construction.
    Bimodal {
        p_high: f64,
        high: Box<Dist>,
        low: Box<Dist>,
    },
    /// Log-normal with the given *distribution* mean and sigma of the
    /// underlying normal — a standard heavy-tailed model for batch job
    /// durations (Downey & Feitelson 1999).
    LogNormal {
        /// Mean of the resulting distribution (not of the log).
        mean: f64,
        /// σ of the underlying normal (shape; larger = heavier tail).
        sigma: f64,
    },
    /// Weibull with shape `k` and the given mean. `k < 1` is heavy-tailed
    /// (another common duration model); `k = 1` is exponential.
    Weibull {
        /// Mean of the distribution.
        mean: f64,
        /// Shape parameter.
        shape: f64,
    },
    /// Two-phase hyperexponential: with probability `p` an exponential of
    /// mean `mean_a`, else of mean `mean_b`. High-variance mixture used
    /// to stress schedulers with bursty service demands.
    HyperExp { p: f64, mean_a: f64, mean_b: f64 },
}

impl Dist {
    /// Exponential with mean `mean`.
    pub fn exponential(mean: f64) -> Dist {
        assert!(mean > 0.0, "exponential mean must be positive, got {mean}");
        Dist::Exponential { mean }
    }

    /// Normal truncated below at zero.
    pub fn normal_positive(mean: f64, std_dev: f64) -> Dist {
        assert!(std_dev >= 0.0, "std_dev must be non-negative");
        Dist::Normal {
            mean,
            std_dev,
            min: f64::MIN_POSITIVE,
        }
    }

    /// Normal truncated below at `min`.
    pub fn normal_min(mean: f64, std_dev: f64, min: f64) -> Dist {
        assert!(std_dev >= 0.0, "std_dev must be non-negative");
        Dist::Normal { mean, std_dev, min }
    }

    /// The paper's bimodal class mixture: `p_high` of draws come from a
    /// normal around `high_mean`, the rest from a normal around
    /// `high_mean / skew_ratio`; within-class σ is `cv · class_mean`.
    pub fn bimodal_classes(p_high: f64, high_mean: f64, skew_ratio: f64, cv: f64) -> Dist {
        assert!((0.0..=1.0).contains(&p_high), "p_high must be in [0,1]");
        assert!(high_mean > 0.0 && skew_ratio >= 1.0 && cv >= 0.0);
        let low_mean = high_mean / skew_ratio;
        Dist::Bimodal {
            p_high,
            high: Box::new(Dist::normal_positive(high_mean, cv * high_mean)),
            low: Box::new(Dist::normal_positive(low_mean, cv * low_mean)),
        }
    }

    /// Log-normal with a target mean and tail shape `sigma`.
    pub fn lognormal(mean: f64, sigma: f64) -> Dist {
        assert!(mean > 0.0 && sigma >= 0.0);
        Dist::LogNormal { mean, sigma }
    }

    /// Weibull with a target mean and shape `k`.
    pub fn weibull(mean: f64, shape: f64) -> Dist {
        assert!(mean > 0.0 && shape > 0.0);
        Dist::Weibull { mean, shape }
    }

    /// Balanced two-phase hyperexponential with the given mean and
    /// squared coefficient of variation `scv > 1`.
    pub fn hyperexp(mean: f64, scv: f64) -> Dist {
        assert!(mean > 0.0 && scv > 1.0, "hyperexponential needs scv > 1");
        // Balanced-means construction: p chosen so both phases carry
        // equal load; phase means derived from the target scv.
        let p = 0.5 * (1.0 + ((scv - 1.0) / (scv + 1.0)).sqrt());
        let mean_a = mean / (2.0 * p);
        let mean_b = mean / (2.0 * (1.0 - p));
        Dist::HyperExp { p, mean_a, mean_b }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        match self {
            Dist::Constant { value } => *value,
            Dist::Exponential { mean } => {
                // Inverse CDF. `1 - u` keeps the argument in (0, 1].
                let u: f64 = rng.gen::<f64>();
                -mean * (1.0 - u).ln()
            }
            Dist::Normal { mean, std_dev, min } => {
                if *std_dev == 0.0 {
                    return mean.max(*min);
                }
                // Resample until above the truncation point; for the
                // parameterizations used here (min ≈ 0, mean ≥ 2σ) this
                // almost never loops more than once.
                loop {
                    let x = mean + std_dev * box_muller(rng);
                    if x >= *min {
                        return x;
                    }
                }
            }
            Dist::Uniform { lo, hi } => {
                if lo == hi {
                    *lo
                } else {
                    rng.gen_range(*lo..*hi)
                }
            }
            Dist::Bimodal { p_high, high, low } => {
                if rng.gen::<f64>() < *p_high {
                    high.sample(rng)
                } else {
                    low.sample(rng)
                }
            }
            Dist::LogNormal { mean, sigma } => {
                // E[X] = exp(µ + σ²/2) ⇒ µ = ln(mean) − σ²/2.
                let mu = mean.ln() - sigma * sigma / 2.0;
                (mu + sigma * box_muller(rng)).exp()
            }
            Dist::Weibull { mean, shape } => {
                // X = λ·(−ln U)^{1/k}, λ = mean / Γ(1 + 1/k).
                let lambda = mean / gamma(1.0 + 1.0 / shape);
                let u: f64 = rng.gen::<f64>();
                lambda * (-(1.0 - u).ln()).powf(1.0 / shape)
            }
            Dist::HyperExp { p, mean_a, mean_b } => {
                let mean = if rng.gen::<f64>() < *p {
                    mean_a
                } else {
                    mean_b
                };
                let u: f64 = rng.gen::<f64>();
                -mean * (1.0 - u).ln()
            }
        }
    }

    /// The analytic mean of the distribution, ignoring truncation (exact
    /// for the untruncated members; a close upper-tail-dominated
    /// approximation for `Normal` with `min ≪ mean`). Used by the workload
    /// generator to calibrate load factors.
    pub fn mean(&self) -> f64 {
        match self {
            Dist::Constant { value } => *value,
            Dist::Exponential { mean } => *mean,
            Dist::Normal { mean, .. } => *mean,
            Dist::Uniform { lo, hi } => 0.5 * (lo + hi),
            Dist::Bimodal { p_high, high, low } => {
                p_high * high.mean() + (1.0 - p_high) * low.mean()
            }
            Dist::LogNormal { mean, .. } => *mean,
            Dist::Weibull { mean, .. } => *mean,
            Dist::HyperExp { p, mean_a, mean_b } => p * mean_a + (1.0 - p) * mean_b,
        }
    }

    /// Returns a copy with the mean scaled by `factor` (shape preserved).
    /// Load-factor sweeps compress inter-arrival times this way.
    pub fn scaled(&self, factor: f64) -> Dist {
        assert!(factor > 0.0, "scale factor must be positive");
        match self {
            Dist::Constant { value } => Dist::Constant {
                value: value * factor,
            },
            Dist::Exponential { mean } => Dist::Exponential {
                mean: mean * factor,
            },
            Dist::Normal { mean, std_dev, min } => Dist::Normal {
                mean: mean * factor,
                std_dev: std_dev * factor,
                min: min * factor,
            },
            Dist::Uniform { lo, hi } => Dist::Uniform {
                lo: lo * factor,
                hi: hi * factor,
            },
            Dist::Bimodal { p_high, high, low } => Dist::Bimodal {
                p_high: *p_high,
                high: Box::new(high.scaled(factor)),
                low: Box::new(low.scaled(factor)),
            },
            Dist::LogNormal { mean, sigma } => Dist::LogNormal {
                mean: mean * factor,
                sigma: *sigma,
            },
            Dist::Weibull { mean, shape } => Dist::Weibull {
                mean: mean * factor,
                shape: *shape,
            },
            Dist::HyperExp { p, mean_a, mean_b } => Dist::HyperExp {
                p: *p,
                mean_a: mean_a * factor,
                mean_b: mean_b * factor,
            },
        }
    }
}

/// Lanczos approximation of the gamma function (g = 7, n = 9), accurate
/// to ~15 significant digits for the positive arguments used here.
fn gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const C: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = C[0];
        let t = x + G + 0.5;
        for (i, &c) in C.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

/// One standard-normal variate via the polar Box–Muller method.
fn box_muller(rng: &mut SimRng) -> f64 {
    loop {
        let u = 2.0 * rng.gen::<f64>() - 1.0;
        let v = 2.0 * rng.gen::<f64>() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngFactory;

    fn sample_mean(d: &Dist, n: usize) -> f64 {
        let mut rng = RngFactory::new(2024).stream("dist-test");
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    fn sample_var(d: &Dist, n: usize) -> f64 {
        let mut rng = RngFactory::new(2025).stream("dist-var");
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let m = xs.iter().sum::<f64>() / n as f64;
        xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (n - 1) as f64
    }

    #[test]
    fn constant_is_constant() {
        let d = Dist::Constant { value: 3.5 };
        let mut rng = RngFactory::new(0).stream("c");
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 3.5);
        }
        assert_eq!(d.mean(), 3.5);
    }

    #[test]
    fn exponential_mean_and_variance() {
        let d = Dist::exponential(10.0);
        let m = sample_mean(&d, 200_000);
        assert!((m - 10.0).abs() < 0.15, "mean {m}");
        // Var = mean² for exponential.
        let v = sample_var(&d, 200_000);
        assert!((v - 100.0).abs() < 3.0, "var {v}");
    }

    #[test]
    fn exponential_is_positive() {
        let d = Dist::exponential(1.0);
        let mut rng = RngFactory::new(5).stream("e");
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn normal_mean_and_std() {
        let d = Dist::normal_min(100.0, 20.0, f64::NEG_INFINITY);
        let m = sample_mean(&d, 200_000);
        assert!((m - 100.0).abs() < 0.3, "mean {m}");
        let v = sample_var(&d, 200_000);
        assert!((v.sqrt() - 20.0).abs() < 0.3, "std {}", v.sqrt());
    }

    #[test]
    fn truncated_normal_respects_floor() {
        let d = Dist::normal_min(1.0, 5.0, 0.5);
        let mut rng = RngFactory::new(7).stream("t");
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 0.5);
        }
    }

    #[test]
    fn zero_sigma_normal_is_degenerate() {
        let d = Dist::normal_min(10.0, 0.0, 0.0);
        let mut rng = RngFactory::new(7).stream("z");
        assert_eq!(d.sample(&mut rng), 10.0);
    }

    #[test]
    fn uniform_bounds() {
        let d = Dist::Uniform { lo: 2.0, hi: 4.0 };
        let mut rng = RngFactory::new(9).stream("u");
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..4.0).contains(&x));
        }
        assert_eq!(d.mean(), 3.0);
    }

    #[test]
    fn bimodal_class_mixture_mean() {
        // 20% high with mean 90, 80% low with mean 10 → mean 26.
        let d = Dist::Bimodal {
            p_high: 0.2,
            high: Box::new(Dist::Constant { value: 90.0 }),
            low: Box::new(Dist::Constant { value: 10.0 }),
        };
        assert!((d.mean() - 26.0).abs() < 1e-12);
        let m = sample_mean(&d, 100_000);
        assert!((m - 26.0).abs() < 0.5, "mean {m}");
    }

    #[test]
    fn bimodal_classes_builder_matches_skew_ratio() {
        let d = Dist::bimodal_classes(0.2, 9.0, 9.0, 0.0);
        // high mean 9, low mean 1 → mixture mean 0.2·9 + 0.8·1 = 2.6
        assert!((d.mean() - 2.6).abs() < 1e-12);
        // skew 1 collapses the classes
        let flat = Dist::bimodal_classes(0.2, 5.0, 1.0, 0.0);
        let mut rng = RngFactory::new(3).stream("flat");
        for _ in 0..100 {
            assert_eq!(flat.sample(&mut rng), 5.0);
        }
    }

    #[test]
    fn scaled_scales_mean_and_samples() {
        let d = Dist::exponential(4.0).scaled(0.5);
        assert_eq!(d.mean(), 2.0);
        let m = sample_mean(&d, 100_000);
        assert!((m - 2.0).abs() < 0.05, "mean {m}");
        let bi = Dist::bimodal_classes(0.5, 10.0, 2.0, 0.1).scaled(3.0);
        assert!((bi.mean() - 3.0 * 7.5).abs() < 1e-9);
    }

    #[test]
    fn serde_roundtrip() {
        let d = Dist::bimodal_classes(0.2, 9.0, 4.0, 0.2);
        let json = serde_json::to_string(&d).unwrap();
        let back: Dist = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn negative_exponential_mean_rejected() {
        let _ = Dist::exponential(-1.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::rng::RngFactory;
    use proptest::prelude::*;

    proptest! {
        /// Sampling is deterministic in (seed, distribution).
        #[test]
        fn deterministic(seed in any::<u64>(), mean in 0.1f64..100.0) {
            let d = Dist::exponential(mean);
            let mut a = RngFactory::new(seed).stream("p");
            let mut b = RngFactory::new(seed).stream("p");
            for _ in 0..32 {
                prop_assert_eq!(d.sample(&mut a), d.sample(&mut b));
            }
        }

        /// Truncated normals never violate their floor, whatever the params.
        #[test]
        fn truncation_invariant(mean in -50.0f64..50.0, sd in 0.0f64..20.0, min in -10.0f64..10.0, seed in any::<u64>()) {
            let d = Dist::normal_min(mean.max(min), sd, min);
            let mut rng = RngFactory::new(seed).stream("trunc");
            for _ in 0..64 {
                prop_assert!(d.sample(&mut rng) >= min);
            }
        }

        /// scaled() multiplies every sample path's mean consistently.
        #[test]
        fn scaling_mean(mean in 0.1f64..50.0, k in 0.1f64..10.0) {
            let d = Dist::exponential(mean);
            prop_assert!((d.scaled(k).mean() - d.mean() * k).abs() < 1e-9);
        }
    }
}

#[cfg(test)]
mod heavy_tail_tests {
    use super::*;
    use crate::rng::RngFactory;

    fn sample_stats(d: &Dist, n: usize) -> (f64, f64) {
        let mut rng = RngFactory::new(77).stream("ht");
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let m = xs.iter().sum::<f64>() / n as f64;
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (n - 1) as f64;
        (m, v)
    }

    #[test]
    fn gamma_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-12);
        assert!((gamma(2.0) - 1.0).abs() < 1e-12);
        assert!((gamma(5.0) - 24.0).abs() < 1e-9);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
        assert!((gamma(1.5) - 0.5 * std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn lognormal_hits_target_mean() {
        let d = Dist::lognormal(100.0, 1.0);
        let (m, v) = sample_stats(&d, 400_000);
        assert!((m - 100.0).abs() / 100.0 < 0.02, "mean {m}");
        // Var = mean²·(e^{σ²} − 1) ≈ 100²·1.718.
        let expect_v = 100.0_f64.powi(2) * (1f64.exp() - 1.0);
        assert!(
            (v - expect_v).abs() / expect_v < 0.15,
            "var {v} vs {expect_v}"
        );
        assert_eq!(d.mean(), 100.0);
    }

    #[test]
    fn weibull_hits_target_mean_and_reduces_to_exponential() {
        let d = Dist::weibull(100.0, 0.7);
        let (m, _) = sample_stats(&d, 300_000);
        assert!((m - 100.0).abs() / 100.0 < 0.02, "mean {m}");
        // Shape 1 == exponential: variance ≈ mean².
        let (m1, v1) = sample_stats(&Dist::weibull(50.0, 1.0), 300_000);
        assert!((m1 - 50.0).abs() / 50.0 < 0.02);
        assert!((v1 - 2500.0).abs() / 2500.0 < 0.05, "var {v1}");
    }

    #[test]
    fn hyperexp_hits_target_mean_and_scv() {
        let target_scv = 4.0;
        let d = Dist::hyperexp(100.0, target_scv);
        assert!((d.mean() - 100.0).abs() < 1e-9);
        let (m, v) = sample_stats(&d, 400_000);
        assert!((m - 100.0).abs() / 100.0 < 0.02, "mean {m}");
        let scv = v / (m * m);
        assert!((scv - target_scv).abs() / target_scv < 0.1, "scv {scv}");
    }

    #[test]
    fn heavy_tails_are_heavier() {
        // Ordering of tail mass at the same mean: lognormal(σ=1.5) and
        // weibull(k=0.5) should produce far larger maxima than exponential.
        let mut rng = RngFactory::new(5).stream("tails");
        let max_of = |d: &Dist, rng: &mut crate::rng::SimRng| {
            (0..50_000).map(|_| d.sample(rng)).fold(0.0f64, f64::max)
        };
        let exp_max = max_of(&Dist::exponential(100.0), &mut rng);
        let ln_max = max_of(&Dist::lognormal(100.0, 1.5), &mut rng);
        let wb_max = max_of(&Dist::weibull(100.0, 0.5), &mut rng);
        assert!(ln_max > exp_max, "lognormal max {ln_max} vs exp {exp_max}");
        assert!(wb_max > exp_max, "weibull max {wb_max} vs exp {exp_max}");
    }

    #[test]
    fn all_positive() {
        let mut rng = RngFactory::new(6).stream("pos");
        for d in [
            Dist::lognormal(10.0, 2.0),
            Dist::weibull(10.0, 0.5),
            Dist::hyperexp(10.0, 9.0),
        ] {
            for _ in 0..20_000 {
                assert!(d.sample(&mut rng) >= 0.0);
            }
        }
    }

    #[test]
    fn scaling_heavy_tails() {
        for d in [
            Dist::lognormal(10.0, 1.0),
            Dist::weibull(10.0, 0.8),
            Dist::hyperexp(10.0, 3.0),
        ] {
            assert!((d.scaled(3.0).mean() - 30.0).abs() < 1e-9);
        }
    }

    #[test]
    fn serde_roundtrip_heavy_tails() {
        for d in [
            Dist::lognormal(10.0, 1.0),
            Dist::weibull(10.0, 0.8),
            Dist::hyperexp(10.0, 3.0),
        ] {
            let back: Dist = serde_json::from_str(&serde_json::to_string(&d).unwrap()).unwrap();
            assert_eq!(back, d);
        }
    }

    #[test]
    #[should_panic(expected = "scv > 1")]
    fn hyperexp_requires_high_variance() {
        let _ = Dist::hyperexp(10.0, 0.5);
    }
}
