//! Site configuration.

use mbts_core::{AdmissionPolicy, Policy, ScheduleMode};
use mbts_workload::WorkflowFacets;
use serde::{Deserialize, Serialize};

fn default_true() -> bool {
    true
}

/// What happens to a task's progress when it is preempted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum PreemptionMode {
    /// The paper's §4 model: a suspended task resumes on any processor
    /// with its progress intact (negligible context-switch cost).
    #[default]
    Resume,
    /// Batch-cluster kill-and-requeue: a preempted task loses all
    /// progress and runs from scratch when redispatched. Models clusters
    /// without checkpointing; makes committing a processor to a long task
    /// a genuinely risky investment (the `ablate preemption` study).
    Restart,
    /// Checkpoint/restore: progress is kept but each preemption adds
    /// `overhead` time units of restore work — the middle ground between
    /// the paper's free suspend/resume and kill-and-requeue.
    CheckpointRestore {
        /// Extra work (time units) each resume must redo.
        overhead: f64,
    },
}

/// What survives when a **crash** evicts a running gang. Distinct from
/// [`PreemptionMode`], which governs voluntary scheduler preemption: a
/// preempted task is suspended cooperatively, a crashed one loses its
/// processors mid-flight.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum LostWorkPolicy {
    /// All progress is lost; the task runs from scratch when
    /// redispatched.
    #[default]
    Restart,
    /// The task checkpoints every `interval` time units: on eviction it
    /// keeps progress up to its last checkpoint and pays
    /// `restart_penalty` extra work (added to both the estimated and
    /// true remaining processing time) when redispatched.
    Checkpoint {
        /// Seconds (time units) between checkpoints.
        interval: f64,
        /// Extra work each restore must redo.
        restart_penalty: f64,
    },
}

/// Configuration of a task-service site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteConfig {
    /// Number of interchangeable processors.
    pub processors: usize,
    /// The value-based dispatch policy.
    pub policy: Policy,
    /// Acceptance heuristic applied to each submission.
    pub admission: AdmissionPolicy,
    /// Whether a new arrival may preempt a lower-priority running task.
    pub preemption: bool,
    /// Progress semantics when preempted.
    pub preemption_mode: PreemptionMode,
    /// Progress semantics when a crash evicts a running gang.
    #[serde(default)]
    pub lost_work: LostWorkPolicy,
    /// How candidate schedules are built on the admission path.
    pub schedule_mode: ScheduleMode,
    /// Discount rate used for the PV term in the slack computation
    /// (the paper uses the scheduling heuristic's rate, 1 %).
    pub admission_discount_rate: f64,
    /// If `true` (default), the dispatcher EASY-backfills around a
    /// head-of-line gang that does not fit; if `false`, dispatch stops at
    /// the first non-fitting task (strict score order — the `ablate
    /// widths` comparison).
    #[serde(default = "default_true")]
    pub backfilling: bool,
    /// If `true`, the site records a structured [`crate::audit`] event
    /// log. Off by default.
    #[serde(default)]
    pub audit: bool,
    /// If `true`, the site records per-task execution segments for Gantt
    /// rendering (see [`crate::gantt`]). Off by default: experiment runs
    /// don't pay the allocation.
    #[serde(default)]
    pub record_segments: bool,
    /// If `true`, expired bounded-penalty tasks are discarded from the
    /// queue instead of eventually being run for their floored yield
    /// (Millennium §3: "the system incurs no cost even if it discards an
    /// expired task").
    pub drop_expired: bool,
    /// If `true` (default), dispatch selection runs on the incremental
    /// pending pool (persistent score heap + incrementally maintained
    /// cost model, `O(log n)` per queue event). If `false`, every
    /// dispatch decision rescoring the whole queue from scratch — the
    /// baseline the `scheduler_hotpath` bench and the equivalence tests
    /// compare against. Both paths pick the same task; see
    /// `mbts_core::pool`.
    #[serde(default = "default_true")]
    pub incremental: bool,
    /// Per-task workflow facets (owning workflow, critical-path flag,
    /// successor context for Eq. 7′/8′ successor-aware admission).
    /// Absent for plain task workloads — and absent from serialized
    /// configs, so pre-workflow configs round-trip byte-identically.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub workflow_facets: Option<WorkflowFacets>,
}

impl SiteConfig {
    /// A site with `processors` processors, FirstPrice dispatch, no
    /// admission control, and preemption disabled.
    pub fn new(processors: usize) -> Self {
        assert!(processors > 0, "site needs at least one processor");
        SiteConfig {
            processors,
            policy: Policy::FirstPrice,
            admission: AdmissionPolicy::AcceptAll,
            preemption: false,
            preemption_mode: PreemptionMode::Resume,
            lost_work: LostWorkPolicy::Restart,
            schedule_mode: ScheduleMode::Static,
            admission_discount_rate: 0.01,
            backfilling: true,
            audit: false,
            record_segments: false,
            drop_expired: false,
            incremental: true,
            workflow_facets: None,
        }
    }

    /// Sets the dispatch policy.
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the admission policy.
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// Enables or disables preemption.
    pub fn with_preemption(mut self, on: bool) -> Self {
        self.preemption = on;
        self
    }

    /// Sets the preemption progress semantics.
    pub fn with_preemption_mode(mut self, mode: PreemptionMode) -> Self {
        self.preemption_mode = mode;
        self
    }

    /// Sets the crash lost-work semantics.
    pub fn with_lost_work(mut self, policy: LostWorkPolicy) -> Self {
        self.lost_work = policy;
        self
    }

    /// Sets the candidate-schedule construction mode.
    pub fn with_schedule_mode(mut self, mode: ScheduleMode) -> Self {
        self.schedule_mode = mode;
        self
    }

    /// Sets the discount rate used in slack computations.
    pub fn with_admission_discount_rate(mut self, rate: f64) -> Self {
        assert!(rate >= 0.0, "discount rate must be non-negative");
        self.admission_discount_rate = rate;
        self
    }

    /// Enables or disables audit-event recording.
    pub fn with_audit(mut self, on: bool) -> Self {
        self.audit = on;
        self
    }

    /// Enables or disables EASY backfilling for gang workloads.
    pub fn with_backfilling(mut self, on: bool) -> Self {
        self.backfilling = on;
        self
    }

    /// Enables or disables execution-segment recording.
    pub fn with_record_segments(mut self, on: bool) -> Self {
        self.record_segments = on;
        self
    }

    /// Enables or disables discarding of expired tasks.
    pub fn with_drop_expired(mut self, on: bool) -> Self {
        self.drop_expired = on;
        self
    }

    /// Enables or disables the incremental dispatch core (`true` by
    /// default; `false` reverts to rebuild-per-event selection).
    pub fn with_incremental(mut self, on: bool) -> Self {
        self.incremental = on;
        self
    }

    /// Installs per-task workflow facets: admission becomes
    /// successor-aware (Eq. 7′/8′) and decision provenance is stamped
    /// with workflow/critical-path membership.
    pub fn with_workflow_facets(mut self, facets: WorkflowFacets) -> Self {
        self.workflow_facets = Some(facets);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let c = SiteConfig::new(8)
            .with_policy(Policy::pv(0.02))
            .with_admission(AdmissionPolicy::SlackThreshold { threshold: 180.0 })
            .with_preemption(true)
            .with_schedule_mode(ScheduleMode::Dynamic)
            .with_admission_discount_rate(0.05)
            .with_drop_expired(true);
        assert_eq!(c.processors, 8);
        assert_eq!(c.policy, Policy::pv(0.02));
        assert!(c.preemption);
        assert!(c.drop_expired);
        assert_eq!(c.schedule_mode, ScheduleMode::Dynamic);
        assert_eq!(c.admission_discount_rate, 0.05);
    }

    #[test]
    fn defaults_are_paperlike() {
        let c = SiteConfig::new(16);
        assert_eq!(c.policy, Policy::FirstPrice);
        assert_eq!(c.admission, AdmissionPolicy::AcceptAll);
        assert!(!c.preemption);
        assert!(!c.drop_expired);
        assert!(c.incremental);
    }

    #[test]
    fn incremental_defaults_on_when_missing_from_serde() {
        // Configs recorded before the incremental core existed must keep
        // deserializing — and get the new default.
        let mut c = SiteConfig::new(4).with_incremental(false);
        let json = serde_json::to_string(&c).unwrap();
        let back: SiteConfig = serde_json::from_str(&json).unwrap();
        assert!(!back.incremental);
        c.incremental = true;
        assert_eq!(
            serde_json::from_str::<SiteConfig>(&serde_json::to_string(&c).unwrap()).unwrap(),
            c
        );
    }

    #[test]
    fn lost_work_defaults_to_restart_and_roundtrips() {
        // Configs recorded before the fault layer existed must keep
        // deserializing — and get the conservative default.
        assert_eq!(
            serde_json::from_str::<SiteConfig>(
                &serde_json::to_string(&SiteConfig::new(4)).unwrap()
            )
            .unwrap()
            .lost_work,
            LostWorkPolicy::Restart
        );
        let c = SiteConfig::new(4).with_lost_work(LostWorkPolicy::Checkpoint {
            interval: 30.0,
            restart_penalty: 5.0,
        });
        assert_eq!(
            serde_json::from_str::<SiteConfig>(&serde_json::to_string(&c).unwrap()).unwrap(),
            c
        );
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        let _ = SiteConfig::new(0);
    }

    #[test]
    fn serde_roundtrip() {
        let c = SiteConfig::new(4).with_policy(Policy::first_reward(0.3, 0.01));
        let json = serde_json::to_string(&c).unwrap();
        let back: SiteConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
