//! # mbts-site — an event-driven task-service site
//!
//! Executes a stream of submitted tasks on a pool of interchangeable
//! processors under the paper's model (§4):
//!
//! * gang-of-one tasks, zero context-switch cost,
//! * a value-based [`Policy`](mbts_core::Policy) selects which queued task
//!   runs at each dispatch point,
//! * optional **preemption**: a newly arriving higher-priority task may
//!   suspend a running one (which can later resume on any processor),
//! * optional **admission control** (§6): each submission is evaluated
//!   against the candidate schedule and its slack before acceptance,
//! * yield accounting per Eq. 1 at the instant each task completes.
//!
//! The crate has two layers:
//!
//! * [`SiteState`] — an imperative core with explicit `submit` /
//!   `on_completion` transitions returning completion tokens. The market
//!   layer drives many of these inside one economy-wide event loop.
//! * [`Site`] — a self-contained wrapper that replays a whole
//!   [`mbts_workload::Trace`] through a discrete-event engine and
//!   returns [`SiteOutcome`] metrics.
//!
//! ```
//! use mbts_core::Policy;
//! use mbts_site::{Site, SiteConfig};
//! use mbts_workload::{generate_trace, MixConfig};
//!
//! let trace = generate_trace(
//!     &MixConfig::millennium_default().with_tasks(100).with_processors(4),
//!     1,
//! );
//! let outcome = Site::new(
//!     SiteConfig::new(4)
//!         .with_policy(Policy::FirstPrice)
//!         .with_preemption(true),
//! )
//! .run_trace(&trace);
//! assert_eq!(outcome.metrics.completed, 100);
//! assert!(outcome.delay_percentile(0.95) >= outcome.delay_percentile(0.5));
//! ```

pub mod analysis;
pub mod audit;
pub mod config;
pub mod gantt;
pub mod metrics;
pub mod state;

pub use analysis::{class_breakdown, ClassReport};
pub use audit::{AuditEvent, AuditKind, AuditViolation};
pub use config::{LostWorkPolicy, PreemptionMode, SiteConfig};
pub use gantt::{render_gantt, Segment};
pub use metrics::{Disposition, JobOutcome, SiteMetrics};
pub use state::{CompletionToken, SiteSnapshot, SiteState};

use mbts_core::{WorkflowReport, WorkflowRuntime};
use mbts_sim::{
    Engine, EventQueue, FaultConfig, FaultInjector, FaultInjectorState, FaultUnit, Model, Time,
};
use mbts_trace::{TraceKind, Tracer};
use mbts_workload::{TaskId, TaskSpec, Trace, WorkflowSet};
use serde::{Deserialize, Serialize};

/// A single-site simulator: replays a trace and reports metrics.
pub struct Site {
    config: SiteConfig,
}

/// Result of replaying a trace through a [`Site`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteOutcome {
    /// Aggregate counters and yield statistics.
    pub metrics: SiteMetrics,
    /// Per-job outcomes, sorted by task id.
    pub outcomes: Vec<JobOutcome>,
    /// Execution segments (empty unless
    /// [`SiteConfig::with_record_segments`] was enabled), sorted by start.
    pub segments: Vec<Segment>,
    /// Structured audit trail (empty unless [`SiteConfig::with_audit`]
    /// was enabled), in event order.
    pub audit: Vec<AuditEvent>,
    /// Conservation-audit failures recorded by the always-on auditor
    /// (release builds record; debug builds panic at the first failure,
    /// so this is always empty there). An honest run has none.
    pub violations: Vec<AuditViolation>,
}

impl SiteOutcome {
    /// The `q`-quantile (0 ≤ q ≤ 1) of completed tasks' delays, by
    /// nearest-rank over the per-job records. `NaN` with no completions.
    pub fn delay_percentile(&self, q: f64) -> f64 {
        percentile(
            self.outcomes
                .iter()
                .filter(|o| o.disposition == metrics::Disposition::Completed)
                .map(|o| o.delay),
            q,
        )
    }

    /// The `q`-quantile of per-task earnings over completed + dropped
    /// tasks. `NaN` when nothing finished.
    pub fn earned_percentile(&self, q: f64) -> f64 {
        percentile(
            self.outcomes
                .iter()
                .filter(|o| {
                    matches!(
                        o.disposition,
                        metrics::Disposition::Completed | metrics::Disposition::Dropped
                    )
                })
                .map(|o| o.earned),
            q,
        )
    }
}

/// Nearest-rank percentile over an iterator of samples.
fn percentile(values: impl Iterator<Item = f64>, q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    let mut v: Vec<f64> = values.collect();
    if v.is_empty() {
        return f64::NAN;
    }
    v.sort_by(|a, b| a.total_cmp(b));
    let rank = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len());
    v[rank - 1]
}

/// Fault-injection parameters for a single-site trace replay.
///
/// The site treats a site-level fault as a full-capacity crash (the queue
/// survives locally — only the multi-site market layer re-bids a dead
/// site's queue elsewhere). `max_crashes` bounds the total number of
/// crash events scheduled, so a pathological MTTF distribution cannot
/// livelock the run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// What fails and how often.
    pub faults: FaultConfig,
    /// Seed for the injector's independent per-unit streams.
    pub seed: u64,
    /// Upper bound on crash events across the whole run.
    pub max_crashes: u64,
}

impl FaultPlan {
    /// A plan with the default crash budget (10 000 events).
    pub fn new(faults: FaultConfig, seed: u64) -> Self {
        FaultPlan {
            faults,
            seed,
            max_crashes: 10_000,
        }
    }
}

impl Site {
    /// A site with the given configuration.
    pub fn new(config: SiteConfig) -> Self {
        Site { config }
    }

    /// Runs `trace` to completion (all accepted tasks finished) and
    /// returns the outcome.
    pub fn run_trace(&self, trace: &Trace) -> SiteOutcome {
        self.run_trace_traced(trace, Tracer::Off).0
    }

    /// Like [`run_trace`](Self::run_trace) but with a structured-event
    /// [`Tracer`] installed for the whole replay; returns the outcome
    /// together with the tracer (holding whatever its sink captured).
    /// Tracing is observational only: the outcome is bit-identical to an
    /// untraced replay.
    pub fn run_trace_traced(&self, trace: &Trace, tracer: Tracer) -> (SiteOutcome, Tracer) {
        let mut run = SiteRun::new(self.config.clone(), trace, tracer);
        run.run_to_completion();
        run.finish()
    }

    /// Like [`run_trace`](Self::run_trace) but with crash/repair events
    /// injected per `plan`. With `plan.faults` empty this is
    /// byte-for-byte identical to `run_trace` (the equivalence tests
    /// hold this invariant): no injector RNG is drawn and no fault
    /// events enter the queue.
    pub fn run_trace_with_faults(&self, trace: &Trace, plan: &FaultPlan) -> SiteOutcome {
        self.run_trace_with_faults_traced(trace, plan, Tracer::Off)
            .0
    }

    /// Replays a seeded workflow set to completion: roots arrive at
    /// their workflow's arrival instant, successors release as
    /// predecessors complete. Returns the ordinary per-task outcome plus
    /// the workflow-level settlement report.
    pub fn run_workflows(&self, set: &WorkflowSet) -> (SiteOutcome, WorkflowReport) {
        let (outcome, report, _) = self.run_workflows_traced(set, Tracer::Off);
        (outcome, report)
    }

    /// Like [`run_workflows`](Self::run_workflows) with a tracer
    /// installed; workflow release/settle/strand events appear in the
    /// stream alongside the per-task lifecycle.
    pub fn run_workflows_traced(
        &self,
        set: &WorkflowSet,
        tracer: Tracer,
    ) -> (SiteOutcome, WorkflowReport, Tracer) {
        let mut run = SiteRun::with_workflows(self.config.clone(), set, tracer);
        run.run_to_completion();
        let report = run.workflow_report().expect("workflow run has a report");
        let (outcome, tracer) = run.finish();
        (outcome, report, tracer)
    }

    /// Fault-injected replay with a structured-event [`Tracer`]
    /// installed (see [`run_trace_traced`](Self::run_trace_traced)).
    pub fn run_trace_with_faults_traced(
        &self,
        trace: &Trace,
        plan: &FaultPlan,
        tracer: Tracer,
    ) -> (SiteOutcome, Tracer) {
        let mut run = SiteRun::with_faults(self.config.clone(), trace, plan, tracer);
        run.run_to_completion();
        run.finish()
    }
}

/// The event alphabet of a single-site trace replay. Public (and
/// serializable) so the durable-recovery layer can journal every applied
/// event and replay the suffix after a crash.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SimEvent {
    /// Task `i` of the trace arrives.
    Arrival(usize),
    /// Workflow task `i` of the trace had its last predecessor complete
    /// and is released into the admission path. Journaled as a
    /// first-class event so a crash between a predecessor's completion
    /// and its successors' release recovers bit-identically.
    Release(usize),
    /// A running segment finishes (stale tokens are ignored).
    Completion(CompletionToken),
    /// A fault unit goes down.
    Crash(FaultUnit),
    /// The unit comes back, restoring the `n` processors its crash took.
    Repair {
        /// Which unit recovered.
        unit: FaultUnit,
        /// Processors the crash actually took (what the repair restores).
        n: usize,
    },
}

struct TraceModel {
    state: SiteState,
    trace: Vec<mbts_workload::TaskSpec>,
    /// Arrivals not yet delivered — lets fault handling detect the end
    /// of the workload and stop scheduling crashes once the site is
    /// quiescent (otherwise an injector would tick forever). In workflow
    /// mode this counts *all* member tasks: releases and strandings
    /// decrement it alongside root arrivals.
    arrivals_left: usize,
    injector: Option<FaultInjector>,
    crash_budget: u64,
    /// The workflow overlay: releases successors as predecessors
    /// complete and settles workflow-level yield. `None` for plain task
    /// traces — every hook below is then a never-taken branch.
    workflows: Option<WorkflowRuntime>,
    /// Outcome records already fed to the workflow overlay.
    outcome_cursor: usize,
}

impl TraceModel {
    fn drained(&self) -> bool {
        self.arrivals_left == 0 && self.state.is_quiescent()
    }

    /// Feeds outcome records the last transition produced into the
    /// workflow runtime: completions release successors (scheduled as
    /// [`SimEvent::Release`] at `now`), failures strand waiting
    /// descendants, and a workflow's last member settles its
    /// end-to-end yield.
    fn advance_workflows(&mut self, now: Time, queue: &mut EventQueue<SimEvent>) {
        if self.workflows.is_none() {
            return;
        }
        while self.outcome_cursor < self.state.outcomes().len() {
            let out = self.state.outcomes()[self.outcome_cursor];
            self.outcome_cursor += 1;
            let wf = self.workflows.as_mut().expect("workflow mode");
            let progress = match out.disposition {
                Disposition::Completed => wf.on_complete(out.id.0, now),
                // Stranded outcomes are recorded by this very scan; the
                // runtime accounted them inside on_failure already.
                Disposition::Stranded => continue,
                _ => wf.on_failure(out.id.0, now),
            };
            for &r in &progress.released {
                let i = r as usize;
                debug_assert_eq!(self.trace[i].id.0, r, "workflow traces are dense");
                self.state.trace_workflow(
                    now,
                    Some(TaskId(r)),
                    TraceKind::WorkflowReleased {
                        workflow: wf_of(self.workflows.as_ref(), r),
                    },
                );
                queue.schedule(now, SimEvent::Release(i));
            }
            for &s in &progress.stranded {
                self.arrivals_left -= 1;
                let workflow = wf_of(self.workflows.as_ref(), s);
                self.state.note_stranded(now, TaskId(s));
                self.state.trace_workflow(
                    now,
                    Some(TaskId(s)),
                    TraceKind::WorkflowStranded { workflow },
                );
            }
            if let Some(s) = progress.settlement {
                self.state.trace_workflow(
                    now,
                    None,
                    TraceKind::WorkflowSettled {
                        workflow: s.workflow,
                        earned: s.earned,
                        attribution: s.attribution.clone(),
                    },
                );
            }
        }
    }
}

/// Owning workflow id of task `t` (workflow mode only).
fn wf_of(workflows: Option<&WorkflowRuntime>, t: u64) -> u64 {
    let set = workflows.expect("workflow mode").set();
    set.workflow_of(t as usize)
        .map(|w| set.workflows[w].id)
        .expect("workflow task has an owner")
}

impl Model for TraceModel {
    type Event = SimEvent;

    fn handle(&mut self, now: Time, event: SimEvent, queue: &mut EventQueue<SimEvent>) {
        let tokens = match event {
            SimEvent::Arrival(i) | SimEvent::Release(i) => {
                self.arrivals_left -= 1;
                self.state.submit(now, self.trace[i]).1
            }
            SimEvent::Completion(tok) => self.state.on_completion(now, tok),
            SimEvent::Crash(unit) => {
                if self.drained() {
                    return; // nothing left to disturb; let the run end
                }
                let want = match unit {
                    FaultUnit::Site { .. } => self.state.capacity(),
                    FaultUnit::Processor { .. } => 1,
                };
                let killed = self.state.crash(want, now);
                let injector = self.injector.as_mut().expect("crash without injector");
                let down = injector.downtime(unit).expect("unit must be configured");
                queue.schedule(now + down, SimEvent::Repair { unit, n: killed });
                Vec::new()
            }
            SimEvent::Repair { unit, n } => {
                let tokens = self.state.repair(n, now);
                // Schedule the unit's next failure unless the workload is
                // over or the crash budget is spent.
                if self.crash_budget > 0 && !self.drained() {
                    let injector = self.injector.as_mut().expect("repair without injector");
                    if let Some(up) = injector.uptime(unit) {
                        self.crash_budget -= 1;
                        queue.schedule(now + up, SimEvent::Crash(unit));
                    }
                }
                tokens
            }
        };
        // Workflow releases are scheduled before this event's spawned
        // completion tokens — the same seq convention the sharded
        // market's merge-replay follows.
        self.advance_workflows(now, queue);
        for tok in tokens {
            queue.schedule(tok.at, SimEvent::Completion(tok));
        }
    }
}

/// A single-site trace replay as an explicit, steppable object: the
/// engine loop of [`Site::run_trace`] with the crank exposed.
///
/// The durable-recovery layer drives one event at a time via
/// [`step`](Self::step), journaling each applied event, and checkpoints
/// the whole run via [`snapshot`](Self::snapshot) — restoring from the
/// snapshot and replaying the same events is bit-identical to never
/// having stopped.
pub struct SiteRun {
    engine: Engine<TraceModel>,
}

impl SiteRun {
    /// A fault-free replay of `trace`, ready to step. All arrivals are
    /// pre-scheduled; the first [`step`](Self::step) handles the
    /// earliest one.
    pub fn new(config: SiteConfig, trace: &Trace, tracer: Tracer) -> Self {
        let mut state = SiteState::new(config);
        state.set_tracer(tracer);
        let model = TraceModel {
            state,
            trace: trace.tasks.clone(),
            arrivals_left: trace.tasks.len(),
            injector: None,
            crash_budget: 0,
            workflows: None,
            outcome_cursor: 0,
        };
        let mut engine = Engine::new(model);
        for (i, spec) in trace.tasks.iter().enumerate() {
            engine.schedule(spec.arrival, SimEvent::Arrival(i));
        }
        SiteRun { engine }
    }

    /// A workflow replay: only root tasks are pre-scheduled as arrivals;
    /// every other member enters the admission path via a
    /// [`SimEvent::Release`] once its last predecessor completes. The
    /// workflow-level settlement overlay (release/settle/strand trace
    /// events, [`WorkflowReport`]) rides on top of the ordinary per-task
    /// accounting.
    pub fn with_workflows(config: SiteConfig, set: &WorkflowSet, tracer: Tracer) -> Self {
        Self::with_workflows_and_faults(config, set, None, tracer)
    }

    /// A fault-injected workflow replay (crash evictions requeue work —
    /// they do not fail workflows; only terminal task failures strand
    /// successors). With `plan = None` this is [`with_workflows`](Self::with_workflows).
    pub fn with_workflows_and_faults(
        config: SiteConfig,
        set: &WorkflowSet,
        plan: Option<&FaultPlan>,
        tracer: Tracer,
    ) -> Self {
        let trace = set.trace();
        let runtime = WorkflowRuntime::new(set.clone());
        let roots = runtime.roots();
        let mut injector = None;
        let mut crash_budget = 0;
        let mut initial = Vec::new();
        if let Some(plan) = plan {
            if !plan.faults.is_none() {
                let mut inj =
                    FaultInjector::new(plan.faults.clone(), plan.seed, &[config.processors]);
                crash_budget = plan.max_crashes;
                for unit in inj.units() {
                    if crash_budget == 0 {
                        break;
                    }
                    if let Some(up) = inj.uptime(unit) {
                        crash_budget -= 1;
                        initial.push((Time::ZERO + up, unit));
                    }
                }
                injector = Some(inj);
            }
        }
        let mut state = SiteState::new(config);
        state.set_tracer(tracer);
        let model = TraceModel {
            state,
            trace: trace.tasks.clone(),
            arrivals_left: trace.tasks.len(),
            injector,
            crash_budget,
            workflows: Some(runtime),
            outcome_cursor: 0,
        };
        let mut engine = Engine::new(model);
        for i in roots {
            engine.schedule(trace.tasks[i].arrival, SimEvent::Arrival(i));
        }
        for (at, unit) in initial {
            engine.schedule(at, SimEvent::Crash(unit));
        }
        SiteRun { engine }
    }

    /// A fault-injected replay (see [`Site::run_trace_with_faults`]).
    /// With `plan.faults` empty this degenerates to [`new`](Self::new):
    /// no injector RNG is drawn and no fault events enter the queue.
    pub fn with_faults(
        config: SiteConfig,
        trace: &Trace,
        plan: &FaultPlan,
        tracer: Tracer,
    ) -> Self {
        if plan.faults.is_none() {
            return SiteRun::new(config, trace, tracer);
        }
        let mut injector = FaultInjector::new(plan.faults.clone(), plan.seed, &[config.processors]);
        let mut crash_budget = plan.max_crashes;
        // First crash per unit: drawn up front so the timeline of each
        // unit is independent of event interleaving.
        let mut initial = Vec::new();
        for unit in injector.units() {
            if crash_budget == 0 {
                break;
            }
            if let Some(up) = injector.uptime(unit) {
                crash_budget -= 1;
                initial.push((Time::ZERO + up, unit));
            }
        }
        let mut state = SiteState::new(config);
        state.set_tracer(tracer);
        let model = TraceModel {
            state,
            trace: trace.tasks.clone(),
            arrivals_left: trace.tasks.len(),
            injector: Some(injector),
            crash_budget,
            workflows: None,
            outcome_cursor: 0,
        };
        let mut engine = Engine::new(model);
        for (i, spec) in trace.tasks.iter().enumerate() {
            engine.schedule(spec.arrival, SimEvent::Arrival(i));
        }
        for (at, unit) in initial {
            engine.schedule(at, SimEvent::Crash(unit));
        }
        SiteRun { engine }
    }

    /// Handles one event; `false` when the queue has drained.
    pub fn step(&mut self) -> bool {
        self.engine.step()
    }

    /// Runs until no events remain.
    pub fn run_to_completion(&mut self) {
        self.engine.run_to_completion();
    }

    /// `true` once the event queue has drained.
    pub fn is_done(&self) -> bool {
        self.engine.queue().is_empty()
    }

    /// Events handled so far (the journal's event index).
    pub fn events_handled(&self) -> u64 {
        self.engine.events_handled()
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.engine.now()
    }

    /// The next event to be handled, if any.
    pub fn next_event(&self) -> Option<(Time, &SimEvent)> {
        self.engine.queue().peek()
    }

    /// Read access to the underlying site (auditors, metrics).
    pub fn state(&self) -> &SiteState {
        &self.engine.model().state
    }

    /// The workflow overlay's aggregate report (settlements so far);
    /// `None` for plain task replays.
    pub fn workflow_report(&self) -> Option<WorkflowReport> {
        self.engine.model().workflows.as_ref().map(|w| w.report())
    }

    /// Captures the full replay state at the current event boundary.
    pub fn snapshot(&self) -> SiteRunSnapshot {
        let model = self.engine.model();
        SiteRunSnapshot {
            site: model.state.snapshot(),
            trace: model.trace.clone(),
            arrivals_left: model.arrivals_left,
            injector: model.injector.as_ref().map(|i| i.state()),
            crash_budget: model.crash_budget,
            workflows: model.workflows.clone(),
            outcome_cursor: model.outcome_cursor,
            queue: self.engine.queue().snapshot_entries(),
            next_seq: self.engine.queue().next_seq(),
            now: self.engine.now(),
            handled: self.engine.events_handled(),
        }
    }

    /// Rebuilds a run from a [`snapshot`](Self::snapshot); stepping it
    /// replays exactly the uninterrupted run's remaining events.
    pub fn from_snapshot(snap: SiteRunSnapshot) -> Self {
        let model = TraceModel {
            state: SiteState::from_snapshot(snap.site),
            trace: snap.trace,
            arrivals_left: snap.arrivals_left,
            injector: snap.injector.map(FaultInjector::from_state),
            crash_budget: snap.crash_budget,
            workflows: snap.workflows,
            outcome_cursor: snap.outcome_cursor,
        };
        let queue = EventQueue::restore(snap.queue, snap.next_seq);
        SiteRun {
            engine: Engine::from_parts(model, queue, snap.now, snap.handled),
        }
    }

    /// Consumes the (finished) run, producing the outcome and the tracer.
    pub fn finish(self) -> (SiteOutcome, Tracer) {
        let mut state = self.engine.into_model().state;
        debug_assert!(
            state.is_quiescent(),
            "site still busy after event queue drained"
        );
        let tracer = state.take_tracer();
        (state.into_outcome(), tracer)
    }
}

/// Serializable image of a whole [`SiteRun`] at an event boundary:
/// site state + workload cursor + fault-injector RNG streams + the
/// pending event queue with its sequence numbers (FIFO tie-breaks
/// replay verbatim).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteRunSnapshot {
    /// The site.
    pub site: SiteSnapshot,
    /// The workload (arrival events index into it).
    pub trace: Vec<TaskSpec>,
    /// Arrivals not yet delivered.
    pub arrivals_left: usize,
    /// Fault-injector RNG streams, if faults are active.
    pub injector: Option<FaultInjectorState>,
    /// Crash events still permitted.
    pub crash_budget: u64,
    /// Workflow overlay state, when the run is a workflow replay.
    /// Absent from pre-workflow snapshots (and from serialized plain
    /// runs), which keep deserializing unchanged.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub workflows: Option<WorkflowRuntime>,
    /// Outcome records already fed to the workflow overlay.
    #[serde(default)]
    pub outcome_cursor: usize,
    /// Pending events as `(time, seq, event)`.
    pub queue: Vec<(Time, u64, SimEvent)>,
    /// The queue's next sequence number.
    pub next_seq: u64,
    /// Simulation clock.
    pub now: Time,
    /// Events handled so far.
    pub handled: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbts_core::Policy;
    use mbts_workload::{generate_trace, MixConfig};

    #[test]
    fn trace_replay_completes_everything_under_accept_all() {
        let mix = MixConfig::millennium_default()
            .with_tasks(400)
            .with_processors(4);
        let trace = generate_trace(&mix, 3);
        let outcome =
            Site::new(SiteConfig::new(4).with_policy(Policy::FirstPrice)).run_trace(&trace);
        assert_eq!(outcome.metrics.submitted, 400);
        assert_eq!(outcome.metrics.accepted, 400);
        assert_eq!(outcome.metrics.completed, 400);
        assert_eq!(outcome.metrics.rejected, 0);
        assert_eq!(outcome.outcomes.len(), 400);
    }

    #[test]
    fn percentiles_are_monotone_and_bracket_the_mean() {
        let mix = MixConfig::millennium_default()
            .with_tasks(400)
            .with_processors(4)
            .with_load_factor(2.0);
        let trace = generate_trace(&mix, 8);
        let outcome =
            Site::new(SiteConfig::new(4).with_policy(Policy::FirstPrice)).run_trace(&trace);
        let p50 = outcome.delay_percentile(0.5);
        let p95 = outcome.delay_percentile(0.95);
        let p99 = outcome.delay_percentile(0.99);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(outcome.delay_percentile(0.0) <= p50);
        assert!(p99 <= outcome.delay_percentile(1.0));
        // Earnings percentiles stay within the value-function range.
        let e10 = outcome.earned_percentile(0.1);
        let e90 = outcome.earned_percentile(0.9);
        assert!(e10 <= e90);
    }

    #[test]
    fn percentiles_of_empty_outcome_are_nan() {
        let outcome = SiteOutcome {
            metrics: SiteMetrics::default(),
            outcomes: vec![],
            segments: vec![],
            audit: vec![],
            violations: vec![],
        };
        assert!(outcome.delay_percentile(0.5).is_nan());
        assert!(outcome.earned_percentile(0.5).is_nan());
    }

    #[test]
    fn traced_replay_captures_the_full_lifecycle() {
        use mbts_trace::{TraceKind, Tracer};
        let mix = MixConfig::millennium_default()
            .with_tasks(120)
            .with_processors(4)
            .with_load_factor(1.5);
        let trace = generate_trace(&mix, 21);
        let site = Site::new(
            SiteConfig::new(4)
                .with_policy(Policy::first_reward(0.3, 0.01))
                .with_preemption(true),
        );
        let (outcome, tracer) = site.run_trace_traced(&trace, Tracer::buffer());
        let events = tracer.into_events().unwrap();
        let arrived = events
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::TaskArrived { .. }))
            .count();
        let completed = events
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Completed { .. }))
            .count();
        let scheduled = events
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Scheduled { .. }))
            .count();
        assert_eq!(arrived as u64, outcome.metrics.submitted as u64);
        assert_eq!(completed as u64, outcome.metrics.completed as u64);
        assert!(
            scheduled >= completed,
            "every completion was preceded by at least one start"
        );
        // Events arrive in nondecreasing time order.
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn zero_fault_plan_is_identical_to_plain_replay() {
        let mix = MixConfig::millennium_default()
            .with_tasks(200)
            .with_processors(4)
            .with_load_factor(1.5);
        let trace = generate_trace(&mix, 11);
        let site = Site::new(SiteConfig::new(4).with_policy(Policy::FirstPrice));
        let plain = site.run_trace(&trace);
        let faulted =
            site.run_trace_with_faults(&trace, &FaultPlan::new(mbts_sim::FaultConfig::none(), 7));
        assert_eq!(plain.outcomes, faulted.outcomes);
        assert_eq!(plain.metrics.total_yield, faulted.metrics.total_yield);
    }

    #[test]
    fn faulty_replay_completes_with_a_clean_audit() {
        let mix = MixConfig::millennium_default()
            .with_tasks(300)
            .with_processors(8)
            .with_load_factor(1.5);
        let trace = generate_trace(&mix, 12);
        let site = Site::new(SiteConfig::new(8).with_policy(Policy::FirstPrice));
        let faults = mbts_sim::FaultConfig {
            processor: Some(mbts_sim::UpDown::exponential(5_000.0, 200.0)),
            site: None,
        };
        let outcome = site.run_trace_with_faults(&trace, &FaultPlan::new(faults, 99));
        // Every accepted task still finishes (restart semantics requeue
        // evicted work until it completes).
        assert_eq!(
            outcome.metrics.completed + outcome.metrics.dropped,
            outcome.metrics.accepted
        );
        assert!(outcome.metrics.crashed_procs > 0, "faults actually fired");
        assert_eq!(
            outcome.metrics.crashed_procs, outcome.metrics.repaired_procs,
            "every crash was repaired before the run ended"
        );
        assert!(outcome.violations.is_empty());
    }

    #[test]
    fn snapshot_midway_resumes_bit_identically() {
        // Checkpoint a (traced, faulted, preempting) run at assorted
        // event boundaries, JSON-roundtrip the snapshot, resume, and
        // demand the outcome and trace stream match the uninterrupted
        // run exactly.
        let mix = MixConfig::millennium_default()
            .with_tasks(150)
            .with_processors(4)
            .with_load_factor(1.8);
        let trace = generate_trace(&mix, 17);
        let config = SiteConfig::new(4)
            .with_policy(Policy::first_reward(0.3, 0.01))
            .with_preemption(true)
            .with_lost_work(LostWorkPolicy::Checkpoint {
                interval: 25.0,
                restart_penalty: 2.0,
            });
        let plan = FaultPlan::new(
            mbts_sim::FaultConfig {
                processor: Some(mbts_sim::UpDown::exponential(2_000.0, 100.0)),
                site: None,
            },
            5,
        );
        let mut base = SiteRun::with_faults(config.clone(), &trace, &plan, Tracer::buffer());
        base.run_to_completion();
        let total = base.events_handled();
        let (expect_outcome, expect_tracer) = base.finish();
        let expect_events = expect_tracer.into_events().unwrap();
        for k in [0, 1, 7, total / 2, total - 1, total] {
            let mut run = SiteRun::with_faults(config.clone(), &trace, &plan, Tracer::buffer());
            for _ in 0..k {
                assert!(run.step());
            }
            let json = serde_json::to_string(&run.snapshot()).unwrap();
            let snap: SiteRunSnapshot = serde_json::from_str(&json).unwrap();
            let mut resumed = SiteRun::from_snapshot(snap);
            assert_eq!(resumed.events_handled(), k);
            resumed.run_to_completion();
            assert_eq!(resumed.events_handled(), total);
            let (outcome, tracer) = resumed.finish();
            assert_eq!(outcome, expect_outcome, "kill point {k}");
            assert_eq!(
                tracer.into_events().unwrap(),
                expect_events,
                "kill point {k}"
            );
        }
    }

    #[test]
    fn workflow_replay_completes_and_settles_every_workflow() {
        use mbts_workload::{generate_workflows, WorkflowConfig, WorkflowShape};
        let set = generate_workflows(
            &WorkflowConfig::default_set()
                .with_workflows(6)
                .with_shape(WorkflowShape::ForkJoin { width: 3 }),
            42,
        );
        let config = SiteConfig::new(4)
            .with_policy(Policy::FirstPrice)
            .with_workflow_facets(set.facets());
        let (outcome, report) = Site::new(config).run_workflows(&set);
        assert_eq!(outcome.metrics.completed, set.tasks.len());
        assert_eq!(report.workflows, 6);
        assert_eq!(report.settled, 6);
        assert_eq!(report.failed, 0);
        assert!(outcome.violations.is_empty());
        for s in &report.settlements {
            let attributed: f64 = s.attribution.iter().map(|(_, v)| v).sum();
            assert_eq!(attributed.to_bits(), s.earned.to_bits());
        }
    }

    #[test]
    fn workflow_release_order_respects_dependencies() {
        use mbts_trace::TraceKind;
        use mbts_workload::{generate_workflows, WorkflowConfig, WorkflowShape};
        let set = generate_workflows(
            &WorkflowConfig::default_set()
                .with_workflows(4)
                .with_shape(WorkflowShape::Pipeline { depth: 4 }),
            9,
        );
        let config = SiteConfig::new(2).with_policy(Policy::first_reward(0.3, 0.01));
        let (_, report, tracer) = Site::new(config).run_workflows_traced(&set, Tracer::buffer());
        assert_eq!(report.settled, 4);
        let events = tracer.into_events().unwrap();
        // Every non-root task's arrival is preceded by its release,
        // which is preceded by each predecessor's completion.
        for (p, s) in set.edge_ids() {
            let done = events
                .iter()
                .position(|e| {
                    e.task == Some(mbts_workload::TaskId(p))
                        && matches!(e.kind, TraceKind::Completed { .. })
                })
                .expect("predecessor completed");
            let released = events
                .iter()
                .position(|e| {
                    e.task == Some(mbts_workload::TaskId(s))
                        && matches!(e.kind, TraceKind::WorkflowReleased { .. })
                })
                .expect("successor released");
            assert!(done < released, "edge {p}->{s}");
        }
        let settles = events
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::WorkflowSettled { .. }))
            .count();
        assert_eq!(settles, 4);
    }

    #[test]
    fn workflow_snapshot_midway_resumes_bit_identically() {
        use mbts_workload::{generate_workflows, WorkflowConfig, WorkflowShape};
        let set = generate_workflows(
            &WorkflowConfig::default_set().with_workflows(5).with_shape(
                WorkflowShape::RandomLayered {
                    layers: 3,
                    width: 2,
                    edge_prob: 0.5,
                },
            ),
            11,
        );
        let config = SiteConfig::new(3)
            .with_policy(Policy::first_reward(0.3, 0.01))
            .with_workflow_facets(set.facets());
        let mut base = SiteRun::with_workflows(config.clone(), &set, Tracer::buffer());
        base.run_to_completion();
        let total = base.events_handled();
        let expect_report = base.workflow_report().unwrap();
        let (expect_outcome, expect_tracer) = base.finish();
        let expect_events = expect_tracer.into_events().unwrap();
        for k in [0, 1, total / 3, total / 2, total - 1, total] {
            let mut run = SiteRun::with_workflows(config.clone(), &set, Tracer::buffer());
            for _ in 0..k {
                assert!(run.step());
            }
            let json = serde_json::to_string(&run.snapshot()).unwrap();
            let snap: SiteRunSnapshot = serde_json::from_str(&json).unwrap();
            let mut resumed = SiteRun::from_snapshot(snap);
            resumed.run_to_completion();
            assert_eq!(
                resumed.workflow_report().unwrap(),
                expect_report,
                "kill {k}"
            );
            let (outcome, tracer) = resumed.finish();
            assert_eq!(outcome, expect_outcome, "kill point {k}");
            assert_eq!(
                tracer.into_events().unwrap(),
                expect_events,
                "kill point {k}"
            );
        }
    }

    #[test]
    fn workflow_member_failure_strands_descendants() {
        use mbts_workload::{generate_workflows, WorkflowConfig, WorkflowShape};
        // An admission threshold so hostile that released members get
        // rejected: the workflow must settle failed with zero earned and
        // its waiting descendants must be stranded, not left hanging.
        let set = generate_workflows(
            &WorkflowConfig::default_set()
                .with_workflows(3)
                .with_shape(WorkflowShape::Pipeline { depth: 3 }),
            5,
        );
        let config = SiteConfig::new(2)
            .with_policy(Policy::FirstPrice)
            .with_admission(mbts_core::AdmissionPolicy::SlackThreshold {
                threshold: f64::INFINITY,
            })
            .with_workflow_facets(set.facets());
        let (outcome, report) = Site::new(config).run_workflows(&set);
        assert_eq!(report.settled, 3);
        assert_eq!(report.failed, 3);
        assert_eq!(report.total_earned, 0.0);
        // Roots rejected, the rest stranded; nothing ran.
        assert_eq!(outcome.metrics.completed, 0);
        assert_eq!(outcome.metrics.rejected, 3);
        assert_eq!(outcome.metrics.stranded, set.tasks.len() - 3);
        assert_eq!(outcome.outcomes.len(), set.tasks.len());
        assert!(outcome.violations.is_empty());
    }

    #[test]
    fn faulty_replays_are_reproducible() {
        let mix = MixConfig::millennium_default()
            .with_tasks(150)
            .with_processors(4);
        let trace = generate_trace(&mix, 13);
        let site = Site::new(SiteConfig::new(4).with_policy(Policy::pv(0.01)));
        let faults = mbts_sim::FaultConfig {
            processor: Some(mbts_sim::UpDown::exponential(2_000.0, 100.0)),
            site: Some(mbts_sim::UpDown::exponential(50_000.0, 500.0)),
        };
        let a = site.run_trace_with_faults(&trace, &FaultPlan::new(faults.clone(), 5));
        let b = site.run_trace_with_faults(&trace, &FaultPlan::new(faults, 5));
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.metrics.crashed_procs, b.metrics.crashed_procs);
    }
}
