//! # mbts-site — an event-driven task-service site
//!
//! Executes a stream of submitted tasks on a pool of interchangeable
//! processors under the paper's model (§4):
//!
//! * gang-of-one tasks, zero context-switch cost,
//! * a value-based [`Policy`](mbts_core::Policy) selects which queued task
//!   runs at each dispatch point,
//! * optional **preemption**: a newly arriving higher-priority task may
//!   suspend a running one (which can later resume on any processor),
//! * optional **admission control** (§6): each submission is evaluated
//!   against the candidate schedule and its slack before acceptance,
//! * yield accounting per Eq. 1 at the instant each task completes.
//!
//! The crate has two layers:
//!
//! * [`SiteState`] — an imperative core with explicit `submit` /
//!   `on_completion` transitions returning completion tokens. The market
//!   layer drives many of these inside one economy-wide event loop.
//! * [`Site`] — a self-contained wrapper that replays a whole
//!   [`mbts_workload::Trace`] through a discrete-event engine and
//!   returns [`SiteOutcome`] metrics.
//!
//! ```
//! use mbts_core::Policy;
//! use mbts_site::{Site, SiteConfig};
//! use mbts_workload::{generate_trace, MixConfig};
//!
//! let trace = generate_trace(
//!     &MixConfig::millennium_default().with_tasks(100).with_processors(4),
//!     1,
//! );
//! let outcome = Site::new(
//!     SiteConfig::new(4)
//!         .with_policy(Policy::FirstPrice)
//!         .with_preemption(true),
//! )
//! .run_trace(&trace);
//! assert_eq!(outcome.metrics.completed, 100);
//! assert!(outcome.delay_percentile(0.95) >= outcome.delay_percentile(0.5));
//! ```

pub mod analysis;
pub mod audit;
pub mod config;
pub mod gantt;
pub mod metrics;
pub mod state;

pub use analysis::{class_breakdown, ClassReport};
pub use audit::{AuditEvent, AuditKind};
pub use config::{PreemptionMode, SiteConfig};
pub use gantt::{render_gantt, Segment};
pub use metrics::{JobOutcome, SiteMetrics};
pub use state::{CompletionToken, SiteState};

use mbts_sim::{Engine, EventQueue, Model, Time};
use mbts_workload::Trace;

/// A single-site simulator: replays a trace and reports metrics.
pub struct Site {
    config: SiteConfig,
}

/// Result of replaying a trace through a [`Site`].
#[derive(Debug, Clone)]
pub struct SiteOutcome {
    /// Aggregate counters and yield statistics.
    pub metrics: SiteMetrics,
    /// Per-job outcomes, sorted by task id.
    pub outcomes: Vec<JobOutcome>,
    /// Execution segments (empty unless
    /// [`SiteConfig::with_record_segments`] was enabled), sorted by start.
    pub segments: Vec<Segment>,
    /// Structured audit trail (empty unless [`SiteConfig::with_audit`]
    /// was enabled), in event order.
    pub audit: Vec<AuditEvent>,
}

impl SiteOutcome {
    /// The `q`-quantile (0 ≤ q ≤ 1) of completed tasks' delays, by
    /// nearest-rank over the per-job records. `NaN` with no completions.
    pub fn delay_percentile(&self, q: f64) -> f64 {
        percentile(
            self.outcomes
                .iter()
                .filter(|o| o.disposition == metrics::Disposition::Completed)
                .map(|o| o.delay),
            q,
        )
    }

    /// The `q`-quantile of per-task earnings over completed + dropped
    /// tasks. `NaN` when nothing finished.
    pub fn earned_percentile(&self, q: f64) -> f64 {
        percentile(
            self.outcomes
                .iter()
                .filter(|o| {
                    matches!(
                        o.disposition,
                        metrics::Disposition::Completed | metrics::Disposition::Dropped
                    )
                })
                .map(|o| o.earned),
            q,
        )
    }
}

/// Nearest-rank percentile over an iterator of samples.
fn percentile(values: impl Iterator<Item = f64>, q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    let mut v: Vec<f64> = values.collect();
    if v.is_empty() {
        return f64::NAN;
    }
    v.sort_by(|a, b| a.total_cmp(b));
    let rank = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len());
    v[rank - 1]
}

impl Site {
    /// A site with the given configuration.
    pub fn new(config: SiteConfig) -> Self {
        Site { config }
    }

    /// Runs `trace` to completion (all accepted tasks finished) and
    /// returns the outcome.
    pub fn run_trace(&self, trace: &Trace) -> SiteOutcome {
        let model = TraceModel {
            state: SiteState::new(self.config.clone()),
            trace: trace.tasks.clone(),
        };
        let mut engine = Engine::new(model);
        for (i, spec) in trace.tasks.iter().enumerate() {
            engine.schedule(spec.arrival, TraceEvent::Arrival(i));
        }
        engine.run_to_completion();
        let state = engine.into_model().state;
        debug_assert!(
            state.is_quiescent(),
            "site still busy after event queue drained"
        );
        state.into_outcome()
    }
}

enum TraceEvent {
    Arrival(usize),
    Completion(CompletionToken),
}

struct TraceModel {
    state: SiteState,
    trace: Vec<mbts_workload::TaskSpec>,
}

impl Model for TraceModel {
    type Event = TraceEvent;

    fn handle(&mut self, now: Time, event: TraceEvent, queue: &mut EventQueue<TraceEvent>) {
        let tokens = match event {
            TraceEvent::Arrival(i) => self.state.submit(now, self.trace[i]).1,
            TraceEvent::Completion(tok) => self.state.on_completion(now, tok),
        };
        for tok in tokens {
            queue.schedule(tok.at, TraceEvent::Completion(tok));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbts_core::Policy;
    use mbts_workload::{generate_trace, MixConfig};

    #[test]
    fn trace_replay_completes_everything_under_accept_all() {
        let mix = MixConfig::millennium_default()
            .with_tasks(400)
            .with_processors(4);
        let trace = generate_trace(&mix, 3);
        let outcome =
            Site::new(SiteConfig::new(4).with_policy(Policy::FirstPrice)).run_trace(&trace);
        assert_eq!(outcome.metrics.submitted, 400);
        assert_eq!(outcome.metrics.accepted, 400);
        assert_eq!(outcome.metrics.completed, 400);
        assert_eq!(outcome.metrics.rejected, 0);
        assert_eq!(outcome.outcomes.len(), 400);
    }

    #[test]
    fn percentiles_are_monotone_and_bracket_the_mean() {
        let mix = MixConfig::millennium_default()
            .with_tasks(400)
            .with_processors(4)
            .with_load_factor(2.0);
        let trace = generate_trace(&mix, 8);
        let outcome =
            Site::new(SiteConfig::new(4).with_policy(Policy::FirstPrice)).run_trace(&trace);
        let p50 = outcome.delay_percentile(0.5);
        let p95 = outcome.delay_percentile(0.95);
        let p99 = outcome.delay_percentile(0.99);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(outcome.delay_percentile(0.0) <= p50);
        assert!(p99 <= outcome.delay_percentile(1.0));
        // Earnings percentiles stay within the value-function range.
        let e10 = outcome.earned_percentile(0.1);
        let e90 = outcome.earned_percentile(0.9);
        assert!(e10 <= e90);
    }

    #[test]
    fn percentiles_of_empty_outcome_are_nan() {
        let outcome = SiteOutcome {
            metrics: SiteMetrics::default(),
            outcomes: vec![],
            segments: vec![],
            audit: vec![],
        };
        assert!(outcome.delay_percentile(0.5).is_nan());
        assert!(outcome.earned_percentile(0.5).is_nan());
    }
}
