//! Execution-segment recording and ASCII Gantt rendering.
//!
//! With [`SiteConfig::with_record_segments`](crate::SiteConfig::with_record_segments)
//! enabled, the site records one [`Segment`] per contiguous run of each
//! task (preemption splits a task into several segments). The renderer
//! lays segments out into lanes (a greedy interval coloring — processors
//! are interchangeable, so lanes are equivalent to processors up to
//! relabeling) and draws a fixed-width ASCII chart, which the `gantt`
//! example uses to make preemption and backfilling visible.

use mbts_sim::Time;
use mbts_workload::TaskId;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One contiguous execution interval of a task on one gang of processors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// The task.
    pub id: TaskId,
    /// Gang width (the segment occupies this many lanes' worth of
    /// capacity; rendering shows it once with a width annotation).
    pub width: usize,
    /// Segment start.
    pub start: Time,
    /// Segment end (completion or preemption instant).
    pub end: Time,
    /// `true` if the segment ended in preemption rather than completion.
    pub preempted: bool,
}

/// Renders segments as an ASCII Gantt chart, `cols` characters wide.
/// Lanes are assigned greedily by start time; a segment of width `w`
/// consumes `w` lanes.
pub fn render_gantt(segments: &[Segment], cols: usize) -> String {
    if segments.is_empty() {
        return String::from("(no segments)\n");
    }
    let t0 = segments.iter().map(|s| s.start).min().unwrap();
    let t1 = segments.iter().map(|s| s.end).max().unwrap();
    let span = (t1 - t0).as_f64().max(1e-9);
    let col_of = |t: Time| -> usize {
        (((t - t0).as_f64() / span) * (cols.saturating_sub(1)) as f64).round() as usize
    };

    // Greedy lane assignment: earliest-starting segment first; each takes
    // the first `width` lanes that are free at its start.
    let mut order: Vec<usize> = (0..segments.len()).collect();
    order.sort_by(|&a, &b| {
        segments[a]
            .start
            .cmp(&segments[b].start)
            .then(segments[a].id.cmp(&segments[b].id))
    });
    let mut lane_busy_until: Vec<Time> = Vec::new();
    let mut placement: Vec<(usize, Vec<usize>)> = Vec::new(); // (segment, lanes)
    for &si in &order {
        let seg = &segments[si];
        let mut lanes = Vec::with_capacity(seg.width);
        for (li, busy) in lane_busy_until.iter().enumerate() {
            if lanes.len() == seg.width {
                break;
            }
            if *busy <= seg.start {
                lanes.push(li);
            }
        }
        while lanes.len() < seg.width {
            lane_busy_until.push(Time::ZERO);
            lanes.push(lane_busy_until.len() - 1);
        }
        for &li in &lanes {
            lane_busy_until[li] = seg.end;
        }
        placement.push((si, lanes));
    }

    let num_lanes = lane_busy_until.len();
    let mut grid = vec![vec![' '; cols]; num_lanes];
    for (si, lanes) in &placement {
        let seg = &segments[*si];
        let c0 = col_of(seg.start);
        let c1 = col_of(seg.end).max(c0);
        let glyph = glyph_for(seg.id);
        for &lane in lanes {
            for cell in grid[lane].iter_mut().take(c1.min(cols - 1) + 1).skip(c0) {
                *cell = glyph;
            }
            // Mark a preempted segment's end.
            if seg.preempted && c1 < cols {
                grid[lane][c1] = '>';
            }
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "t ∈ [{t0}, {t1}] — one row per lane (≈ processor)");
    for (li, row) in grid.iter().enumerate() {
        let _ = writeln!(out, "{li:>3} |{}|", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "legend: a–z0–9 = task id mod 36, '>' = preempted here");
    out
}

fn glyph_for(id: TaskId) -> char {
    const GLYPHS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
    GLYPHS[(id.0 % GLYPHS.len() as u64) as usize] as char
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(id: u64, width: usize, start: f64, end: f64, preempted: bool) -> Segment {
        Segment {
            id: TaskId(id),
            width,
            start: Time::from(start),
            end: Time::from(end),
            preempted,
        }
    }

    #[test]
    fn empty_render() {
        assert_eq!(render_gantt(&[], 40), "(no segments)\n");
    }

    #[test]
    fn non_overlapping_segments_share_a_lane() {
        let segs = vec![seg(0, 1, 0.0, 10.0, false), seg(1, 1, 10.0, 20.0, false)];
        let out = render_gantt(&segs, 40);
        // Exactly one lane row (plus header + legend).
        assert_eq!(out.lines().count(), 3);
        assert!(out.contains("  0 |"));
        assert!(out.contains('a'));
        assert!(out.contains('b'));
    }

    #[test]
    fn overlapping_segments_get_distinct_lanes() {
        let segs = vec![seg(0, 1, 0.0, 10.0, false), seg(1, 1, 5.0, 15.0, false)];
        let out = render_gantt(&segs, 40);
        assert_eq!(out.lines().count(), 4); // header + 2 lanes + legend
    }

    #[test]
    fn wide_segments_take_width_lanes() {
        let segs = vec![seg(0, 3, 0.0, 10.0, false)];
        let out = render_gantt(&segs, 40);
        assert_eq!(out.lines().count(), 5); // header + 3 lanes + legend
                                            // All three lanes show the same glyph.
        assert!(out.matches('a').count() >= 3);
    }

    #[test]
    fn preemption_marker_present() {
        let segs = vec![seg(0, 1, 0.0, 5.0, true), seg(0, 1, 8.0, 12.0, false)];
        let out = render_gantt(&segs, 40);
        assert!(out.contains('>'));
    }
}
