//! User-centric per-class analysis.
//!
//! The Millennium study this paper builds on (Chun & Culler, CCGrid 2002)
//! evaluates schedulers *per user class*: do high-value users actually get
//! better service, and at whose expense? This module reconstructs the
//! 20/80 value classes of §4.1 from a trace and breaks a site outcome
//! down per class.
//!
//! Class membership is recovered by thresholding unit value at the
//! geometric mean of the two class means (the generator's classes are
//! normal with cv ≈ 0.2 around means a skew-ratio apart, so the geometric
//! midpoint misclassifies a negligible tail for skews ≥ 2).

use crate::metrics::Disposition;
use crate::SiteOutcome;
use mbts_sim::OnlineStats;
use mbts_workload::Trace;
use serde::{Deserialize, Serialize};

/// Outcome summary for one value class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ClassReport {
    /// Class label (`"high-value"` / `"low-value"`).
    pub label: String,
    /// Tasks in the class.
    pub count: usize,
    /// Completed tasks.
    pub completed: usize,
    /// Rejected tasks.
    pub rejected: usize,
    /// Dropped (expired and shed) tasks.
    pub dropped: usize,
    /// Mean queueing delay over completed tasks.
    pub mean_delay: f64,
    /// Total yield earned by the class.
    pub total_earned: f64,
    /// Total maximum value the class offered.
    pub value_offered: f64,
    /// `total_earned / value_offered` — how much of the class's potential
    /// the scheduler captured.
    pub capture_ratio: f64,
}

/// Splits a site outcome into high-value-class and low-value-class
/// reports. Returns `(high, low)`.
pub fn class_breakdown(trace: &Trace, outcome: &SiteOutcome) -> (ClassReport, ClassReport) {
    let threshold = class_threshold(trace);
    let mut high = Accumulator::new("high-value");
    let mut low = Accumulator::new("low-value");
    for (spec, out) in trace.tasks.iter().zip(&outcome.outcomes) {
        debug_assert_eq!(spec.id, out.id);
        let acc = if spec.unit_value() >= threshold {
            &mut high
        } else {
            &mut low
        };
        acc.count += 1;
        acc.value_offered += spec.value;
        match out.disposition {
            Disposition::Completed => {
                acc.completed += 1;
                acc.delay.push(out.delay);
                acc.total_earned += out.earned;
            }
            Disposition::Rejected => acc.rejected += 1,
            Disposition::Dropped => {
                acc.dropped += 1;
                acc.total_earned += out.earned;
            }
            // Cancelled, orphaned, and stranded tasks earn nothing at the
            // site; breach penalties settle at the market layer and are
            // not class-attributable here.
            Disposition::Cancelled | Disposition::Orphaned | Disposition::Stranded => {}
        }
    }
    (high.finish(), low.finish())
}

/// The unit-value threshold separating the generator's two classes: the
/// geometric mean of the class means. With value skew 1 the classes
/// coincide; every task then lands in the high class (threshold equals
/// the common mean and the comparison is `>=`... up to sampling noise —
/// callers should not use the breakdown for skew-1 mixes).
pub fn class_threshold(trace: &Trace) -> f64 {
    let cfg = &trace.config;
    let p = cfg.p_high_value;
    let high_mean = cfg.mean_unit_value / (p + (1.0 - p) / cfg.value_skew);
    let low_mean = high_mean / cfg.value_skew;
    (high_mean * low_mean).sqrt()
}

struct Accumulator {
    label: &'static str,
    count: usize,
    completed: usize,
    rejected: usize,
    dropped: usize,
    delay: OnlineStats,
    total_earned: f64,
    value_offered: f64,
}

impl Accumulator {
    fn new(label: &'static str) -> Self {
        Accumulator {
            label,
            count: 0,
            completed: 0,
            rejected: 0,
            dropped: 0,
            delay: OnlineStats::new(),
            total_earned: 0.0,
            value_offered: 0.0,
        }
    }

    fn finish(self) -> ClassReport {
        ClassReport {
            label: self.label.to_string(),
            count: self.count,
            completed: self.completed,
            rejected: self.rejected,
            dropped: self.dropped,
            mean_delay: self.delay.mean(),
            total_earned: self.total_earned,
            value_offered: self.value_offered,
            capture_ratio: if self.value_offered > 0.0 {
                self.total_earned / self.value_offered
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Site, SiteConfig};
    use mbts_core::Policy;
    use mbts_workload::{generate_trace, BoundPolicy, MixConfig};

    fn mix() -> MixConfig {
        MixConfig::millennium_default()
            .with_tasks(600)
            .with_processors(4)
            .with_load_factor(2.0)
            .with_value_skew(4.0)
            .with_bound(BoundPolicy::ZeroFloor)
    }

    #[test]
    fn classes_partition_the_trace() {
        let trace = generate_trace(&mix(), 5);
        let outcome =
            Site::new(SiteConfig::new(4).with_policy(Policy::FirstPrice)).run_trace(&trace);
        let (high, low) = class_breakdown(&trace, &outcome);
        assert_eq!(high.count + low.count, 600);
        // 20/80 split within sampling noise.
        let frac = high.count as f64 / 600.0;
        assert!((0.1..0.3).contains(&frac), "high fraction {frac}");
        assert_eq!(high.completed + low.completed, outcome.metrics.completed);
        let total = high.total_earned + low.total_earned;
        assert!((total - outcome.metrics.total_yield).abs() < 1e-6);
    }

    #[test]
    fn value_aware_scheduling_favours_the_high_class() {
        let trace = generate_trace(&mix(), 6);
        let fp = Site::new(SiteConfig::new(4).with_policy(Policy::FirstPrice)).run_trace(&trace);
        let fcfs = Site::new(SiteConfig::new(4).with_policy(Policy::Fcfs)).run_trace(&trace);
        let (h_fp, _) = class_breakdown(&trace, &fp);
        let (h_fcfs, _) = class_breakdown(&trace, &fcfs);
        // FirstPrice prioritizes high-unit-value work: the high class
        // captures more of its potential and waits less than under FCFS.
        assert!(
            h_fp.capture_ratio > h_fcfs.capture_ratio,
            "FP {} vs FCFS {}",
            h_fp.capture_ratio,
            h_fcfs.capture_ratio
        );
        assert!(h_fp.mean_delay < h_fcfs.mean_delay);
    }

    #[test]
    fn high_class_gets_better_service_under_first_price() {
        let trace = generate_trace(&mix(), 7);
        let outcome =
            Site::new(SiteConfig::new(4).with_policy(Policy::FirstPrice)).run_trace(&trace);
        let (high, low) = class_breakdown(&trace, &outcome);
        assert!(high.mean_delay < low.mean_delay);
        assert!(high.capture_ratio > low.capture_ratio);
    }

    #[test]
    fn threshold_sits_between_class_means() {
        let trace = generate_trace(&mix(), 8);
        let t = class_threshold(&trace);
        let cfg = &trace.config;
        let high_mean = cfg.mean_unit_value / (0.2 + 0.8 / 4.0);
        let low_mean = high_mean / 4.0;
        assert!(t > low_mean && t < high_mean);
    }
}
