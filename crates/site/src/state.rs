//! The imperative site core: queueing, dispatch, backfilling, preemption,
//! completion.
//!
//! [`SiteState`] is deliberately engine-agnostic: every transition returns
//! the [`CompletionToken`]s for newly started run segments, and the caller
//! (single-site [`Site`](crate::Site) wrapper or the multi-site market
//! economy) turns them into events. Preempted segments are invalidated by
//! an epoch counter — a stale token is simply ignored.
//!
//! Processors are interchangeable (§4), so the site tracks only a free
//! count plus the set of running gangs — no per-processor slots. Tasks may
//! request a `width > 1` gang; when the best-scoring task does not fit the
//! current free count, the dispatcher holds an **EASY backfilling**
//! reservation for it: lower-ranked tasks may start out of order only if
//! they fit the free processors *and* their expected completion does not
//! push past the reservation.

use crate::audit::{AuditEvent, AuditKind, AuditViolation};
use crate::config::{LostWorkPolicy, PreemptionMode, SiteConfig};
use crate::gantt::Segment;
use crate::metrics::{Disposition, JobOutcome, SiteMetrics};
use crate::SiteOutcome;
use mbts_core::{
    decompose, evaluate_admission_with_successors, explain_decision, AdmissionDecision,
    AdmissionPolicy, CostModel, Job, PendingPool, PoolCheckpoint, ScoreCtx,
};
use mbts_sim::{Duration, Time};
use mbts_trace::{
    DecisionCandidate, DecisionKind, TraceEvent, TraceKind, Tracer, TracerSnapshot,
    MAX_DECISION_CANDIDATES,
};
use mbts_workload::{TaskFacet, TaskSpec};
use serde::{Deserialize, Serialize};

/// Handle for a scheduled run-to-completion: fires at `at` unless the
/// segment was preempted (then the epoch no longer matches and the token
/// is stale).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompletionToken {
    /// When the running segment will finish (true-runtime based).
    pub at: Time,
    /// Assignment epoch; must match a currently running gang.
    pub epoch: u64,
}

#[derive(Debug, Clone)]
struct Running {
    job: Job,
    started: Time,
    epoch: u64,
}

impl Running {
    /// Remaining processing time per the estimate, as of `now`.
    fn remaining_estimate(&self, now: Time) -> Duration {
        (self.job.rpt - (now - self.started)).max_zero()
    }

    /// Current view of the running job, advanced to `now`.
    fn view(&self, now: Time) -> Job {
        let mut view = self.job.clone();
        view.advance(now - self.started);
        view
    }
}

/// A task-service site: pending queue + processor pool + accounting.
///
/// Capacity is elastic (§7's reseller model): [`grow`](Self::grow) adds
/// processors immediately; [`shrink`](Self::shrink) retires idle
/// processors now and registers a debt against busy ones, collected as
/// gangs complete.
#[derive(Debug, Clone)]
pub struct SiteState {
    config: SiteConfig,
    /// Current capacity (starts at `config.processors`; changed by
    /// grow/shrink).
    capacity: usize,
    /// Processors promised back to the resource pool but still occupied.
    shrink_debt: usize,
    /// Debt settled (processors actually retired) since the last
    /// [`take_settled_shrink`](Self::take_settled_shrink) call.
    settled_shrink: usize,
    /// The queue, as an incrementally maintained pool. Its slot order
    /// follows `Vec::swap_remove` semantics, so indices behave exactly
    /// like the plain `Vec<Job>` it replaced; with
    /// `config.incremental == false` it is used purely as storage and
    /// every decision rescans it.
    pending: PendingPool,
    running: Vec<Running>,
    free_procs: usize,
    epoch_counter: u64,
    metrics: SiteMetrics,
    outcomes: Vec<JobOutcome>,
    segments: Vec<Segment>,
    audit: Vec<AuditEvent>,
    /// Yield as re-derived from the per-job outcome records, accumulated
    /// in push order — the conservation auditor cross-checks it against
    /// `metrics.total_yield` after every event.
    earned_recorded: f64,
    /// Conservation-audit failures (release builds only; debug panics).
    violations: Vec<AuditViolation>,
    /// Structured-event sink ([`Tracer::Off`] by default: every emission
    /// site reduces to one never-taken branch).
    tracer: Tracer,
    /// Site index stamped on emitted events (multi-site economy runs).
    trace_site: Option<usize>,
}

impl SiteState {
    /// An idle site.
    pub fn new(config: SiteConfig) -> Self {
        let free_procs = config.processors;
        let pending = PendingPool::new(config.policy);
        SiteState {
            capacity: config.processors,
            shrink_debt: 0,
            settled_shrink: 0,
            config,
            pending,
            running: Vec::new(),
            free_procs,
            epoch_counter: 0,
            metrics: SiteMetrics::default(),
            outcomes: Vec::new(),
            segments: Vec::new(),
            audit: Vec::new(),
            earned_recorded: 0.0,
            violations: Vec::new(),
            tracer: Tracer::Off,
            trace_site: None,
        }
    }

    /// Installs a trace sink; subsequent transitions emit structured
    /// [`TraceEvent`]s into it. Tracing is observational only — a traced
    /// replay takes exactly the same decisions as an untraced one.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Stamps a site index on every event this state emits (used by the
    /// multi-site economy; single-site runs leave it unset).
    pub fn set_trace_site(&mut self, site: usize) {
        self.trace_site = Some(site);
    }

    /// Detaches and returns the tracer (typically right before
    /// [`into_outcome`](Self::into_outcome)), leaving tracing off.
    pub fn take_tracer(&mut self) -> Tracer {
        std::mem::take(&mut self.tracer)
    }

    /// Emits a workflow-overlay event (release/settle/strand) through
    /// this site's tracer. The overlay drives the run from outside the
    /// site core, so it needs an emission path that shares the site's
    /// sink and site-index stamp.
    pub fn trace_workflow(
        &mut self,
        at: Time,
        task: Option<mbts_workload::TaskId>,
        kind: TraceKind,
    ) {
        self.trace(at, task, kind);
    }

    #[inline]
    fn trace(&mut self, at: Time, task: Option<mbts_workload::TaskId>, kind: TraceKind) {
        if self.tracer.is_enabled() {
            let site = self.trace_site;
            self.tracer.emit(TraceEvent {
                at,
                task,
                site,
                kind,
            });
        }
    }

    #[inline]
    fn note_audit(&mut self, at: Time, task: Option<mbts_workload::TaskId>, kind: AuditKind) {
        if self.config.audit {
            self.audit.push(AuditEvent { at, task, kind });
        }
    }

    /// Records a conservation failure: panic in debug builds, report in
    /// release (the run keeps going so the operator gets the full list).
    #[cold]
    fn violation(&mut self, at: Time, rule: &'static str, detail: String) {
        debug_assert!(
            false,
            "conservation audit [{rule}] failed at {at}: {detail}"
        );
        self.violations.push(AuditViolation {
            at,
            rule: rule.to_string(),
            detail,
        });
    }

    /// The always-on conservation auditor: re-verifies the site's books
    /// after every externally driven state transition. All checks are
    /// O(running gangs) and read-only, so enabling faults (or not)
    /// never changes scheduling behaviour.
    fn audit_check(&mut self, now: Time) {
        let queued = self.pending.len();
        let running = self.running.len();
        let m = &self.metrics;
        let (submitted, accepted, rejected) = (m.submitted, m.accepted, m.rejected);
        let (completed, dropped, cancelled, orphaned) =
            (m.completed, m.dropped, m.cancelled, m.orphaned);
        let total_yield = m.total_yield;
        let accounted = queued + running + completed + dropped + cancelled + orphaned;
        if accepted != accounted {
            self.violation(
                now,
                "task-conservation",
                format!(
                    "accepted {accepted} != queued {queued} + running {running} + \
                     completed {completed} + dropped {dropped} + cancelled {cancelled} + \
                     orphaned {orphaned}"
                ),
            );
        }
        if submitted != accepted + rejected {
            self.violation(
                now,
                "submission-accounting",
                format!("submitted {submitted} != accepted {accepted} + rejected {rejected}"),
            );
        }
        let busy: usize = self.running.iter().map(|r| r.job.spec.width).sum();
        if busy + self.free_procs != self.capacity {
            self.violation(
                now,
                "processor-conservation",
                format!(
                    "busy {busy} + free {} != capacity {}",
                    self.free_procs, self.capacity
                ),
            );
        }
        let drift = (self.earned_recorded - total_yield).abs();
        if drift > 1e-9 * (1.0 + total_yield.abs()) {
            self.violation(
                now,
                "yield-consistency",
                format!(
                    "per-job outcomes sum to {} but metrics report {total_yield}",
                    self.earned_recorded
                ),
            );
        }
    }

    /// Conservation-audit failures recorded so far (always empty in
    /// debug builds, which panic at the first failed check instead).
    pub fn violations(&self) -> &[AuditViolation] {
        &self.violations
    }

    /// The configuration.
    pub fn config(&self) -> &SiteConfig {
        &self.config
    }

    /// Aggregate metrics so far.
    pub fn metrics(&self) -> &SiteMetrics {
        &self.metrics
    }

    /// Per-job outcome records so far, in push (event) order — the
    /// workflow overlay scans these to advance its release/settle state.
    pub fn outcomes(&self) -> &[JobOutcome] {
        &self.outcomes
    }

    /// Records a workflow member stranded by a predecessor's failure: the
    /// task was never released (so never submitted/accepted — it stays
    /// outside the task-conservation identity) and earns nothing. The
    /// workflow-level `WorkflowStranded` trace event is emitted by the
    /// overlay driving the run, which knows the owning workflow.
    pub fn note_stranded(&mut self, now: Time, id: mbts_workload::TaskId) {
        self.metrics.stranded += 1;
        self.outcomes.push(JobOutcome {
            id,
            disposition: Disposition::Stranded,
            finished_at: Some(now),
            earned: 0.0,
            delay: 0.0,
            preemptions: 0,
        });
        self.audit_check(now);
    }

    /// Number of queued (not running) tasks.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Number of busy processors.
    pub fn running_len(&self) -> usize {
        self.capacity - self.free_procs
    }

    /// Current capacity (config size ± grow/shrink).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Processors owed back to the resource pool but still busy.
    pub fn shrink_debt(&self) -> usize {
        self.shrink_debt
    }

    /// Adds `extra` processors immediately (§7 reseller model: capacity
    /// rented from a shared pool). Newly idle processors dispatch queued
    /// work at once; the returned tokens are the new run segments.
    pub fn grow(&mut self, extra: usize, now: Time) -> Vec<CompletionToken> {
        self.capacity += extra;
        self.free_procs += extra;
        if extra > 0 {
            self.note_audit(now, None, AuditKind::Grew { n: extra });
        }
        let tokens = self.dispatch(now);
        self.audit_check(now);
        tokens
    }

    /// Retires up to `by` processors: idle ones leave immediately, the
    /// rest are marked as debt and leave as running gangs complete.
    /// Capacity never drops below 1. Returns how many were retired
    /// immediately.
    /// See [`grow`](Self::grow); the immediate retirements are audited.
    pub fn shrink_audited(&mut self, by: usize, now: Time) -> usize {
        let immediate = self.shrink(by);
        if immediate > 0 {
            self.note_audit(now, None, AuditKind::Shrank { n: immediate });
        }
        immediate
    }

    pub fn shrink(&mut self, by: usize) -> usize {
        // Outstanding debt already commits capacity; never promise below
        // one processor in total.
        let by = by.min(
            self.capacity
                .saturating_sub(1)
                .saturating_sub(self.shrink_debt),
        );
        let immediate = by.min(self.free_procs);
        self.free_procs -= immediate;
        self.capacity -= immediate;
        self.shrink_debt += by - immediate;
        immediate
    }

    /// Pays down shrink debt from newly freed processors.
    fn settle_shrink_debt(&mut self) {
        let pay = self.shrink_debt.min(self.free_procs);
        self.free_procs -= pay;
        self.capacity -= pay;
        self.shrink_debt -= pay;
        self.settled_shrink += pay;
    }

    /// Returns (and resets) the number of debt processors actually
    /// retired since the last call — the owner releases these back to
    /// its resource pool.
    pub fn take_settled_shrink(&mut self) -> usize {
        std::mem::take(&mut self.settled_shrink)
    }

    /// Cancels up to `n` outstanding shrink-debt processors (keeping
    /// capacity that was scheduled to leave). Returns how many were kept;
    /// these need no new lease — they were never returned to the pool.
    pub fn cancel_shrink(&mut self, n: usize) -> usize {
        let kept = n.min(self.shrink_debt);
        self.shrink_debt -= kept;
        kept
    }

    /// Number of running gangs (tasks in execution).
    pub fn running_tasks(&self) -> usize {
        self.running.len()
    }

    /// Idle processors.
    pub fn free_processors(&self) -> usize {
        self.free_procs
    }

    /// `true` when nothing is queued or running.
    pub fn is_quiescent(&self) -> bool {
        self.pending.is_empty() && self.running.is_empty()
    }

    /// Total queued work (Σ width · RPT estimates, processor-time units)
    /// — the backlog a provisioning policy reasons over.
    pub fn pending_work(&self) -> f64 {
        self.pending
            .jobs()
            .iter()
            .map(|j| j.spec.width as f64 * j.rpt.as_f64())
            .sum()
    }

    /// Aggregate decay rate of the still-decaying queued tasks — the
    /// value bleeding away per unit time while the backlog waits. Divided
    /// by capacity this estimates the marginal value of one more
    /// processor for penalty-avoidance (§7 reseller signal).
    pub fn pending_decay_rate(&self, now: Time) -> f64 {
        self.pending
            .jobs()
            .iter()
            .map(|j| j.effective_decay(now))
            .sum()
    }

    /// Mean expected unit gain (yield per processor-time) of the queue if
    /// everything started at `now`; 0 for an empty queue. A reseller
    /// compares this against the rental price of extra capacity (§7).
    pub fn pending_unit_gain(&self, now: Time) -> f64 {
        if self.pending.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .pending
            .jobs()
            .iter()
            .map(|j| j.yield_if_started(now) / (j.spec.width as f64 * j.rpt.as_f64().max(1e-12)))
            .sum();
        total / self.pending.len() as f64
    }

    /// Per-processor expected-free times at `now` per the runtime
    /// *estimates* (what the candidate schedule believes): one `now` entry
    /// per idle processor, then `width` copies of each running gang's
    /// expected completion.
    pub fn free_times(&self, now: Time) -> Vec<Time> {
        let mut free = vec![now; self.free_procs];
        for r in &self.running {
            let at = now + r.remaining_estimate(now);
            free.extend(std::iter::repeat_n(at, r.job.spec.width));
        }
        debug_assert_eq!(free.len(), self.capacity);
        free
    }

    /// Evaluates a proposed task against the current mix without mutating
    /// anything — the §6 negotiation step a server bid is built from.
    /// Tasks wider than the site are rejected outright.
    pub fn evaluate(&self, now: Time, spec: TaskSpec) -> AdmissionDecision {
        if spec.width > self.capacity {
            return AdmissionDecision {
                accept: false,
                expected_completion: Time::INFINITY,
                expected_yield: 0.0,
                present_value: 0.0,
                cost: 0.0,
                slack: f64::NEG_INFINITY,
            };
        }
        let candidate = Job::new(spec);
        let mut queue = self.pending.jobs().to_vec();
        queue.push(candidate.clone());
        evaluate_admission_with_successors(
            &self.config.admission,
            &self.config.policy,
            self.config.schedule_mode,
            self.config.admission_discount_rate,
            now,
            &self.free_times(now),
            &queue,
            &candidate,
            self.facet_of(spec.id.0).map(|f| &f.succ),
        )
    }

    /// Workflow facet of a task, when the config carries a facet table.
    fn facet_of(&self, id: u64) -> Option<&TaskFacet> {
        self.config
            .workflow_facets
            .as_ref()
            .and_then(|f| f.get(&id))
    }

    /// Full submission path: admission (unless `AcceptAll`), then enqueue,
    /// dispatch, and (if enabled) preemption. Returns whether the task was
    /// accepted plus the completion tokens of newly started segments.
    pub fn submit(&mut self, now: Time, spec: TaskSpec) -> (bool, Vec<CompletionToken>) {
        self.metrics.note_submission(now);
        let infeasible = spec.width > self.capacity;
        // The admission decision is evaluated when the policy needs it —
        // and additionally, read-only, when a provenance tracer wants the
        // Eq. 7/8 decomposition that an `AcceptAll` site never computes.
        let decision = if infeasible {
            None
        } else if matches!(self.config.admission, AdmissionPolicy::AcceptAll) {
            self.tracer
                .is_provenance()
                .then(|| self.evaluate(now, spec))
        } else {
            Some(self.evaluate(now, spec))
        };
        let accept = !infeasible
            && match self.config.admission {
                // Wider-than-site tasks are infeasible regardless of policy.
                AdmissionPolicy::AcceptAll => true,
                _ => decision.as_ref().is_some_and(|d| d.accept),
            };
        if self.tracer.is_provenance() {
            let ev = self.admission_decision_event(now, spec, decision.as_ref(), accept);
            self.tracer.emit(ev);
        }
        self.note_audit(
            now,
            Some(spec.id),
            AuditKind::Submitted { accepted: accept },
        );
        self.trace(
            now,
            Some(spec.id),
            TraceKind::TaskArrived { accepted: accept },
        );
        if !accept {
            self.metrics.rejected += 1;
            self.outcomes.push(JobOutcome {
                id: spec.id,
                disposition: Disposition::Rejected,
                finished_at: None,
                earned: 0.0,
                delay: 0.0,
                preemptions: 0,
            });
            self.audit_check(now);
            return (false, Vec::new());
        }
        let tokens = self.accept(now, spec);
        (true, tokens)
    }

    /// Commits an already-negotiated task (the market layer calls this
    /// after the client picks this site's bid), bypassing re-evaluation.
    pub fn accept(&mut self, now: Time, spec: TaskSpec) -> Vec<CompletionToken> {
        assert!(
            spec.width <= self.capacity,
            "{} requests {} processors but the site has {}",
            spec.id,
            spec.width,
            self.capacity
        );
        self.metrics.accepted += 1;
        self.pending.push(Job::new(spec));
        let mut tokens = self.dispatch(now);
        if self.config.preemption {
            tokens.extend(self.try_preempt(now));
        }
        self.audit_check(now);
        tokens
    }

    /// Records a submission that was offered to this site but placed
    /// elsewhere (keeps market-level acceptance ratios meaningful).
    pub fn note_offer(&mut self, now: Time) {
        self.metrics.note_submission(now);
    }

    /// Records a rejection decided at the market layer.
    pub fn note_rejected(&mut self) {
        self.metrics.rejected += 1;
    }

    /// Withdraws a *queued* task (contract cancellation, §3). Running or
    /// already-finished tasks are not cancellable — returns `false` and
    /// leaves them untouched. The site earns nothing for a cancelled
    /// task; any breach penalty is settled at the market layer.
    pub fn cancel_pending(&mut self, now: Time, id: mbts_workload::TaskId) -> bool {
        let Some(idx) = self.pending.jobs().iter().position(|j| j.id() == id) else {
            return false;
        };
        let job = self.pending.swap_remove(idx);
        self.metrics.cancelled += 1;
        self.note_audit(now, Some(job.id()), AuditKind::Cancelled);
        self.trace(now, Some(job.id()), TraceKind::Cancelled);
        self.outcomes.push(JobOutcome {
            id: job.id(),
            disposition: Disposition::Cancelled,
            finished_at: Some(now),
            earned: 0.0,
            delay: (now - (job.spec.arrival + job.spec.runtime))
                .max_zero()
                .as_f64(),
            preemptions: job.preemptions,
        });
        self.audit_check(now);
        true
    }

    /// Handles a completion token. Stale tokens (the segment was
    /// preempted) are ignored. Returns tokens for any newly dispatched
    /// segments.
    pub fn on_completion(&mut self, now: Time, token: CompletionToken) -> Vec<CompletionToken> {
        self.on_completion_detailed(now, token).1
    }

    /// Like [`on_completion`](Self::on_completion) but also returns the
    /// completed task's outcome (if the token was fresh) — the market
    /// layer uses it to settle the task's contract.
    pub fn on_completion_detailed(
        &mut self,
        now: Time,
        token: CompletionToken,
    ) -> (Option<JobOutcome>, Vec<CompletionToken>) {
        let Some(idx) = self.running.iter().position(|r| r.epoch == token.epoch) else {
            return (None, Vec::new()); // stale: the segment was preempted
        };
        let Running {
            mut job, started, ..
        } = self.running.swap_remove(idx);
        self.free_procs += job.spec.width;
        self.settle_shrink_debt();
        if self.config.record_segments {
            self.segments.push(Segment {
                id: job.id(),
                width: job.spec.width,
                start: started,
                end: now,
                preempted: false,
            });
        }
        job.advance(now - started);
        debug_assert!(
            job.true_rpt.as_f64() < 1e-6,
            "completion fired with {} true work left",
            job.true_rpt
        );
        let earned = job.spec.yield_at(now);
        let delay = (now - (job.spec.arrival + job.spec.runtime)).max_zero();
        self.metrics.completed += 1;
        self.metrics.note_finish(now, earned);
        self.metrics.delay.push(delay.as_f64());
        self.note_audit(now, Some(job.id()), AuditKind::Completed { earned });
        self.trace(
            now,
            Some(job.id()),
            TraceKind::Completed {
                earned,
                delay: delay.as_f64(),
                width: job.spec.width,
                preemptions: job.preemptions,
            },
        );
        let outcome = JobOutcome {
            id: job.id(),
            disposition: Disposition::Completed,
            finished_at: Some(now),
            earned,
            delay: delay.as_f64(),
            preemptions: job.preemptions,
        };
        self.earned_recorded += outcome.earned;
        self.outcomes.push(outcome);
        let tokens = self.dispatch(now);
        self.audit_check(now);
        (Some(outcome), tokens)
    }

    /// Consumes the site, producing the final outcome (per-job records
    /// sorted by task id).
    pub fn into_outcome(mut self) -> SiteOutcome {
        self.outcomes.sort_by_key(|o| o.id);
        let mut segments = self.segments;
        segments.sort_by(|a, b| a.start.cmp(&b.start).then(a.id.cmp(&b.id)));
        SiteOutcome {
            metrics: self.metrics,
            outcomes: self.outcomes,
            segments,
            audit: self.audit,
            violations: self.violations,
        }
    }

    /// Rebuild-from-scratch scoring of every pending job at `now`;
    /// returns `(scores, best index)`. This is the pre-incremental
    /// baseline path, kept behind `config.incremental == false` for the
    /// `scheduler_hotpath` bench and the equivalence tests.
    fn score_pending(&self, now: Time) -> Option<(Vec<f64>, usize)> {
        if self.pending.is_empty() {
            return None;
        }
        let model = self
            .config
            .policy
            .needs_cost_model()
            .then(|| CostModel::build(now, self.pending.jobs()));
        let ctx = match &model {
            Some(m) => ScoreCtx::with_cost(now, m),
            None => ScoreCtx::simple(now),
        };
        let scores: Vec<f64> = self
            .pending
            .jobs()
            .iter()
            .map(|j| self.config.policy.score(j, &ctx))
            .collect();
        let mut best = 0;
        for i in 1..scores.len() {
            let better = scores[i] > scores[best]
                || (scores[i] == scores[best]
                    && self.pending.jobs()[i].id() < self.pending.jobs()[best].id());
            if better {
                best = i;
            }
        }
        Some((scores, best))
    }

    /// Fills idle processors from the pending queue, best score first,
    /// with EASY backfilling when the best task's gang does not fit.
    ///
    /// With `config.incremental` (the default) the head of line comes
    /// from the pool's persistent structures and the full per-job score
    /// vector is materialized only if the backfill scan actually needs
    /// it; otherwise every iteration rescans the queue. Both paths pick
    /// the same `(score, lowest id)` argmax.
    fn dispatch(&mut self, now: Time) -> Vec<CompletionToken> {
        let mut tokens = Vec::new();
        loop {
            if self.config.drop_expired {
                self.drop_expired_pending(now);
            }
            if self.free_procs == 0 {
                break;
            }
            let (scores, best) = if self.config.incremental {
                match self.pending.select_best(now) {
                    Some(best) => (None, best),
                    None => break,
                }
            } else {
                match self.score_pending(now) {
                    Some((scores, best)) => (Some(scores), best),
                    None => break,
                }
            };
            let width = self.pending.jobs()[best].spec.width;
            if width <= self.free_procs {
                let job = self.pending.swap_remove(best);
                tokens.push(self.start(job, now, false));
                continue;
            }
            if !self.config.backfilling {
                break;
            }
            // The head-of-line gang does not fit: reserve its start and
            // backfill around it.
            let reserve_at = self.reservation_time(width, now);
            let scores = match scores {
                Some(scores) => scores,
                None => self.pending.scores(now),
            };
            let mut fill: Option<usize> = None;
            for (i, job) in self.pending.jobs().iter().enumerate() {
                if i == best || job.spec.width > self.free_procs {
                    continue;
                }
                // EASY condition: must not delay the reservation.
                if now + job.rpt > reserve_at {
                    continue;
                }
                let better = match fill {
                    None => true,
                    Some(f) => {
                        scores[i] > scores[f]
                            || (scores[i] == scores[f]
                                && self.pending.jobs()[i].id() < self.pending.jobs()[f].id())
                    }
                };
                if better {
                    fill = Some(i);
                }
            }
            let Some(fill) = fill else {
                break;
            };
            let job = self.pending.swap_remove(fill);
            self.metrics.backfills += 1;
            tokens.push(self.start(job, now, true));
        }
        tokens
    }

    /// Earliest instant at which `width` processors are expected to be
    /// simultaneously free, per the running gangs' runtime estimates.
    fn reservation_time(&self, width: usize, now: Time) -> Time {
        let mut completions: Vec<(Time, usize)> = self
            .running
            .iter()
            .map(|r| (now + r.remaining_estimate(now), r.job.spec.width))
            .collect();
        completions.sort_by_key(|a| a.0);
        let mut avail = self.free_procs;
        for (at, w) in completions {
            if avail >= width {
                break;
            }
            avail += w;
            if avail >= width {
                return at;
            }
        }
        if avail >= width {
            now
        } else {
            // Unreachable in practice: submit() rejects width > processors.
            Time::INFINITY
        }
    }

    /// Decision diagnostics for a `Scheduled` trace event: the started
    /// job's Eq. 3 present value, its Eq. 8 opportunity cost against the
    /// tasks left behind in the queue, the resulting Eq. 7 slack, and
    /// its 1-based rank under the site policy at start time. Read-only —
    /// scores are computed against a throwaway cost model (never the
    /// pool's lazily maintained one), so tracing cannot perturb replay.
    fn schedule_event(&self, job: &Job, now: Time, backfill: bool) -> TraceEvent {
        let pv = job.present_value(now, self.config.admission_discount_rate);
        let behind_decay: f64 = self
            .pending
            .jobs()
            .iter()
            .map(|j| j.effective_decay(now))
            .sum();
        let cost = behind_decay * job.spec.runtime.as_f64();
        let decay = job.effective_decay(now);
        let slack = if decay > 0.0 {
            (pv - cost) / decay
        } else if pv - cost >= 0.0 {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        };
        let mut competing: Vec<Job> = self.pending.jobs().to_vec();
        competing.push(job.clone());
        let model = self
            .config
            .policy
            .needs_cost_model()
            .then(|| CostModel::build(now, &competing));
        let ctx = match &model {
            Some(m) => ScoreCtx::with_cost(now, m),
            None => ScoreCtx::simple(now),
        };
        let own = self.config.policy.score(job, &ctx);
        let rank = 1 + self
            .pending
            .jobs()
            .iter()
            .filter(|j| {
                let s = self.config.policy.score(j, &ctx);
                s > own || (s == own && j.id() < job.id())
            })
            .count();
        TraceEvent {
            at: now,
            task: Some(job.id()),
            site: self.trace_site,
            kind: TraceKind::Scheduled {
                rank,
                pv,
                cost,
                slack: TraceEvent::finite(slack),
                width: job.spec.width,
                backfill,
            },
        }
    }

    /// Builds the provenance candidate list for one decision: maps the
    /// retained competing-set indexes through the pure explainers of
    /// `mbts-core`, keeping the top-[`MAX_DECISION_CANDIDATES`] plus
    /// every chosen candidate, in rank order. Read-only, like
    /// [`schedule_event`](Self::schedule_event).
    fn provenance_candidates(
        &self,
        now: Time,
        competing: &[Job],
        chosen: &[usize],
    ) -> Vec<DecisionCandidate> {
        let ex = explain_decision(&self.config.policy, now, competing);
        let mut keep: Vec<usize> = chosen.to_vec();
        for &idx in ex.ranked() {
            if keep.len() >= MAX_DECISION_CANDIDATES.max(chosen.len()) {
                break;
            }
            if !chosen.contains(&idx) {
                keep.push(idx);
            }
        }
        keep.sort_by_key(|&idx| ex.rank_of(idx));
        keep.into_iter()
            .map(|idx| {
                let d = decompose(self.config.admission_discount_rate, now, competing, idx);
                let facet = self.facet_of(competing[idx].id().0);
                DecisionCandidate {
                    rank: ex.rank_of(idx),
                    task: Some(competing[idx].id()),
                    site: None,
                    score: TraceEvent::finite(ex.score(idx)),
                    pv: TraceEvent::finite(d.pv),
                    cost: TraceEvent::finite(d.cost),
                    slack: TraceEvent::finite(d.slack),
                    workflow: facet.map(|f| f.workflow),
                    critical: facet.map(|f| f.critical),
                    chosen: chosen.contains(&idx),
                }
            })
            .collect()
    }

    /// Provenance record for a dispatch or backfill start: the pending
    /// queue plus the started job, ranked and decomposed.
    fn dispatch_decision_event(&self, job: &Job, now: Time, backfill: bool) -> TraceEvent {
        let mut competing: Vec<Job> = self.pending.jobs().to_vec();
        competing.push(job.clone());
        let chosen = competing.len() - 1;
        let candidates = self.provenance_candidates(now, &competing, &[chosen]);
        TraceEvent {
            at: now,
            task: Some(job.id()),
            site: self.trace_site,
            kind: TraceKind::DecisionRecord {
                decision: if backfill {
                    DecisionKind::Backfill
                } else {
                    DecisionKind::Dispatch
                },
                considered: competing.len(),
                candidates,
            },
        }
    }

    /// Provenance record for the §6 admission verdict: one candidate
    /// whose score is the expected yield of accepting (the admission
    /// counterfactual `mbts analyze` reads regret from).
    fn admission_decision_event(
        &self,
        now: Time,
        spec: TaskSpec,
        decision: Option<&AdmissionDecision>,
        accept: bool,
    ) -> TraceEvent {
        let (score, pv, cost, slack) = match decision {
            Some(d) => (d.expected_yield, d.present_value, d.cost, d.slack),
            // Infeasible width: no candidate schedule exists.
            None => (0.0, 0.0, 0.0, f64::NEG_INFINITY),
        };
        let facet = self.facet_of(spec.id.0);
        TraceEvent {
            at: now,
            task: Some(spec.id),
            site: self.trace_site,
            kind: TraceKind::DecisionRecord {
                decision: DecisionKind::Admission,
                considered: 1,
                candidates: vec![DecisionCandidate {
                    rank: 1,
                    task: Some(spec.id),
                    site: None,
                    score: TraceEvent::finite(score),
                    pv: TraceEvent::finite(pv),
                    cost: TraceEvent::finite(cost),
                    slack: TraceEvent::finite(slack),
                    workflow: facet.map(|f| f.workflow),
                    critical: facet.map(|f| f.critical),
                    chosen: accept,
                }],
            },
        }
    }

    /// Provenance record for a preemption round: the running gangs as
    /// candidates (ranked within queue ∪ running, the same competing set
    /// the victim scores were computed over), with `chosen` marking the
    /// victims and the event's task naming the preempting winner.
    fn preempt_decision_event(
        &self,
        now: Time,
        running_views: &[Job],
        chosen_running: &[usize],
        winner: mbts_workload::TaskId,
    ) -> TraceEvent {
        let base = self.pending.len();
        let mut competing: Vec<Job> = self.pending.jobs().to_vec();
        competing.extend(running_views.iter().cloned());
        let ex = explain_decision(&self.config.policy, now, &competing);
        let chosen: Vec<usize> = chosen_running.iter().map(|&ri| base + ri).collect();
        let mut keep: Vec<usize> = chosen.clone();
        for &idx in ex.ranked() {
            if keep.len() >= MAX_DECISION_CANDIDATES.max(chosen.len()) {
                break;
            }
            if idx >= base && !chosen.contains(&idx) {
                keep.push(idx);
            }
        }
        keep.sort_by_key(|&idx| ex.rank_of(idx));
        let candidates = keep
            .into_iter()
            .map(|idx| {
                let d = decompose(self.config.admission_discount_rate, now, &competing, idx);
                let facet = self.facet_of(competing[idx].id().0);
                DecisionCandidate {
                    rank: ex.rank_of(idx),
                    task: Some(competing[idx].id()),
                    site: None,
                    score: TraceEvent::finite(ex.score(idx)),
                    pv: TraceEvent::finite(d.pv),
                    cost: TraceEvent::finite(d.cost),
                    slack: TraceEvent::finite(d.slack),
                    workflow: facet.map(|f| f.workflow),
                    critical: facet.map(|f| f.critical),
                    chosen: chosen.contains(&idx),
                }
            })
            .collect();
        TraceEvent {
            at: now,
            task: Some(winner),
            site: self.trace_site,
            kind: TraceKind::DecisionRecord {
                decision: DecisionKind::Preempt,
                considered: running_views.len(),
                candidates,
            },
        }
    }

    /// Starts `job` at `now`, consuming its gang's processors; returns the
    /// completion token.
    fn start(&mut self, mut job: Job, now: Time, backfill: bool) -> CompletionToken {
        let width = job.spec.width;
        assert!(width <= self.free_procs, "gang does not fit");
        if self.tracer.is_enabled() {
            if self.tracer.is_provenance() {
                let ev = self.dispatch_decision_event(&job, now, backfill);
                self.tracer.emit(ev);
            }
            let ev = self.schedule_event(&job, now, backfill);
            self.tracer.emit(ev);
        }
        self.free_procs -= width;
        if job.first_start.is_none() {
            job.first_start = Some(now);
        }
        self.epoch_counter += 1;
        let epoch = self.epoch_counter;
        let at = now + job.true_rpt;
        self.note_audit(now, Some(job.id()), AuditKind::Started { width });
        self.running.push(Running {
            job,
            started: now,
            epoch,
        });
        CompletionToken { at, epoch }
    }

    /// Discards pending tasks whose value function has fully decayed —
    /// they can be deferred for free, so a `drop_expired` site sheds them
    /// (earning the penalty floor) rather than ever running them.
    fn drop_expired_pending(&mut self, now: Time) {
        let mut i = 0;
        while i < self.pending.len() {
            let job = &self.pending.jobs()[i];
            let expired = !job.spec.bound.is_unbounded() && job.decay_window(now) == Duration::ZERO;
            if expired {
                let job = self.pending.swap_remove(i);
                let floor = job.spec.bound.floor();
                self.note_audit(now, Some(job.id()), AuditKind::Dropped);
                self.trace(now, Some(job.id()), TraceKind::Dropped { earned: floor });
                self.metrics.dropped += 1;
                self.metrics.note_finish(now, floor);
                self.earned_recorded += floor;
                self.outcomes.push(JobOutcome {
                    id: job.id(),
                    disposition: Disposition::Dropped,
                    finished_at: Some(now),
                    earned: floor,
                    delay: (now - (job.spec.arrival + job.spec.runtime))
                        .max_zero()
                        .as_f64(),
                    preemptions: job.preemptions,
                });
            } else {
                i += 1;
            }
        }
    }

    /// Arrival-triggered preemption (§4): while the best queued task
    /// outscores enough running gangs to free its width, suspend them and
    /// start it. Scores are evaluated at `now` over the union of the queue
    /// and the running tasks' current states, so opportunity-cost terms
    /// see the full competing set. Bounded iterations guarantee
    /// termination.
    fn try_preempt(&mut self, now: Time) -> Vec<CompletionToken> {
        let mut tokens = Vec::new();
        let max_rounds = self.pending.len() + self.running.len() + self.capacity + 1;
        for _ in 0..max_rounds {
            // Start whatever fits outright (including backfills) first.
            tokens.extend(self.dispatch(now));
            if self.pending.is_empty() || self.running.is_empty() {
                break;
            }
            // One model over queue + running views: every candidate's
            // competing set is "everyone else at this site".
            let running_views: Vec<Job> = self.running.iter().map(|r| r.view(now)).collect();
            let model = self.config.policy.needs_cost_model().then(|| {
                let mut all: Vec<Job> = self.pending.jobs().to_vec();
                all.extend(running_views.iter().cloned());
                CostModel::build(now, &all)
            });
            let ctx = match &model {
                Some(m) => ScoreCtx::with_cost(now, m),
                None => ScoreCtx::simple(now),
            };
            let best_idx = self
                .config
                .policy
                .select(self.pending.jobs(), &ctx)
                .expect("pending non-empty");
            let best_score = self
                .config
                .policy
                .score(&self.pending.jobs()[best_idx], &ctx);
            let need = self.pending.jobs()[best_idx].spec.width;

            // Victims: strictly lower-scoring running gangs, weakest
            // first, until the incoming gang fits.
            let mut victims: Vec<(usize, f64)> = running_views
                .iter()
                .enumerate()
                .map(|(i, v)| (i, self.config.policy.score(v, &ctx)))
                .filter(|(_, s)| *s < best_score)
                .collect();
            victims.sort_by(|a, b| a.1.total_cmp(&b.1));
            let mut chosen: Vec<usize> = Vec::new();
            let mut avail = self.free_procs;
            for (ri, _) in &victims {
                if avail >= need {
                    break;
                }
                avail += self.running[*ri].job.spec.width;
                chosen.push(*ri);
            }
            if avail < need || chosen.is_empty() {
                break;
            }
            if self.tracer.is_provenance() {
                let winner = self.pending.jobs()[best_idx].id();
                let ev = self.preempt_decision_event(now, &running_views, &chosen, winner);
                self.tracer.emit(ev);
            }
            // Suspend the victims back into the queue (descending index
            // keeps the remaining indices valid under swap_remove)…
            chosen.sort_unstable_by(|a, b| b.cmp(a));
            for ri in chosen {
                let Running {
                    mut job, started, ..
                } = self.running.swap_remove(ri);
                self.free_procs += job.spec.width;
                if self.config.record_segments {
                    self.segments.push(Segment {
                        id: job.id(),
                        width: job.spec.width,
                        start: started,
                        end: now,
                        preempted: true,
                    });
                }
                match self.config.preemption_mode {
                    PreemptionMode::Resume => job.advance(now - started),
                    PreemptionMode::Restart => {
                        // Kill-and-requeue: all progress is lost.
                        job.rpt = job.spec.runtime;
                        job.true_rpt = job.spec.true_runtime;
                    }
                    PreemptionMode::CheckpointRestore { overhead } => {
                        job.advance(now - started);
                        // Restoring the checkpoint costs extra work on
                        // both the estimate and the true runtime.
                        job.rpt += Duration::new(overhead);
                        job.true_rpt += Duration::new(overhead);
                    }
                }
                job.preemptions += 1;
                self.metrics.preemptions += 1;
                self.note_audit(now, Some(job.id()), AuditKind::Preempted);
                let (id, width) = (job.id(), job.spec.width);
                self.trace(now, Some(id), TraceKind::Preempted { width });
                self.pending.push(job);
            }
            // …and start the winner in their place.
            let winner = self.pending.swap_remove(best_idx);
            tokens.push(self.start(winner, now, false));
        }
        tokens
    }

    /// A fault kills up to `n` processors at `now`. Idle processors die
    /// first; if more must go, running gangs are evicted back into the
    /// queue (most recently started first, so the gang with the least
    /// sunk work absorbs the hit), losing progress per
    /// [`LostWorkPolicy`]. An evicted gang's surviving processors become
    /// free; its completion token goes stale via the epoch counter. The
    /// decay clocks of evicted tasks keep running — crash delay is real
    /// delay. Returns how many processors actually died (bounded by the
    /// current capacity; the site may end at zero capacity, in which
    /// state every submission is rejected until a repair).
    pub fn crash(&mut self, n: usize, now: Time) -> usize {
        let dead = n.min(self.capacity);
        if dead == 0 {
            return 0;
        }
        self.note_audit(now, None, AuditKind::Crashed { n: dead });
        self.trace(now, None, TraceKind::Crashed { procs: dead });
        self.metrics.crashed_procs += dead as u64;
        let idle = dead.min(self.free_procs);
        self.free_procs -= idle;
        self.capacity -= idle;
        let mut still = dead - idle;
        while still > 0 {
            let victim = self
                .running
                .iter()
                .enumerate()
                .max_by_key(|(_, r)| r.epoch)
                .map(|(i, _)| i)
                .expect("processors still owed but nothing is running");
            let Running {
                mut job, started, ..
            } = self.running.swap_remove(victim);
            let width = job.spec.width;
            if self.config.record_segments {
                self.segments.push(Segment {
                    id: job.id(),
                    width,
                    start: started,
                    end: now,
                    preempted: true,
                });
            }
            match self.config.lost_work {
                LostWorkPolicy::Restart => {
                    job.rpt = job.spec.runtime;
                    job.true_rpt = job.spec.true_runtime;
                }
                LostWorkPolicy::Checkpoint {
                    interval,
                    restart_penalty,
                } => {
                    // Progress survives only up to the last checkpoint;
                    // the restore pays `restart_penalty` on top.
                    let ran = (now - started).as_f64();
                    let lost = if interval > 0.0 {
                        ran - (ran / interval).floor() * interval
                    } else {
                        ran
                    };
                    job.advance(now - started);
                    job.rpt += Duration::new(lost + restart_penalty);
                    job.true_rpt += Duration::new(lost + restart_penalty);
                }
            }
            job.preemptions += 1;
            self.metrics.preemptions += 1;
            self.metrics.evictions += 1;
            self.note_audit(now, Some(job.id()), AuditKind::Evicted);
            let id = job.id();
            self.trace(now, Some(id), TraceKind::Requeued { width });
            self.pending.push(job);
            // Of the gang's released processors, `died` go down with the
            // fault and the rest return to the free pool.
            let died = still.min(width);
            self.capacity -= died;
            self.free_procs += width - died;
            still -= died;
        }
        self.audit_check(now);
        dead
    }

    /// A repair restores `n` processors; queued work dispatches onto
    /// them immediately. The returned tokens are the new run segments.
    pub fn repair(&mut self, n: usize, now: Time) -> Vec<CompletionToken> {
        if n == 0 {
            return Vec::new();
        }
        self.note_audit(now, None, AuditKind::Repaired { n });
        self.trace(now, None, TraceKind::Repaired { procs: n });
        self.metrics.repaired_procs += n as u64;
        self.capacity += n;
        self.free_procs += n;
        let tokens = self.dispatch(now);
        self.audit_check(now);
        tokens
    }

    /// Empties the pending queue, returning the jobs to the caller — the
    /// market layer orphans a dead site's queue this way and re-bids
    /// each task (whose decay clock keeps running from its original
    /// arrival). Each orphan is recorded as a
    /// [`Disposition::Orphaned`] outcome earning nothing here.
    pub fn orphan_pending(&mut self, now: Time) -> Vec<Job> {
        let jobs = self.pending.drain_all();
        for job in &jobs {
            self.metrics.orphaned += 1;
            self.note_audit(now, Some(job.id()), AuditKind::Orphaned);
            self.trace(now, Some(job.id()), TraceKind::Orphaned);
            self.outcomes.push(JobOutcome {
                id: job.id(),
                disposition: Disposition::Orphaned,
                finished_at: Some(now),
                earned: 0.0,
                delay: (now - (job.spec.arrival + job.spec.runtime))
                    .max_zero()
                    .as_f64(),
                preemptions: job.preemptions,
            });
        }
        self.audit_check(now);
        jobs
    }

    /// Captures the complete replayable state of the site at an event
    /// boundary. Restoring via [`from_snapshot`](Self::from_snapshot)
    /// yields a site whose every future decision — dispatch order,
    /// backfill picks, preemption victims, yield accounting down to the
    /// last Kahan-compensation bit — is identical to this one's.
    ///
    /// The tracer is captured as a [`TracerSnapshot`]; file-backed sinks
    /// serialize as detached (the resuming caller re-attaches a stream).
    pub fn snapshot(&self) -> SiteSnapshot {
        SiteSnapshot {
            config: self.config.clone(),
            capacity: self.capacity,
            shrink_debt: self.shrink_debt,
            settled_shrink: self.settled_shrink,
            pending: self.pending.checkpoint(),
            running: self
                .running
                .iter()
                .map(|r| (r.job.clone(), r.started, r.epoch))
                .collect(),
            free_procs: self.free_procs,
            epoch_counter: self.epoch_counter,
            metrics: self.metrics.clone(),
            outcomes: self.outcomes.clone(),
            segments: self.segments.clone(),
            audit: self.audit.clone(),
            earned_recorded: self.earned_recorded,
            violations: self.violations.clone(),
            tracer: self.tracer.snapshot(),
            trace_site: self.trace_site,
        }
    }

    /// Rebuilds a site from a [`snapshot`](Self::snapshot). The pending
    /// pool is reconstructed in slot order (so `swap_remove` indices
    /// replay exactly) and its decay accumulator is overwritten with the
    /// checkpointed Kahan state rather than re-summed.
    pub fn from_snapshot(snap: SiteSnapshot) -> Self {
        SiteState {
            config: snap.config,
            capacity: snap.capacity,
            shrink_debt: snap.shrink_debt,
            settled_shrink: snap.settled_shrink,
            pending: PendingPool::from_checkpoint(snap.pending),
            running: snap
                .running
                .into_iter()
                .map(|(job, started, epoch)| Running {
                    job,
                    started,
                    epoch,
                })
                .collect(),
            free_procs: snap.free_procs,
            epoch_counter: snap.epoch_counter,
            metrics: snap.metrics,
            outcomes: snap.outcomes,
            segments: snap.segments,
            audit: snap.audit,
            earned_recorded: snap.earned_recorded,
            violations: snap.violations,
            tracer: Tracer::from_snapshot(snap.tracer),
            trace_site: snap.trace_site,
        }
    }
}

/// Serializable image of a [`SiteState`] at an event boundary — the
/// per-site payload of the durable-recovery layer's snapshot records.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteSnapshot {
    /// The site configuration (policies, modes, toggles).
    pub config: SiteConfig,
    /// Current elastic capacity.
    pub capacity: usize,
    /// Processors promised back to the pool but still busy.
    pub shrink_debt: usize,
    /// Debt settled since the last `take_settled_shrink`.
    pub settled_shrink: usize,
    /// The queue, including the cost model's exact accumulator state.
    pub pending: PoolCheckpoint,
    /// Running gangs as `(job, started, epoch)` in slot order.
    pub running: Vec<(Job, Time, u64)>,
    /// Idle processors.
    pub free_procs: usize,
    /// Assignment-epoch counter (stale-token invalidation).
    pub epoch_counter: u64,
    /// Aggregate counters and statistics.
    pub metrics: SiteMetrics,
    /// Per-job outcome records so far.
    pub outcomes: Vec<JobOutcome>,
    /// Execution segments recorded so far.
    pub segments: Vec<Segment>,
    /// Audit events recorded so far.
    pub audit: Vec<AuditEvent>,
    /// Yield re-derived from outcome records (conservation cross-check).
    pub earned_recorded: f64,
    /// Conservation-audit failures recorded so far.
    pub violations: Vec<AuditViolation>,
    /// The tracer cursor.
    pub tracer: TracerSnapshot,
    /// Site index stamped on emitted trace events.
    pub trace_site: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbts_core::Policy;
    use mbts_workload::PenaltyBound;

    fn spec(id: u64, arrival: f64, runtime: f64, value: f64, decay: f64) -> TaskSpec {
        TaskSpec::new(id, arrival, runtime, value, decay, PenaltyBound::Unbounded)
    }

    fn drain(site: &mut SiteState, mut tokens: Vec<CompletionToken>) -> Time {
        // Minimal event loop for tests: process tokens in time order.
        let mut last = Time::ZERO;
        while !tokens.is_empty() {
            tokens.sort_by_key(|t| std::cmp::Reverse(t.at));
            let tok = tokens.pop().unwrap();
            last = tok.at;
            tokens.extend(site.on_completion(tok.at, tok));
        }
        last
    }

    #[test]
    fn single_task_lifecycle() {
        let mut site = SiteState::new(SiteConfig::new(1));
        let (ok, tokens) = site.submit(Time::ZERO, spec(0, 0.0, 10.0, 100.0, 1.0));
        assert!(ok);
        assert_eq!(tokens.len(), 1);
        assert_eq!(tokens[0].at, Time::from(10.0));
        assert_eq!(site.running_len(), 1);
        let end = drain(&mut site, tokens);
        assert_eq!(end, Time::from(10.0));
        assert!(site.is_quiescent());
        let m = site.metrics();
        assert_eq!(m.completed, 1);
        assert_eq!(m.total_yield, 100.0);
        assert_eq!(m.delay.mean(), 0.0);
    }

    #[test]
    fn fifo_queueing_on_one_processor() {
        let mut site = SiteState::new(SiteConfig::new(1).with_policy(Policy::Fcfs));
        let (_, mut t) = site.submit(Time::ZERO, spec(0, 0.0, 10.0, 100.0, 1.0));
        let (_, t2) = site.submit(Time::ZERO, spec(1, 0.0, 10.0, 100.0, 2.0));
        assert!(t2.is_empty(), "second task queues");
        assert_eq!(site.pending_len(), 1);
        t.extend(t2);
        drain(&mut site, t);
        let m = site.metrics();
        assert_eq!(m.completed, 2);
        // Task 1 completed at 20 with delay 10 → yield 100 − 20 = 80.
        assert_eq!(m.total_yield, 180.0);
    }

    #[test]
    fn two_processors_run_in_parallel() {
        let mut site = SiteState::new(SiteConfig::new(2));
        let (_, mut t) = site.submit(Time::ZERO, spec(0, 0.0, 10.0, 100.0, 1.0));
        let (_, t2) = site.submit(Time::ZERO, spec(1, 0.0, 10.0, 100.0, 1.0));
        assert_eq!(t2.len(), 1);
        t.extend(t2);
        let end = drain(&mut site, t);
        assert_eq!(end, Time::from(10.0));
        assert_eq!(site.metrics().total_yield, 200.0);
    }

    #[test]
    fn first_price_picks_highest_unit_gain() {
        let mut site = SiteState::new(SiteConfig::new(1).with_policy(Policy::FirstPrice));
        // Occupy the processor, then queue two competitors.
        let (_, t) = site.submit(Time::ZERO, spec(0, 0.0, 5.0, 10.0, 0.1));
        assert!(site.submit(Time::ZERO, spec(1, 0.0, 10.0, 50.0, 0.1)).0);
        assert!(site.submit(Time::ZERO, spec(2, 0.0, 10.0, 500.0, 0.1)).0);
        drain(&mut site, t);
        let out = site.clone().into_outcome();
        // Task 2 (unit gain 50) must run before task 1 (unit gain 5):
        let f1 = out.outcomes[1].finished_at.unwrap();
        let f2 = out.outcomes[2].finished_at.unwrap();
        assert!(f2 < f1, "high unit gain finishes first");
    }

    #[test]
    fn preemption_suspends_lower_priority_work() {
        let cfg = SiteConfig::new(1)
            .with_policy(Policy::FirstPrice)
            .with_preemption(true);
        let mut site = SiteState::new(cfg);
        // Low-value long task starts…
        let (_, t1) = site.submit(Time::ZERO, spec(0, 0.0, 100.0, 100.0, 0.1));
        assert_eq!(t1.len(), 1);
        // …then a high-unit-gain task arrives at t = 10 and preempts.
        let (_, t2) = site.submit(Time::from(10.0), spec(1, 10.0, 5.0, 500.0, 0.1));
        assert_eq!(t2.len(), 1, "preemption starts the new task");
        assert_eq!(site.metrics().preemptions, 1);
        assert_eq!(site.pending_len(), 1, "victim re-queued");
        // The victim's original completion token (t = 100) is now stale.
        let mut all = t1;
        all.extend(t2);
        drain(&mut site, all);
        assert!(site.is_quiescent());
        let out = site.clone().into_outcome();
        assert_eq!(out.outcomes[0].preemptions, 1);
        // Victim ran 10, was suspended 5, resumed: completes at 105.
        assert_eq!(out.outcomes[0].finished_at.unwrap(), Time::from(105.0));
        assert_eq!(out.outcomes[1].finished_at.unwrap(), Time::from(15.0));
        // Yields: task 1 on time → 500 (delay 0); task 0 delay 5 → 99.5.
        assert!((out.outcomes[1].earned - 500.0).abs() < 1e-9);
        assert!((out.outcomes[0].earned - 99.5).abs() < 1e-9);
    }

    #[test]
    fn no_preemption_when_disabled() {
        let cfg = SiteConfig::new(1).with_policy(Policy::FirstPrice);
        let mut site = SiteState::new(cfg);
        let (_, t1) = site.submit(Time::ZERO, spec(0, 0.0, 100.0, 100.0, 0.1));
        let (_, t2) = site.submit(Time::from(10.0), spec(1, 10.0, 5.0, 500.0, 0.1));
        assert!(t2.is_empty());
        assert_eq!(site.metrics().preemptions, 0);
        let mut all = t1;
        all.extend(t2);
        drain(&mut site, all);
        let out = site.clone().into_outcome();
        assert_eq!(out.outcomes[0].finished_at.unwrap(), Time::from(100.0));
        assert_eq!(out.outcomes[1].finished_at.unwrap(), Time::from(105.0));
    }

    #[test]
    fn equal_priority_does_not_preempt() {
        let cfg = SiteConfig::new(1)
            .with_policy(Policy::FirstPrice)
            .with_preemption(true);
        let mut site = SiteState::new(cfg);
        site.submit(Time::ZERO, spec(0, 0.0, 10.0, 100.0, 0.0));
        // Identical unit gain arriving later: no preemption.
        let (_, t2) = site.submit(Time::ZERO, spec(1, 0.0, 10.0, 100.0, 0.0));
        assert!(t2.is_empty());
        assert_eq!(site.metrics().preemptions, 0);
    }

    #[test]
    fn slack_admission_rejects_overload() {
        let cfg = SiteConfig::new(1)
            .with_policy(Policy::FirstPrice)
            .with_admission(AdmissionPolicy::SlackThreshold { threshold: 100.0 });
        let mut site = SiteState::new(cfg);
        // Slack of a lone task: PV/decay ≈ (100/1.1)/0.5 ≈ 181 > 100 → accept.
        let (ok, _) = site.submit(Time::ZERO, spec(0, 0.0, 10.0, 100.0, 0.5));
        assert!(ok);
        // Pile on identical tasks; each queues behind more work, slack
        // shrinks, eventually rejected.
        let mut accepted = 1;
        let mut rejected = 0;
        for i in 1..20 {
            let (ok, _) = site.submit(Time::ZERO, spec(i, 0.0, 10.0, 100.0, 0.5));
            if ok {
                accepted += 1;
            } else {
                rejected += 1;
            }
        }
        assert!(accepted > 1, "some backlog accepted");
        assert!(rejected > 0, "overload eventually rejected");
        assert_eq!(site.metrics().rejected, rejected);
        // Once rejecting, it keeps rejecting identical tasks (slack only
        // shrinks as the queue grows — monotone backlog).
        let (ok, _) = site.submit(Time::ZERO, spec(99, 0.0, 10.0, 100.0, 0.5));
        assert!(!ok);
    }

    #[test]
    fn rejected_tasks_do_not_run() {
        let cfg = SiteConfig::new(1).with_admission(AdmissionPolicy::SlackThreshold {
            threshold: f64::INFINITY,
        });
        let mut site = SiteState::new(cfg);
        let (ok, tokens) = site.submit(Time::ZERO, spec(0, 0.0, 10.0, 100.0, 0.5));
        assert!(!ok);
        assert!(tokens.is_empty());
        assert!(site.is_quiescent());
        let out = site.clone().into_outcome();
        assert_eq!(out.outcomes[0].disposition, Disposition::Rejected);
        assert_eq!(out.metrics.rejected, 1);
        assert_eq!(out.metrics.total_yield, 0.0);
    }

    #[test]
    fn drop_expired_sheds_dead_tasks() {
        let cfg = SiteConfig::new(1)
            .with_policy(Policy::FirstPrice)
            .with_drop_expired(true);
        let mut site = SiteState::new(cfg);
        // Occupy the processor for a long time.
        let (_, t1) = site.submit(Time::ZERO, spec(0, 0.0, 100.0, 1000.0, 0.0));
        // Queue a task that expires at t = 2 + 10/10 = 3 (bounded at 0).
        let dying = TaskSpec::new(1, 0.0, 2.0, 10.0, 10.0, PenaltyBound::ZERO);
        site.submit(Time::ZERO, dying);
        assert_eq!(site.pending_len(), 1);
        // At the long task's completion (t = 100) the dying task is long
        // expired: dispatch drops it instead of running it.
        drain(&mut site, t1);
        let m = site.metrics();
        assert_eq!(m.completed, 1);
        assert_eq!(m.dropped, 1);
        assert_eq!(m.total_yield, 1000.0, "drop earns the zero floor");
        assert!(site.is_quiescent());
    }

    #[test]
    fn without_drop_expired_dead_tasks_still_run() {
        let cfg = SiteConfig::new(1).with_policy(Policy::FirstPrice);
        let mut site = SiteState::new(cfg);
        let (_, t1) = site.submit(Time::ZERO, spec(0, 0.0, 100.0, 1000.0, 0.0));
        let dying = TaskSpec::new(1, 0.0, 2.0, 10.0, 10.0, PenaltyBound::ZERO);
        site.submit(Time::ZERO, dying);
        drain(&mut site, t1);
        assert_eq!(site.metrics().completed, 2);
        assert_eq!(site.metrics().dropped, 0);
        assert_eq!(site.metrics().total_yield, 1000.0, "expired task earns 0");
    }

    #[test]
    fn free_times_reflect_running_estimates() {
        let mut site = SiteState::new(SiteConfig::new(2));
        site.submit(Time::ZERO, spec(0, 0.0, 10.0, 100.0, 1.0));
        let mut free = site.free_times(Time::from(4.0));
        free.sort();
        assert_eq!(free, vec![Time::from(4.0), Time::from(10.0)]);
    }

    #[test]
    fn stale_tokens_are_ignored() {
        let cfg = SiteConfig::new(1)
            .with_policy(Policy::FirstPrice)
            .with_preemption(true);
        let mut site = SiteState::new(cfg);
        let (_, t1) = site.submit(Time::ZERO, spec(0, 0.0, 100.0, 100.0, 0.1));
        site.submit(Time::from(10.0), spec(1, 10.0, 5.0, 500.0, 0.1));
        // Victim's original token fires at t=100 but its epoch is stale.
        let out = site.on_completion(t1[0].at, t1[0]);
        assert!(out.is_empty());
        assert_eq!(site.metrics().completed, 0);
    }

    #[test]
    fn misestimated_runtime_completes_at_true_time() {
        let mut s = spec(0, 0.0, 10.0, 100.0, 1.0);
        s.true_runtime = Duration::from(15.0);
        let mut site = SiteState::new(SiteConfig::new(1));
        let (_, t) = site.submit(Time::ZERO, s);
        assert_eq!(t[0].at, Time::from(15.0));
        drain(&mut site, t);
        let out = site.clone().into_outcome();
        // Yield per the *negotiated* (estimate-anchored) value function:
        // earliest = 10, completion 15, delay 5 → 95.
        assert!((out.outcomes[0].earned - 95.0).abs() < 1e-9);
    }

    #[test]
    fn evaluate_is_pure() {
        let site = SiteState::new(SiteConfig::new(1));
        let d = site.evaluate(Time::ZERO, spec(0, 0.0, 10.0, 100.0, 0.5));
        assert!(d.accept);
        assert_eq!(site.pending_len(), 0);
        assert_eq!(site.metrics().submitted, 0);
    }

    #[test]
    fn first_reward_dispatch_works_end_to_end() {
        let cfg = SiteConfig::new(2).with_policy(Policy::first_reward(0.3, 0.01));
        let mut site = SiteState::new(cfg);
        let mut tokens = Vec::new();
        for i in 0..20 {
            let (_, t) = site.submit(
                Time::from(i as f64),
                spec(i as u64, i as f64, 5.0, 50.0, 0.2 + (i % 5) as f64 * 0.3),
            );
            tokens.extend(t);
            // Interleave completions that are due.
            tokens.sort_by_key(|t| std::cmp::Reverse(t.at));
            while tokens.last().is_some_and(|t| t.at <= Time::from(i as f64)) {
                let tok = tokens.pop().unwrap();
                tokens.extend(site.on_completion(tok.at, tok));
            }
        }
        drain(&mut site, tokens);
        assert!(site.is_quiescent());
        assert_eq!(site.metrics().completed, 20);
    }

    // ---- gang scheduling & backfilling ----

    fn wide(id: u64, arrival: f64, runtime: f64, value: f64, width: usize) -> TaskSpec {
        spec(id, arrival, runtime, value, 0.1).with_width(width)
    }

    #[test]
    fn gang_occupies_its_width() {
        let mut site = SiteState::new(SiteConfig::new(4));
        let (_, t) = site.submit(Time::ZERO, wide(0, 0.0, 10.0, 100.0, 3));
        assert_eq!(t.len(), 1);
        assert_eq!(site.running_len(), 3);
        assert_eq!(site.free_processors(), 1);
        assert_eq!(site.running_tasks(), 1);
        drain(&mut site, t);
        assert_eq!(site.free_processors(), 4);
    }

    #[test]
    fn too_wide_tasks_are_rejected_even_under_accept_all() {
        let mut site = SiteState::new(SiteConfig::new(4));
        let (ok, tokens) = site.submit(Time::ZERO, wide(0, 0.0, 10.0, 100.0, 5));
        assert!(!ok);
        assert!(tokens.is_empty());
        assert_eq!(site.metrics().rejected, 1);
    }

    #[test]
    fn gangs_queue_until_width_fits() {
        let mut site = SiteState::new(SiteConfig::new(4).with_policy(Policy::Fcfs));
        let (_, mut t) = site.submit(Time::ZERO, wide(0, 0.0, 10.0, 100.0, 3));
        // A 2-wide gang cannot start (only 1 free).
        let (ok, t2) = site.submit(Time::ZERO, wide(1, 0.0, 10.0, 100.0, 2));
        assert!(ok);
        assert!(t2.is_empty());
        assert_eq!(site.pending_len(), 1);
        t.extend(t2);
        drain(&mut site, t);
        let out = site.clone().into_outcome();
        // Second gang starts when the first finishes: completes at 20.
        assert_eq!(out.outcomes[1].finished_at.unwrap(), Time::from(20.0));
    }

    #[test]
    fn easy_backfilling_fills_holes_without_delaying_the_reservation() {
        // FCFS on 4 procs: a 3-wide gang runs (10 t.u.), a 4-wide gang is
        // head-of-line (reserved at t=10), a short 1-wide task (3 t.u.)
        // backfills into the idle processor because it finishes before the
        // reservation.
        let mut site = SiteState::new(SiteConfig::new(4).with_policy(Policy::Fcfs));
        let (_, mut t) = site.submit(Time::ZERO, wide(0, 0.0, 10.0, 100.0, 3));
        let (_, t2) = site.submit(Time::ZERO, wide(1, 0.0, 10.0, 100.0, 4));
        assert!(t2.is_empty(), "4-wide gang must wait");
        let (_, t3) = site.submit(Time::ZERO, wide(2, 0.0, 3.0, 30.0, 1));
        assert_eq!(t3.len(), 1, "short narrow task backfills");
        assert_eq!(site.metrics().backfills, 1);
        t.extend(t2);
        t.extend(t3);
        drain(&mut site, t);
        let out = site.clone().into_outcome();
        assert_eq!(out.outcomes[2].finished_at.unwrap(), Time::from(3.0));
        // The reservation was not delayed: the 4-wide gang starts at 10.
        assert_eq!(out.outcomes[1].finished_at.unwrap(), Time::from(20.0));
    }

    #[test]
    fn backfill_refuses_jobs_that_would_delay_the_reservation() {
        let mut site = SiteState::new(SiteConfig::new(4).with_policy(Policy::Fcfs));
        let (_, t) = site.submit(Time::ZERO, wide(0, 0.0, 10.0, 100.0, 3));
        site.submit(Time::ZERO, wide(1, 0.0, 10.0, 100.0, 4));
        // 20-t.u. task would run past the t=10 reservation: must wait.
        let (ok, t3) = site.submit(Time::ZERO, wide(2, 0.0, 20.0, 30.0, 1));
        assert!(ok);
        assert!(t3.is_empty(), "long task must not backfill");
        assert_eq!(site.metrics().backfills, 0);
        drain(&mut site, t);
    }

    #[test]
    fn wide_preemption_evicts_enough_victims() {
        let cfg = SiteConfig::new(4)
            .with_policy(Policy::FirstPrice)
            .with_preemption(true);
        let mut site = SiteState::new(cfg);
        // Four low-value singles occupy the site.
        let mut tokens = Vec::new();
        for i in 0..4 {
            let (_, t) = site.submit(Time::ZERO, wide(i, 0.0, 100.0, 10.0, 1));
            tokens.extend(t);
        }
        assert_eq!(site.free_processors(), 0);
        // A high-value 3-wide gang arrives and evicts three of them.
        let (_, t) = site.submit(Time::from(5.0), wide(9, 5.0, 10.0, 5000.0, 3));
        assert_eq!(t.len(), 1);
        assert_eq!(site.metrics().preemptions, 3);
        assert_eq!(site.pending_len(), 3);
        assert_eq!(site.free_processors(), 0);
        tokens.extend(t);
        drain(&mut site, tokens);
        assert!(site.is_quiescent());
        assert_eq!(site.metrics().completed, 5);
    }

    #[test]
    fn preemption_does_not_evict_when_not_enough_weak_victims() {
        let cfg = SiteConfig::new(2)
            .with_policy(Policy::FirstPrice)
            .with_preemption(true);
        let mut site = SiteState::new(cfg);
        // One weak and one strong single running.
        site.submit(Time::ZERO, wide(0, 0.0, 100.0, 1.0, 1));
        site.submit(Time::ZERO, wide(1, 0.0, 100.0, 100_000.0, 1));
        // A 2-wide gang that outscores only the weak task: cannot free 2
        // procs from strictly-weaker victims, so nothing is preempted.
        let (_, t) = site.submit(Time::from(1.0), wide(2, 1.0, 10.0, 500.0, 2));
        assert!(t.is_empty());
        assert_eq!(site.metrics().preemptions, 0);
        assert_eq!(site.pending_len(), 1);
    }
}

#[cfg(test)]
mod elastic_tests {
    use super::*;
    use mbts_core::Policy;
    use mbts_workload::PenaltyBound;

    fn spec(id: u64, arrival: f64, runtime: f64, value: f64) -> TaskSpec {
        TaskSpec::new(id, arrival, runtime, value, 0.1, PenaltyBound::Unbounded)
    }

    #[test]
    fn grow_dispatches_queued_work_immediately() {
        let mut site = SiteState::new(SiteConfig::new(1).with_policy(Policy::Fcfs));
        let (_, t1) = site.submit(Time::ZERO, spec(0, 0.0, 10.0, 100.0));
        let (_, t2) = site.submit(Time::ZERO, spec(1, 0.0, 10.0, 100.0));
        assert!(t2.is_empty());
        assert_eq!(site.pending_len(), 1);
        let t3 = site.grow(1, Time::from(2.0));
        assert_eq!(t3.len(), 1, "new processor picks up the queue");
        assert_eq!(site.capacity(), 2);
        assert_eq!(site.free_processors(), 0);
        let mut all = t1;
        all.extend(t2);
        all.extend(t3);
        // Drain everything.
        all.sort_by_key(|t| std::cmp::Reverse(t.at));
        while let Some(tok) = all.pop() {
            all.extend(site.on_completion(tok.at, tok));
            all.sort_by_key(|t| std::cmp::Reverse(t.at));
        }
        assert_eq!(site.metrics().completed, 2);
    }

    #[test]
    fn shrink_retires_idle_processors_immediately() {
        let mut site = SiteState::new(SiteConfig::new(4));
        let retired = site.shrink(2);
        assert_eq!(retired, 2);
        assert_eq!(site.capacity(), 2);
        assert_eq!(site.free_processors(), 2);
        assert_eq!(site.shrink_debt(), 0);
    }

    #[test]
    fn shrink_of_busy_processors_is_debt_collected_on_completion() {
        let mut site = SiteState::new(SiteConfig::new(2));
        let (_, t1) = site.submit(Time::ZERO, spec(0, 0.0, 10.0, 100.0));
        let (_, t2) = site.submit(Time::ZERO, spec(1, 0.0, 20.0, 100.0));
        // Both busy; shrink by 1 must wait for a completion.
        assert_eq!(site.shrink(1), 0);
        assert_eq!(site.shrink_debt(), 1);
        assert_eq!(site.capacity(), 2);
        // First completion pays the debt instead of dispatching.
        let more = site.on_completion(t1[0].at, t1[0]);
        assert!(more.is_empty());
        assert_eq!(site.capacity(), 1);
        assert_eq!(site.shrink_debt(), 0);
        assert_eq!(site.free_processors(), 0);
        site.on_completion(t2[0].at, t2[0]);
        assert_eq!(site.capacity(), 1);
        assert_eq!(site.free_processors(), 1);
        assert!(site.is_quiescent());
    }

    #[test]
    fn shrink_never_drops_below_one_processor() {
        let mut site = SiteState::new(SiteConfig::new(3));
        site.shrink(100);
        assert_eq!(site.capacity(), 1);
        // Still functional.
        let (ok, t) = site.submit(Time::ZERO, spec(0, 0.0, 5.0, 10.0));
        assert!(ok);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn grow_then_shrink_roundtrips() {
        let mut site = SiteState::new(SiteConfig::new(2));
        site.grow(3, Time::ZERO);
        assert_eq!(site.capacity(), 5);
        assert_eq!(site.shrink(3), 3);
        assert_eq!(site.capacity(), 2);
        assert_eq!(site.free_processors(), 2);
    }

    #[test]
    fn free_times_track_elastic_capacity() {
        let mut site = SiteState::new(SiteConfig::new(1));
        site.grow(2, Time::ZERO);
        assert_eq!(site.free_times(Time::from(5.0)).len(), 3);
        site.shrink(1);
        assert_eq!(site.free_times(Time::from(5.0)).len(), 2);
    }
}

#[cfg(test)]
mod backfill_toggle_tests {
    use super::*;
    use mbts_core::Policy;
    use mbts_workload::PenaltyBound;

    fn wide(id: u64, runtime: f64, width: usize) -> TaskSpec {
        TaskSpec::new(id, 0.0, runtime, 100.0, 0.1, PenaltyBound::Unbounded).with_width(width)
    }

    #[test]
    fn disabling_backfilling_enforces_strict_order() {
        let mut site = SiteState::new(
            SiteConfig::new(4)
                .with_policy(Policy::Fcfs)
                .with_backfilling(false),
        );
        site.submit(Time::ZERO, wide(0, 10.0, 3));
        site.submit(Time::ZERO, wide(1, 10.0, 4)); // head of line, blocked
        let (ok, t3) = site.submit(Time::ZERO, wide(2, 3.0, 1));
        assert!(ok);
        assert!(t3.is_empty(), "no backfilling: short task waits in line");
        assert_eq!(site.metrics().backfills, 0);
        assert_eq!(site.pending_len(), 2);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use mbts_core::Policy;
    use mbts_workload::PenaltyBound;

    fn spec(id: u64, arrival: f64, runtime: f64, value: f64) -> TaskSpec {
        TaskSpec::new(id, arrival, runtime, value, 0.1, PenaltyBound::Unbounded)
    }

    fn drain(site: &mut SiteState, mut tokens: Vec<CompletionToken>) {
        while !tokens.is_empty() {
            tokens.sort_by_key(|t| std::cmp::Reverse(t.at));
            let tok = tokens.pop().unwrap();
            tokens.extend(site.on_completion(tok.at, tok));
        }
    }

    #[test]
    fn crash_takes_idle_processors_first() {
        let mut site = SiteState::new(SiteConfig::new(4));
        let (_, t) = site.submit(Time::ZERO, spec(0, 0.0, 10.0, 100.0));
        assert_eq!(site.free_processors(), 3);
        // Two idle processors die; the running task is untouched.
        assert_eq!(site.crash(2, Time::from(1.0)), 2);
        assert_eq!(site.capacity(), 2);
        assert_eq!(site.free_processors(), 1);
        assert_eq!(site.metrics().evictions, 0);
        assert_eq!(site.metrics().crashed_procs, 2);
        drain(&mut site, t);
        assert_eq!(site.metrics().completed, 1);
        assert!(site.violations().is_empty());
    }

    #[test]
    fn crash_evicts_running_work_and_restart_loses_progress() {
        let mut site = SiteState::new(SiteConfig::new(1));
        let (_, t) = site.submit(Time::ZERO, spec(0, 0.0, 100.0, 1000.0));
        // The lone processor dies at t = 40: the task restarts from
        // scratch once a repair restores capacity at t = 50.
        assert_eq!(site.crash(1, Time::from(40.0)), 1);
        assert_eq!(site.capacity(), 0);
        assert_eq!(site.metrics().evictions, 1);
        assert_eq!(site.pending_len(), 1);
        // The original completion token (t = 100) is stale now.
        assert!(site.on_completion(t[0].at, t[0]).is_empty());
        let t2 = site.repair(1, Time::from(50.0));
        assert_eq!(t2.len(), 1);
        assert_eq!(t2[0].at, Time::from(150.0), "restart loses 40 units");
        assert_eq!(site.metrics().repaired_procs, 1);
        drain(&mut site, t2);
        assert_eq!(site.metrics().completed, 1);
        assert!(site.violations().is_empty());
    }

    #[test]
    fn checkpoint_policy_keeps_progress_up_to_the_last_checkpoint() {
        let mut site = SiteState::new(SiteConfig::new(1).with_lost_work(
            LostWorkPolicy::Checkpoint {
                interval: 15.0,
                restart_penalty: 2.0,
            },
        ));
        site.submit(Time::ZERO, spec(0, 0.0, 100.0, 1000.0));
        // Crash at t = 40: checkpoints at 15 and 30 → 10 units lost,
        // plus the 2-unit restore penalty.
        site.crash(1, Time::from(40.0));
        let t = site.repair(1, Time::from(50.0));
        // Remaining true work: 100 − 40 + 10 + 2 = 72 → completes at 122.
        assert_eq!(t[0].at, Time::from(122.0));
        drain(&mut site, t);
        assert!(site.violations().is_empty());
    }

    #[test]
    fn site_at_zero_capacity_rejects_submissions_until_repair() {
        let mut site = SiteState::new(SiteConfig::new(2));
        site.crash(2, Time::ZERO);
        assert_eq!(site.capacity(), 0);
        let (ok, _) = site.submit(Time::from(1.0), spec(0, 1.0, 5.0, 10.0));
        assert!(!ok, "a dead site accepts nothing");
        site.repair(2, Time::from(2.0));
        let (ok, t) = site.submit(Time::from(3.0), spec(1, 3.0, 5.0, 10.0));
        assert!(ok);
        assert_eq!(t.len(), 1);
        drain(&mut site, t);
        assert!(site.violations().is_empty());
    }

    #[test]
    fn crash_wider_than_victim_gang_evicts_multiple_gangs() {
        let mut site = SiteState::new(SiteConfig::new(4).with_policy(Policy::Fcfs));
        let mut tokens = Vec::new();
        for i in 0..4 {
            let (_, t) = site.submit(Time::ZERO, spec(i, 0.0, 50.0, 100.0));
            tokens.extend(t);
        }
        assert_eq!(site.running_tasks(), 4);
        // Three processors die: three gangs evicted (most recent first).
        assert_eq!(site.crash(3, Time::from(10.0)), 3);
        assert_eq!(site.capacity(), 1);
        assert_eq!(site.running_tasks(), 1);
        assert_eq!(site.pending_len(), 3);
        assert_eq!(site.metrics().evictions, 3);
        tokens.extend(site.repair(3, Time::from(20.0)));
        drain(&mut site, tokens);
        assert_eq!(site.metrics().completed, 4);
        assert!(site.violations().is_empty());
    }

    #[test]
    fn orphan_pending_returns_the_queue_and_records_outcomes() {
        let mut site = SiteState::new(SiteConfig::new(1).with_policy(Policy::Fcfs));
        let (_, t) = site.submit(Time::ZERO, spec(0, 0.0, 50.0, 100.0));
        site.submit(Time::ZERO, spec(1, 0.0, 5.0, 10.0));
        site.submit(Time::ZERO, spec(2, 0.0, 5.0, 10.0));
        assert_eq!(site.pending_len(), 2);
        let orphans = site.orphan_pending(Time::from(3.0));
        assert_eq!(orphans.len(), 2);
        assert_eq!(site.pending_len(), 0);
        assert_eq!(site.metrics().orphaned, 2);
        drain(&mut site, t);
        let out = site.clone().into_outcome();
        assert_eq!(
            out.outcomes
                .iter()
                .filter(|o| o.disposition == Disposition::Orphaned)
                .count(),
            2
        );
        assert!(out.violations.is_empty());
    }

    #[test]
    fn audit_trail_counts_crash_events() {
        let mut site = SiteState::new(SiteConfig::new(2).with_audit(true));
        let (_, t) = site.submit(Time::ZERO, spec(0, 0.0, 10.0, 100.0));
        site.crash(2, Time::from(1.0));
        site.repair(2, Time::from(2.0));
        let audit = site.clone().into_outcome().audit;
        assert!(audit
            .iter()
            .any(|e| matches!(e.kind, AuditKind::Crashed { n: 2 })));
        assert!(audit
            .iter()
            .any(|e| matches!(e.kind, AuditKind::Repaired { n: 2 })));
        assert!(audit.iter().any(|e| matches!(e.kind, AuditKind::Evicted)));
        drop(t);
    }
}

#[cfg(test)]
mod preemption_mode_tests {
    use super::*;
    use mbts_core::Policy;
    use mbts_workload::PenaltyBound;

    fn spec(id: u64, arrival: f64, runtime: f64, value: f64) -> TaskSpec {
        TaskSpec::new(id, arrival, runtime, value, 0.1, PenaltyBound::Unbounded)
    }

    fn drain(site: &mut SiteState, mut tokens: Vec<CompletionToken>) {
        while !tokens.is_empty() {
            tokens.sort_by_key(|t| std::cmp::Reverse(t.at));
            let tok = tokens.pop().unwrap();
            tokens.extend(site.on_completion(tok.at, tok));
        }
    }

    /// One low-value long task is preempted at t = 10 by a 5-t.u. task;
    /// returns the victim's completion time under the given mode.
    fn victim_completion(mode: PreemptionMode) -> Time {
        let cfg = SiteConfig::new(1)
            .with_policy(Policy::FirstPrice)
            .with_preemption(true)
            .with_preemption_mode(mode);
        let mut site = SiteState::new(cfg);
        let (_, mut tokens) = site.submit(Time::ZERO, spec(0, 0.0, 100.0, 100.0));
        let (_, t2) = site.submit(Time::from(10.0), spec(1, 10.0, 5.0, 5000.0));
        tokens.extend(t2);
        drain(&mut site, tokens);
        site.clone().into_outcome().outcomes[0].finished_at.unwrap()
    }

    #[test]
    fn resume_keeps_progress() {
        // Ran 10, suspended 5, remaining 90 → completes at 105.
        assert_eq!(victim_completion(PreemptionMode::Resume), Time::from(105.0));
    }

    #[test]
    fn restart_loses_progress() {
        // Restarts from scratch at t = 15 → completes at 115.
        assert_eq!(
            victim_completion(PreemptionMode::Restart),
            Time::from(115.0)
        );
    }

    #[test]
    fn checkpoint_restore_pays_overhead_only() {
        // Keeps the 10 units of progress, pays 3 to restore → 108.
        assert_eq!(
            victim_completion(PreemptionMode::CheckpointRestore { overhead: 3.0 }),
            Time::from(108.0)
        );
        // Zero overhead degenerates to resume.
        assert_eq!(
            victim_completion(PreemptionMode::CheckpointRestore { overhead: 0.0 }),
            Time::from(105.0)
        );
    }

    #[test]
    fn modes_order_total_yield_sensibly() {
        // More progress lost ⇒ later completion ⇒ lower victim yield.
        let resume = victim_completion(PreemptionMode::Resume);
        let ckpt = victim_completion(PreemptionMode::CheckpointRestore { overhead: 3.0 });
        let restart = victim_completion(PreemptionMode::Restart);
        assert!(resume < ckpt && ckpt < restart);
    }
}
