//! Yield accounting and per-job outcomes.

use mbts_sim::{OnlineStats, Time};
use mbts_workload::TaskId;
use serde::{Deserialize, Serialize};

/// What finally happened to one submitted task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Disposition {
    /// Rejected by admission control; never entered the queue.
    Rejected,
    /// Ran to completion.
    Completed,
    /// Accepted but discarded after expiring (only with `drop_expired`).
    Dropped,
    /// Accepted but withdrawn by the client/market before running
    /// (contract cancellation, §3).
    Cancelled,
    /// Accepted but returned to the market un-run because the site died
    /// under it (fault injection); the client re-bids it elsewhere.
    Orphaned,
    /// A workflow member whose predecessor failed: the task was never
    /// released into any queue, so it neither counts as submitted nor
    /// accepted — the workflow overlay settles its workflow at zero.
    Stranded,
}

/// Per-task record produced by a site run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// The task.
    pub id: TaskId,
    /// Final disposition.
    pub disposition: Disposition,
    /// Completion (or drop) time, if the task was accepted.
    pub finished_at: Option<Time>,
    /// Yield earned (Eq. 1); 0 for rejected tasks.
    pub earned: f64,
    /// Total delay beyond the minimum possible completion, in time units
    /// (0 for rejected tasks).
    pub delay: f64,
    /// How many times the task was preempted.
    pub preemptions: u32,
}

/// Aggregate counters and statistics for one site run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SiteMetrics {
    /// Tasks offered to the site.
    pub submitted: usize,
    /// Tasks admitted into the queue.
    pub accepted: usize,
    /// Tasks refused by admission control.
    pub rejected: usize,
    /// Tasks run to completion.
    pub completed: usize,
    /// Accepted tasks discarded after expiry.
    pub dropped: usize,
    /// Accepted tasks withdrawn before completion (market cancellations).
    pub cancelled: usize,
    /// Accepted tasks returned to the market un-run by a site outage.
    pub orphaned: usize,
    /// Workflow members stranded by a predecessor's failure before ever
    /// being released (never submitted, so outside the
    /// submitted/accepted conservation identity).
    #[serde(default)]
    pub stranded: usize,
    /// Total preemption events (including crash evictions).
    pub preemptions: u64,
    /// Running gangs evicted by crashes (a subset of `preemptions`).
    pub evictions: u64,
    /// Processors lost to crashes so far.
    pub crashed_procs: u64,
    /// Processors restored by repairs so far.
    pub repaired_procs: u64,
    /// Tasks started out of score order by EASY backfilling.
    pub backfills: u64,
    /// Σ earned yield over completed + dropped tasks (penalties included).
    pub total_yield: f64,
    /// Σ of only the negative earnings (≤ 0): the penalties paid.
    pub total_penalty: f64,
    /// First submission instant.
    pub first_arrival: Option<Time>,
    /// Last completion/drop instant.
    pub last_finish: Option<Time>,
    /// Distribution of delays over completed tasks.
    pub delay: OnlineStats,
    /// Distribution of per-task earnings over completed + dropped tasks.
    pub earnings: OnlineStats,
}

impl SiteMetrics {
    /// Length of the active interval: first arrival to last completion.
    pub fn active_span(&self) -> f64 {
        match (self.first_arrival, self.last_finish) {
            (Some(a), Some(f)) if f > a => (f - a).as_f64(),
            _ => 0.0,
        }
    }

    /// Average yield earned per unit of time over the active interval —
    /// the y-axis of the paper's Figure 6.
    pub fn yield_rate(&self) -> f64 {
        let span = self.active_span();
        if span > 0.0 {
            self.total_yield / span
        } else {
            0.0
        }
    }

    /// Fraction of submitted tasks that were accepted.
    pub fn acceptance_ratio(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.accepted as f64 / self.submitted as f64
        }
    }

    pub(crate) fn note_submission(&mut self, at: Time) {
        self.submitted += 1;
        if self.first_arrival.is_none() {
            self.first_arrival = Some(at);
        }
    }

    pub(crate) fn note_finish(&mut self, at: Time, earned: f64) {
        self.total_yield += earned;
        if earned < 0.0 {
            self.total_penalty += earned;
        }
        self.earnings.push(earned);
        self.last_finish = Some(match self.last_finish {
            Some(prev) => prev.max(at),
            None => at,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_span_and_yield_rate() {
        let mut m = SiteMetrics::default();
        m.note_submission(Time::from(10.0));
        m.note_finish(Time::from(110.0), 50.0);
        m.note_finish(Time::from(60.0), 30.0);
        assert_eq!(m.active_span(), 100.0);
        assert!((m.yield_rate() - 0.8).abs() < 1e-12);
        // last_finish keeps the max even with out-of-order notes.
        assert_eq!(m.last_finish, Some(Time::from(110.0)));
    }

    #[test]
    fn penalties_accumulate_separately() {
        let mut m = SiteMetrics::default();
        m.note_finish(Time::from(1.0), 10.0);
        m.note_finish(Time::from(2.0), -4.0);
        assert_eq!(m.total_yield, 6.0);
        assert_eq!(m.total_penalty, -4.0);
        assert_eq!(m.earnings.count(), 2);
    }

    #[test]
    fn empty_metrics_are_benign() {
        let m = SiteMetrics::default();
        assert_eq!(m.active_span(), 0.0);
        assert_eq!(m.yield_rate(), 0.0);
        assert_eq!(m.acceptance_ratio(), 0.0);
    }

    #[test]
    fn acceptance_ratio() {
        let mut m = SiteMetrics::default();
        for i in 0..10 {
            m.note_submission(Time::from(i as f64));
        }
        m.accepted = 7;
        m.rejected = 3;
        assert!((m.acceptance_ratio() - 0.7).abs() < 1e-12);
    }
}
