//! Structured audit log.
//!
//! With [`SiteConfig::with_audit`](crate::SiteConfig::with_audit) enabled
//! the site records one [`AuditEvent`] per state transition — submission,
//! start, preemption, completion, drop, cancellation, capacity change.
//! The log is serializable (one JSON object per line via
//! [`to_jsonl`]) and is what an operator would ship to their log pipeline
//! to audit contract compliance after the fact.

use mbts_sim::Time;
use mbts_workload::TaskId;
use serde::{Deserialize, Serialize};

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AuditKind {
    /// A task was offered to the site.
    Submitted {
        /// Whether admission control accepted it.
        accepted: bool,
    },
    /// A task started (or resumed) on a gang of processors.
    Started {
        /// Gang width.
        width: usize,
    },
    /// A running task was preempted back into the queue.
    Preempted,
    /// A running task was evicted back into the queue by a crash
    /// (progress lost per [`crate::config::LostWorkPolicy`]).
    Evicted,
    /// A queued task was returned to the market un-run because the site
    /// died under it.
    Orphaned,
    /// A task ran to completion.
    Completed {
        /// Yield earned (Eq. 1).
        earned: f64,
    },
    /// An expired task was shed from the queue.
    Dropped,
    /// A queued task was withdrawn by the market layer.
    Cancelled,
    /// Capacity grew by `n` processors.
    Grew {
        /// Processors added.
        n: usize,
    },
    /// Capacity shrank by `n` processors (immediately retired).
    Shrank {
        /// Processors retired.
        n: usize,
    },
    /// A fault killed `n` processors.
    Crashed {
        /// Processors lost.
        n: usize,
    },
    /// A repair restored `n` processors.
    Repaired {
        /// Processors restored.
        n: usize,
    },
}

/// One failed conservation check from the always-on auditor.
///
/// The auditor re-verifies the site's books after every state
/// transition: task conservation (accepted = queued + running +
/// completed + dropped + cancelled + orphaned), submission accounting
/// (submitted = accepted + rejected), processor conservation
/// (Σ running widths + free = capacity), and yield consistency (the
/// per-job outcome records sum to the metrics' total yield). A failure
/// panics in debug builds; in release it is recorded here and surfaced
/// through [`SiteOutcome::violations`](crate::SiteOutcome::violations).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditViolation {
    /// When the check failed.
    pub at: Time,
    /// Which conservation rule failed.
    pub rule: String,
    /// Human-readable account of the imbalance.
    pub detail: String,
}

/// One audit record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AuditEvent {
    /// When it happened.
    pub at: Time,
    /// The task involved (`None` for capacity events).
    pub task: Option<TaskId>,
    /// What happened.
    pub kind: AuditKind,
}

/// Serializes an audit log as JSON Lines (one event per line).
pub fn to_jsonl(events: &[AuditEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&serde_json::to_string(e).expect("audit serialization cannot fail"));
        out.push('\n');
    }
    out
}

/// Parses a JSON Lines audit log.
pub fn from_jsonl(text: &str) -> Result<Vec<AuditEvent>, serde_json::Error> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(serde_json::from_str)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Site, SiteConfig};
    use mbts_core::Policy;
    use mbts_workload::{generate_trace, MixConfig};

    #[test]
    fn jsonl_roundtrip() {
        let events = vec![
            AuditEvent {
                at: Time::from(1.0),
                task: Some(TaskId(3)),
                kind: AuditKind::Submitted { accepted: true },
            },
            AuditEvent {
                at: Time::from(2.0),
                task: None,
                kind: AuditKind::Grew { n: 4 },
            },
        ];
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), 2);
        assert_eq!(from_jsonl(&text).unwrap(), events);
        assert!(from_jsonl("not json").is_err());
    }

    #[test]
    fn site_records_a_consistent_audit_trail() {
        let mix = MixConfig::millennium_default()
            .with_tasks(120)
            .with_processors(4)
            .with_load_factor(2.0);
        let trace = generate_trace(&mix, 31);
        let outcome = Site::new(
            SiteConfig::new(4)
                .with_policy(Policy::FirstPrice)
                .with_preemption(true)
                .with_audit(true),
        )
        .run_trace(&trace);
        let audit = &outcome.audit;
        assert!(!audit.is_empty());
        // Timestamps never go backwards.
        assert!(audit.windows(2).all(|w| w[0].at <= w[1].at));
        // Counts line up with the metrics.
        let count =
            |pred: &dyn Fn(&AuditKind) -> bool| audit.iter().filter(|e| pred(&e.kind)).count();
        assert_eq!(
            count(&|k| matches!(k, AuditKind::Submitted { .. })),
            outcome.metrics.submitted
        );
        assert_eq!(
            count(&|k| matches!(k, AuditKind::Completed { .. })),
            outcome.metrics.completed
        );
        assert_eq!(
            count(&|k| matches!(k, AuditKind::Preempted)) as u64,
            outcome.metrics.preemptions
        );
        // Every task starts exactly (1 + its preemption count) times.
        let starts = count(&|k| matches!(k, AuditKind::Started { .. })) as u64;
        assert_eq!(
            starts,
            outcome.metrics.completed as u64 + outcome.metrics.preemptions
        );
        // Earned amounts in the audit sum to the total yield.
        let earned: f64 = audit
            .iter()
            .filter_map(|e| match e.kind {
                AuditKind::Completed { earned } => Some(earned),
                _ => None,
            })
            .sum();
        assert!((earned - outcome.metrics.total_yield).abs() < 1e-6);
    }

    #[test]
    fn audit_off_by_default() {
        let mix = MixConfig::millennium_default()
            .with_tasks(40)
            .with_processors(4);
        let trace = generate_trace(&mix, 32);
        let outcome =
            Site::new(SiteConfig::new(4).with_policy(Policy::FirstPrice)).run_trace(&trace);
        assert!(outcome.audit.is_empty());
    }
}
