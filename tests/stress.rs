//! Stress test: every feature at once, end to end.
//!
//! A multi-site economy where everything is switched on simultaneously —
//! gang tasks, preemption with checkpoint overhead, backfilling, slack
//! admission, budgets, migration, retries, grace-period contracts, second
//! pricing, runtime misestimation — run over a surge workload, checking
//! only the invariants that must survive any feature interaction.

use mbts::core::{AdmissionPolicy, Policy};
use mbts::market::{
    BudgetConfig, ClientSelection, ContractTerms, Economy, EconomyConfig, MigrationConfig,
    PricingStrategy, RetryConfig,
};
use mbts::site::{PreemptionMode, SiteConfig};
use mbts::workload::{generate_trace, MixConfig, Trace, WidthPolicy};

fn everything_trace() -> Trace {
    let quiet = MixConfig::millennium_default()
        .with_tasks(250)
        .with_processors(12)
        .with_load_factor(0.6)
        .with_mean_decay(0.05)
        .with_width(WidthPolicy::PowersOfTwo { max_exp: 2 })
        .with_runtime_error(0.2);
    let surge = quiet.clone().with_load_factor(2.5);
    Trace::concatenate(
        &[
            generate_trace(&quiet, 71),
            generate_trace(&surge, 72),
            generate_trace(&quiet, 73),
        ],
        25.0,
    )
}

fn everything_economy() -> EconomyConfig {
    let mut cfg = EconomyConfig::uniform(
        1,
        SiteConfig::new(8)
            .with_policy(Policy::first_reward(0.25, 0.01))
            .with_admission(AdmissionPolicy::SlackThreshold { threshold: 50.0 })
            .with_preemption(true)
            .with_preemption_mode(PreemptionMode::CheckpointRestore { overhead: 2.0 })
            .with_audit(true),
    );
    cfg.sites.push(
        SiteConfig::new(4)
            .with_policy(Policy::FirstPrice)
            .with_admission(AdmissionPolicy::PositiveExpectedYield)
            .with_drop_expired(true),
    );
    cfg.selection = ClientSelection::EarliestCompletion;
    cfg.pricing = PricingStrategy::second_price();
    cfg.budgets = Some(BudgetConfig {
        num_clients: 5,
        initial: 5_000.0,
        replenish_rate: 1.0,
        cap: 20_000.0,
    });
    cfg.migration = Some(MigrationConfig {
        grace: 120.0,
        max_attempts: 3,
    });
    cfg.terms = ContractTerms::GracePeriod {
        grace: 80.0,
        rate_multiplier: 2.0,
    };
    cfg.retry = Some(RetryConfig {
        backoff: 60.0,
        max_retries: 2,
    });
    cfg
}

#[test]
fn kitchen_sink_economy_stays_consistent() {
    let trace = everything_trace();
    let out = Economy::new(everything_economy()).run_trace(&trace);

    // Market-level conservation (placements can exceed offers only via
    // migration re-placements).
    assert_eq!(out.offered, trace.len());
    assert_eq!(
        out.placed + out.unplaced + out.unfunded,
        out.offered + out.migrations
    );
    assert_eq!(out.contracts.len(), out.placed);
    assert!(out.contracts.iter().all(|c| c.is_settled()));
    assert_eq!(out.migrations + out.abandoned, out.cancelled);

    // The conservation auditor found nothing wrong — at the market level
    // or inside any site — with every feature interacting.
    assert!(
        out.audit_violations.is_empty(),
        "market-level audit violations: {:?}",
        out.audit_violations
    );

    // Per-site conservation with every disposition in play.
    for site in &out.per_site {
        let m = &site.metrics;
        assert_eq!(m.completed + m.dropped + m.cancelled, m.accepted);
        assert!(m.total_yield.is_finite());
        assert!(
            site.violations.is_empty(),
            "site audit violations: {:?}",
            site.violations
        );
    }

    // Budgets: client debits equal charges.
    let spent: f64 = out.client_spend.iter().sum();
    assert!((spent - out.total_paid).abs() < 1e-6 * (1.0 + out.total_paid.abs()));

    // The audited site's trail is time-ordered and complete.
    let audit = &out.per_site[0].audit;
    assert!(!audit.is_empty());
    assert!(audit.windows(2).all(|w| w[0].at <= w[1].at));

    // Determinism: the whole kitchen sink replays identically.
    let again = Economy::new(everything_economy()).run_trace(&trace);
    assert_eq!(out.placed, again.placed);
    assert_eq!(out.cancelled, again.cancelled);
    assert_eq!(out.total_paid.to_bits(), again.total_paid.to_bits());
}

#[test]
fn kitchen_sink_under_every_preemption_mode() {
    let trace = everything_trace();
    for mode in [
        PreemptionMode::Resume,
        PreemptionMode::Restart,
        PreemptionMode::CheckpointRestore { overhead: 5.0 },
    ] {
        let mut cfg = everything_economy();
        for site in &mut cfg.sites {
            site.preemption_mode = mode;
        }
        let out = Economy::new(cfg).run_trace(&trace);
        assert!(out.contracts.iter().all(|c| c.is_settled()), "{mode:?}");
        assert!(out.total_yield().is_finite(), "{mode:?}");
        assert!(
            out.audit_violations.is_empty(),
            "{mode:?}: {:?}",
            out.audit_violations
        );
        for site in &out.per_site {
            assert!(
                site.violations.is_empty(),
                "{mode:?}: {:?}",
                site.violations
            );
        }
    }
}
