//! Golden decision-provenance conformance tests: with the tracer's
//! provenance level on, every dispatch / backfill / preemption /
//! admission decision must emit an exact, committed `DecisionRecord`
//! stream — the ranked candidate set with per-candidate present-value,
//! opportunity-cost, and slack decomposition. Any change to scoring,
//! ranking, tie-breaking, or the explainers themselves shows up as a
//! fixture diff.
//!
//! The companion invariant (checked here and in
//! `incremental_equivalence.rs`): filtering the decision records back
//! *out* of a provenance stream yields a byte-identical copy of the
//! default stream, so provenance can never perturb a replay.
//!
//! To regenerate after an intentional behavior change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_provenance
//! ```

use mbts::core::{AdmissionPolicy, Policy};
use mbts::site::{Site, SiteConfig};
use mbts::trace::{from_jsonl, to_jsonl, DecisionKind, TraceKind, Tracer};
use mbts::workload::{
    generate_trace, generate_workflows, BoundPolicy, MixConfig, WidthPolicy, WorkflowConfig,
    WorkflowSet, WorkflowShape,
};
use std::path::PathBuf;

/// Two value-aware policies × two seeds: enough to pin both the
/// cost-model-free (FirstPrice) and cost-model-backed (FirstReward)
/// explainer paths without bloating the fixture set.
fn roster() -> Vec<(&'static str, Policy)> {
    vec![
        ("first_price", Policy::FirstPrice),
        ("first_reward", Policy::first_reward(0.3, 0.01)),
    ]
}

const SEEDS: [u64; 2] = [101, 102];

/// Same overloaded two-processor mini-workload as `golden_trace.rs`, so
/// the provenance streams cover queueing, backfilling, preemption, and
/// expiry drops.
fn mini_mix() -> MixConfig {
    MixConfig::millennium_default()
        .with_tasks(16)
        .with_processors(2)
        .with_load_factor(2.5)
        .with_width(WidthPolicy::PowersOfTwo { max_exp: 1 })
        .with_bound(BoundPolicy::ProportionalPenalty { fraction: 0.5 })
}

fn site(policy: Policy) -> Site {
    Site::new(
        SiteConfig::new(2)
            .with_policy(policy)
            .with_preemption(true)
            .with_drop_expired(true),
    )
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn diff_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("golden-diff")
}

fn provenance_stream(policy: Policy, seed: u64) -> String {
    let trace = generate_trace(&mini_mix(), seed);
    let (_, tracer) = site(policy).run_trace_traced(&trace, Tracer::buffer().with_provenance());
    to_jsonl(&tracer.into_events().expect("buffer tracer keeps events"))
}

#[test]
fn golden_provenance_streams_match_committed_fixtures() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let mut failures = Vec::new();
    for (label, policy) in roster() {
        for seed in SEEDS {
            let name = format!("provenance_{label}_{seed}.jsonl");
            let fixture = golden_dir().join(&name);
            let actual = provenance_stream(policy, seed);
            if update {
                std::fs::create_dir_all(golden_dir()).expect("create fixture dir");
                std::fs::write(&fixture, &actual).expect("write fixture");
                continue;
            }
            let expected = std::fs::read_to_string(&fixture)
                .unwrap_or_else(|e| panic!("missing fixture {}: {e}", fixture.display()));
            if actual != expected {
                std::fs::create_dir_all(diff_dir()).expect("create diff dir");
                let diff_path = diff_dir().join(&name);
                std::fs::write(&diff_path, &actual).expect("write actual stream");
                let first_diff = actual
                    .lines()
                    .zip(expected.lines())
                    .position(|(a, e)| a != e)
                    .map(|i| i + 1)
                    .unwrap_or_else(|| actual.lines().count().min(expected.lines().count()) + 1);
                failures.push(format!(
                    "{name}: first divergence at line {first_diff} \
                     (actual written to {})",
                    diff_path.display()
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "provenance streams diverged (rerun with UPDATE_GOLDEN=1 to accept):\n{}",
        failures.join("\n")
    );
}

#[test]
fn provenance_fixtures_cover_every_site_decision_kind() {
    let mut dispatches = 0usize;
    let mut backfills = 0usize;
    let mut preempts = 0usize;
    let mut admissions = 0usize;
    for (label, _) in roster() {
        for seed in SEEDS {
            let path = golden_dir().join(format!("provenance_{label}_{seed}.jsonl"));
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
            let events = from_jsonl(&text)
                .unwrap_or_else(|e| panic!("fixture {} does not parse: {e:?}", path.display()));
            for ev in &events {
                let TraceKind::DecisionRecord {
                    decision,
                    considered,
                    candidates,
                } = &ev.kind
                else {
                    continue;
                };
                assert!(
                    !candidates.is_empty(),
                    "{label}_{seed}: empty candidate set"
                );
                assert!(
                    *considered >= candidates.len()
                        || candidates.iter().filter(|c| c.chosen).count()
                            > considered.saturating_sub(candidates.len()),
                    "{label}_{seed}: considered {considered} < {} kept",
                    candidates.len()
                );
                assert!(
                    candidates.windows(2).all(|w| w[0].rank <= w[1].rank),
                    "{label}_{seed}: candidates not in rank order"
                );
                assert!(
                    candidates.iter().all(|c| c.score.is_finite()
                        && c.pv.is_finite()
                        && c.cost.is_finite()
                        && c.slack.is_finite()),
                    "{label}_{seed}: non-finite decomposition leaked into fixture"
                );
                match decision {
                    DecisionKind::Dispatch => dispatches += 1,
                    DecisionKind::Backfill => backfills += 1,
                    DecisionKind::Preempt => preempts += 1,
                    DecisionKind::Admission => admissions += 1,
                    DecisionKind::BidSelection | DecisionKind::Shed => {}
                }
            }
        }
    }
    assert!(dispatches > 0, "no fixture records a dispatch decision");
    assert!(backfills > 0, "no fixture records a backfill decision");
    assert!(preempts > 0, "no fixture records a preemption decision");
    assert!(admissions > 0, "no fixture records an admission decision");
}

/// A small DAG workload with facets installed, so decision records are
/// workflow-stamped and admission sees successor structure.
fn wf_set(shape: WorkflowShape, seed: u64) -> WorkflowSet {
    generate_workflows(
        &WorkflowConfig::default_set()
            .with_workflows(4)
            .with_shape(shape)
            .with_processors(2)
            .with_load_factor(2.0),
        seed,
    )
}

fn wf_site(policy: Policy, set: &WorkflowSet) -> Site {
    Site::new(
        SiteConfig::new(2)
            .with_policy(policy)
            .with_admission(AdmissionPolicy::SlackThreshold { threshold: 0.0 })
            .with_workflow_facets(set.facets()),
    )
}

fn wf_provenance_stream(policy: Policy, shape: WorkflowShape, seed: u64) -> String {
    let set = wf_set(shape, seed);
    let (_, _, tracer) =
        wf_site(policy, &set).run_workflows_traced(&set, Tracer::buffer().with_provenance());
    to_jsonl(&tracer.into_events().expect("buffer tracer keeps events"))
}

fn wf_grid() -> Vec<(&'static str, WorkflowShape, &'static str, Policy)> {
    let mut grid = Vec::new();
    for (shape_label, shape) in [
        ("forkjoin", WorkflowShape::ForkJoin { width: 3 }),
        ("pipeline", WorkflowShape::Pipeline { depth: 4 }),
    ] {
        for (label, policy) in [
            ("first_price", Policy::FirstPrice),
            ("first_reward", Policy::first_reward(0.3, 0.01)),
        ] {
            grid.push((shape_label, shape, label, policy));
        }
    }
    grid
}

#[test]
fn golden_workflow_provenance_streams_match_committed_fixtures() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let mut failures = Vec::new();
    for (shape_label, shape, label, policy) in wf_grid() {
        let seed = 101u64;
        let name = format!("provenance_wf_{shape_label}_{label}_{seed}.jsonl");
        let fixture = golden_dir().join(&name);
        let actual = wf_provenance_stream(policy, shape, seed);
        if update {
            std::fs::create_dir_all(golden_dir()).expect("create fixture dir");
            std::fs::write(&fixture, &actual).expect("write fixture");
            continue;
        }
        let expected = std::fs::read_to_string(&fixture)
            .unwrap_or_else(|e| panic!("missing fixture {}: {e}", fixture.display()));
        if actual != expected {
            std::fs::create_dir_all(diff_dir()).expect("create diff dir");
            let diff_path = diff_dir().join(&name);
            std::fs::write(&diff_path, &actual).expect("write actual stream");
            failures.push(format!(
                "{name}: diverged (actual written to {})",
                diff_path.display()
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "workflow provenance streams diverged (rerun with UPDATE_GOLDEN=1 to accept):\n{}",
        failures.join("\n")
    );
}

#[test]
fn workflow_decision_records_carry_workflow_stamps() {
    // With facets installed, every candidate in every decision record
    // must name its owning workflow and critical-path membership — and
    // at least one stamped candidate must lie on a critical path.
    let mut stamped = 0usize;
    let mut critical = 0usize;
    for (shape_label, shape, label, policy) in wf_grid() {
        let text = wf_provenance_stream(policy, shape, 101);
        let events = from_jsonl(&text).expect("stream parses");
        for ev in &events {
            let TraceKind::DecisionRecord { candidates, .. } = &ev.kind else {
                continue;
            };
            for c in candidates {
                if c.task.is_some() {
                    assert!(
                        c.workflow.is_some(),
                        "{shape_label}/{label}: task candidate without a workflow stamp"
                    );
                    assert!(
                        c.critical.is_some(),
                        "{shape_label}/{label}: stamped candidate lacks critical flag"
                    );
                    stamped += 1;
                    if c.critical == Some(true) {
                        critical += 1;
                    }
                }
            }
        }
    }
    assert!(stamped > 0, "no workflow-stamped decision candidates");
    assert!(critical > 0, "no candidate on a critical path");
}

#[test]
fn filtering_workflow_decision_records_recovers_the_default_stream() {
    // Provenance can never perturb a workflow replay: the default
    // stream is a byte-identical subset, and the settlement reports
    // (earned totals, attribution) agree bitwise.
    for (shape_label, shape, label, policy) in wf_grid() {
        let set = wf_set(shape, 101);
        let (_, plain_report, plain) =
            wf_site(policy, &set).run_workflows_traced(&set, Tracer::buffer());
        let (_, prov_report, prov) =
            wf_site(policy, &set).run_workflows_traced(&set, Tracer::buffer().with_provenance());
        assert_eq!(
            plain_report, prov_report,
            "{shape_label}/{label}: provenance changed workflow settlement"
        );
        let plain_events = plain.into_events().expect("buffer keeps events");
        let filtered: Vec<_> = prov
            .into_events()
            .expect("buffer keeps events")
            .into_iter()
            .filter(|e| !matches!(e.kind, TraceKind::DecisionRecord { .. }))
            .collect();
        assert_eq!(
            to_jsonl(&filtered),
            to_jsonl(&plain_events),
            "{shape_label}/{label}: default stream is not a byte-identical \
             subset of the provenance stream"
        );
    }
}

#[test]
fn filtering_decision_records_recovers_the_default_stream() {
    for (label, policy) in roster() {
        for seed in SEEDS {
            let trace = generate_trace(&mini_mix(), seed);
            let (plain_outcome, plain) = site(policy).run_trace_traced(&trace, Tracer::buffer());
            let (prov_outcome, prov) =
                site(policy).run_trace_traced(&trace, Tracer::buffer().with_provenance());
            assert_eq!(
                plain_outcome.metrics.total_yield.to_bits(),
                prov_outcome.metrics.total_yield.to_bits(),
                "{label}_{seed}: provenance changed the replay"
            );
            let plain_events = plain.into_events().expect("buffer keeps events");
            let filtered: Vec<_> = prov
                .into_events()
                .expect("buffer keeps events")
                .into_iter()
                .filter(|e| !matches!(e.kind, TraceKind::DecisionRecord { .. }))
                .collect();
            assert_eq!(
                to_jsonl(&filtered),
                to_jsonl(&plain_events),
                "{label}_{seed}: default stream is not a byte-identical \
                 subset of the provenance stream"
            );
        }
    }
}
