//! Market-layer integration: negotiation, contracts, settlement, budgets
//! across the whole stack.

use mbts::core::{AdmissionPolicy, Policy};
use mbts::market::{BudgetConfig, ClientSelection, Economy, EconomyConfig, PricingStrategy};
use mbts::site::SiteConfig;
use mbts::workload::{generate_trace, MixConfig, Trace};

fn trace(tasks: usize, load: f64, seed: u64) -> Trace {
    generate_trace(
        &MixConfig::millennium_default()
            .with_tasks(tasks)
            .with_processors(12)
            .with_load_factor(load)
            .with_mean_decay(0.05),
        seed,
    )
}

fn economy(selection: ClientSelection) -> EconomyConfig {
    let mut cfg = EconomyConfig::uniform(
        3,
        SiteConfig::new(4)
            .with_policy(Policy::first_reward(0.2, 0.01))
            .with_admission(AdmissionPolicy::SlackThreshold { threshold: 0.0 }),
    );
    cfg.selection = selection;
    cfg
}

#[test]
fn settlements_match_site_yields() {
    let t = trace(500, 1.0, 60);
    let out = Economy::new(economy(ClientSelection::EarliestCompletion)).run_trace(&t);
    // Every contract settled; the sum of settlements equals the sum of
    // value-function yields recorded by the sites.
    assert!(out.contracts.iter().all(|c| c.is_settled()));
    assert!((out.total_settled - out.total_yield()).abs() < 1e-6 * (1.0 + out.total_yield().abs()));
    // Conservation across the market.
    assert_eq!(out.offered, t.len());
    assert_eq!(out.placed + out.unplaced + out.unfunded, out.offered);
    assert_eq!(out.contracts.len(), out.placed);
}

#[test]
fn contracts_record_accurate_completion_promises() {
    let t = trace(400, 0.6, 61);
    let out = Economy::new(economy(ClientSelection::EarliestCompletion)).run_trace(&t);
    // At light load most negotiated completion times should be honoured.
    let violations = out.violations();
    let rate = violations as f64 / out.contracts.len().max(1) as f64;
    assert!(
        rate < 0.35,
        "light load should honour most contracts, violation rate {rate}"
    );
    // Settled on-time contracts collect exactly the negotiated price.
    for c in &out.contracts {
        if !c.was_violated() {
            let settled = c.settled_price().unwrap();
            assert!(
                settled + 1e-6 >= c.negotiated_price,
                "on-time settlement {settled} below negotiated {}",
                c.negotiated_price
            );
        }
    }
}

#[test]
fn unplaced_tasks_do_not_create_contracts_or_yield() {
    // One tiny overloaded site rejects a lot.
    let t = trace(400, 4.0, 62);
    let mut cfg = EconomyConfig::uniform(
        1,
        SiteConfig::new(2)
            .with_policy(Policy::FirstPrice)
            .with_admission(AdmissionPolicy::SlackThreshold { threshold: 500.0 }),
    );
    cfg.selection = ClientSelection::EarliestCompletion;
    let out = Economy::new(cfg).run_trace(&t);
    assert!(out.unplaced > 0);
    assert_eq!(out.contracts.len(), out.placed);
    assert_eq!(
        out.per_site[0].metrics.accepted, out.placed,
        "the single site's accepts are exactly the placements"
    );
}

#[test]
fn second_price_charges_at_most_pay_bid_per_contract() {
    let t = trace(400, 1.0, 63);
    let mut pay = economy(ClientSelection::EarliestCompletion);
    pay.pricing = PricingStrategy::PayBid;
    let mut sp = economy(ClientSelection::EarliestCompletion);
    sp.pricing = PricingStrategy::second_price();
    let a = Economy::new(pay).run_trace(&t);
    let b = Economy::new(sp).run_trace(&t);
    // Identical placements (pricing doesn't affect scheduling)…
    assert_eq!(a.placed, b.placed);
    assert_eq!(a.total_settled, b.total_settled);
    // …but Vickrey-style charging never exceeds pay-bid in aggregate.
    assert!(b.total_paid <= a.total_paid + 1e-9);
}

#[test]
fn budgets_conserve_money() {
    let t = trace(500, 1.0, 64);
    let mut cfg = economy(ClientSelection::EarliestCompletion);
    cfg.budgets = Some(BudgetConfig {
        num_clients: 5,
        initial: 10_000.0,
        replenish_rate: 0.0,
        cap: 10_000.0,
    });
    let out = Economy::new(cfg).run_trace(&t);
    let spent: f64 = out.client_spend.iter().sum();
    assert!(
        (spent - out.total_paid).abs() < 1e-6 * (1.0 + out.total_paid.abs()),
        "client debits {spent} vs market charges {}",
        out.total_paid
    );
}

#[test]
fn tight_budgets_reduce_market_activity() {
    let t = trace(500, 1.0, 65);
    let rich = Economy::new(economy(ClientSelection::EarliestCompletion)).run_trace(&t);
    let mut poor_cfg = economy(ClientSelection::EarliestCompletion);
    poor_cfg.budgets = Some(BudgetConfig {
        num_clients: 5,
        initial: 30.0,
        replenish_rate: 0.005,
        cap: 100.0,
    });
    let poor = Economy::new(poor_cfg).run_trace(&t);
    assert!(
        poor.total_paid < rich.total_paid,
        "poor clients {} should transact less than rich {}",
        poor.total_paid,
        rich.total_paid
    );
    assert!(poor.unfunded > 0 || poor.placed < rich.placed);
}

#[test]
fn heterogeneous_sites_split_the_market() {
    let t = trace(600, 1.5, 66);
    let mut cfg = economy(ClientSelection::EarliestCompletion);
    cfg.sites = vec![
        SiteConfig::new(8).with_policy(Policy::first_reward(0.2, 0.01)),
        SiteConfig::new(2).with_policy(Policy::first_reward(0.2, 0.01)),
    ];
    let out = Economy::new(cfg).run_trace(&t);
    let big = out.per_site[0].metrics.accepted;
    let small = out.per_site[1].metrics.accepted;
    assert!(
        big > small,
        "the larger site ({big}) should win more than the smaller ({small})"
    );
    assert!(small > 0, "the smaller site still wins some placements");
}

#[test]
fn all_selection_rules_produce_valid_economies() {
    let t = trace(300, 1.2, 67);
    for selection in [
        ClientSelection::EarliestCompletion,
        ClientSelection::MaxSlack,
        ClientSelection::Random,
        ClientSelection::FirstResponder,
    ] {
        let out = Economy::new(economy(selection)).run_trace(&t);
        assert_eq!(out.placed + out.unplaced, out.offered);
        assert!(out.contracts.iter().all(|c| c.is_settled()));
        assert!(out.total_yield().is_finite());
    }
}
