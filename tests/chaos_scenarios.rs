//! Chaos-tier integration tests: the `tests/chaos/` scenario corpus run
//! through the orchestrator in-process — every fault class (disk,
//! network-adjacent serve journal, shard fabric) injected, every
//! invariant checked, and the `(seed, schedule)` determinism contract
//! enforced by the paired-run comparison inside `run_corpus`.

use mbts::chaos::{run_corpus, run_scenario};
use mbts::chaos_core::{FailAction, FailpointSpec, Scenario, ScenarioTarget};
use mbts::trace::TraceKind;
use std::collections::BTreeSet;
use std::path::Path;

fn corpus() -> Vec<Scenario> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/chaos");
    let loaded = Scenario::load_dir(&dir).expect("corpus dir loads");
    assert!(
        loaded.len() >= 8,
        "corpus shrank to {} scenarios — keep at least 8 spanning disk, \
         network, and shard classes",
        loaded.len()
    );
    loaded.into_iter().map(|(_, s)| s).collect()
}

/// The shipped corpus passes end to end: every scenario injects at least
/// one fault, every invariant holds, the three target classes are all
/// represented, and both runs of every scenario are byte-identical.
#[test]
fn shipped_corpus_is_green_and_deterministic() {
    let scenarios = corpus();
    let (report, events) = run_corpus(&scenarios, None).expect("corpus passes");
    assert_eq!(report.scenarios.len(), scenarios.len());
    assert!(report.deterministic);
    assert!(report.total_injected > 0, "a chaos corpus must inject");
    assert!(
        report.total_crashes > 0,
        "disk scenarios must force crash-recovery cycles"
    );

    let classes: BTreeSet<&str> = report.scenarios.iter().map(|s| s.class.as_str()).collect();
    assert_eq!(
        classes,
        BTreeSet::from(["market", "serve", "site"]),
        "corpus must span all three target classes"
    );
    for s in &report.scenarios {
        assert!(s.injected > 0, "scenario '{}' injected nothing", s.name);
        assert!(!s.checks.is_empty(), "scenario '{}' checked nothing", s.name);
    }

    // The trace stream carries both marker kinds so `mbts analyze` can
    // attribute yield lost per fault class.
    let injected = events
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::ChaosInjected { .. }))
        .count() as u64;
    let recovered = events
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::ChaosRecovered { .. }))
        .count();
    assert_eq!(
        injected, report.total_injected,
        "every fired fault must surface as a ChaosInjected event"
    );
    assert!(recovered > 0, "recoveries must be marked in the trace");
}

/// A seed override changes what fires (different streams) while each
/// overridden run still satisfies every invariant — chaos schedules are
/// reusable across seeds, which is what the CI soak exploits.
#[test]
fn seed_override_reseeds_all_streams() {
    let scenario = corpus()
        .into_iter()
        .find(|s| s.name == "site-short-writes")
        .expect("corpus names are stable");
    let (base, _) = run_scenario(&scenario, None).expect("base seed passes");
    let (re, _) = run_scenario(&scenario, Some(9001)).expect("override passes");
    assert_eq!(base.seed, 11);
    assert_eq!(re.seed, 9001);
    assert!(re.injected > 0, "override must still inject");
}

/// A schedule that names a failpoint the target never hits is a scenario
/// bug, not a silent no-op: the orchestrator fails it loudly.
#[test]
fn armed_but_never_hit_schedule_fails_loudly() {
    let scenario = Scenario {
        name: "misnamed-point".to_string(),
        seed: 5,
        target: ScenarioTarget::Site {
            tasks: 40,
            processors: 4,
            load: 1.0,
            policy: "fcfs".to_string(),
            snapshot_every: 32,
        },
        failpoints: vec![FailpointSpec::always(
            "durable.sink.wrote", // typo: no such point
            FailAction::Enospc,
        )],
        notes: String::new(),
    };
    let err = run_scenario(&scenario, None).expect_err("typo must not pass silently");
    assert!(
        err.contains("no failpoint ever fired"),
        "unexpected error: {err}"
    );
}

/// Shard-fabric chaos never touches a journal: the sharded scenario runs
/// crash-free, absorbs every dropped reply through the resend protocol,
/// and still reports the faults it injected.
#[test]
fn shard_scenarios_absorb_faults_without_crashing() {
    let scenario = corpus()
        .into_iter()
        .find(|s| s.name == "market-shard-drop")
        .expect("corpus names are stable");
    let (report, events) = run_scenario(&scenario, None).expect("shard scenario passes");
    assert_eq!(report.crashes, 0, "reply faults must not crash anything");
    assert!(report.injected > 0);
    assert!(
        report.by_point.keys().all(|k| k.starts_with("market.shard.reply.")),
        "only shard-fabric points may fire: {:?}",
        report.by_point
    );
    assert!(!events.is_empty());
}
