//! Property tests over the market layer: conservation and consistency of
//! the economy's books under arbitrary configurations.

use mbts::core::{AdmissionPolicy, Policy};
use mbts::market::{
    BudgetConfig, ClientSelection, Economy, EconomyConfig, MigrationConfig, PricingStrategy,
};
use mbts::site::SiteConfig;
use mbts::workload::{generate_trace, MixConfig};
use proptest::prelude::*;

fn arb_selection() -> impl Strategy<Value = ClientSelection> {
    prop_oneof![
        Just(ClientSelection::EarliestCompletion),
        Just(ClientSelection::MaxSlack),
        Just(ClientSelection::Random),
        Just(ClientSelection::FirstResponder),
    ]
}

fn arb_pricing() -> impl Strategy<Value = PricingStrategy> {
    prop_oneof![
        Just(PricingStrategy::PayBid),
        (0.0f64..=1.0)
            .prop_map(|reserve_fraction| PricingStrategy::SecondPrice { reserve_fraction }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The market's books close under arbitrary selection, pricing,
    /// budgets, and migration settings.
    #[test]
    fn economy_books_close(
        seed in any::<u64>(),
        load in 0.5f64..3.0,
        selection in arb_selection(),
        pricing in arb_pricing(),
        sites in 1usize..4,
        threshold in -100.0f64..400.0,
        budgets in any::<bool>(),
        migration in any::<bool>(),
    ) {
        let mix = MixConfig::millennium_default()
            .with_tasks(120)
            .with_processors(6)
            .with_load_factor(load)
            .with_mean_decay(0.05);
        let trace = generate_trace(&mix, seed);
        let mut cfg = EconomyConfig::uniform(
            sites,
            SiteConfig::new((6 / sites).max(1))
                .with_policy(Policy::first_reward(0.2, 0.01))
                .with_admission(AdmissionPolicy::SlackThreshold { threshold }),
        );
        cfg.selection = selection;
        cfg.pricing = pricing;
        cfg.seed = seed;
        if budgets {
            cfg.budgets = Some(BudgetConfig {
                num_clients: 3,
                initial: 500.0,
                replenish_rate: 0.1,
                cap: 2000.0,
            });
        }
        if migration {
            cfg.migration = Some(MigrationConfig {
                grace: 80.0,
                max_attempts: 2,
            });
        }
        let out = Economy::new(cfg).run_trace(&trace);

        // Task conservation at the market level.
        prop_assert_eq!(out.offered, 120);
        prop_assert_eq!(out.placed + out.unplaced + out.unfunded,
            out.offered + out.migrations);
        // Every contract is settled once the run drains.
        prop_assert!(out.contracts.iter().all(|c| c.is_settled()));
        prop_assert_eq!(out.contracts.len(), out.placed);
        // Cancellation accounting.
        prop_assert_eq!(out.migrations + out.abandoned, out.cancelled);
        // Per-site conservation including cancellations.
        for site in &out.per_site {
            let m = &site.metrics;
            prop_assert_eq!(m.completed + m.dropped + m.cancelled, m.accepted);
        }
        // Money is finite and consistent.
        prop_assert!(out.total_settled.is_finite());
        prop_assert!(out.total_paid.is_finite());
        // With budgets, client debits equal total charges.
        if budgets {
            let spent: f64 = out.client_spend.iter().sum();
            prop_assert!((spent - out.total_paid).abs()
                < 1e-6 * (1.0 + out.total_paid.abs()));
        }
        // Settlements equal yields when nothing was cancelled (cancelled
        // contracts settle penalties the sites never book as yield).
        if out.cancelled == 0 {
            prop_assert!((out.total_settled - out.total_yield()).abs()
                < 1e-6 * (1.0 + out.total_yield().abs()));
        }
    }

    /// Pricing never charges more than pay-bid, point by point.
    #[test]
    fn second_price_dominated_by_pay_bid(seed in any::<u64>(), load in 0.5f64..2.0) {
        let mix = MixConfig::millennium_default()
            .with_tasks(100)
            .with_processors(6)
            .with_load_factor(load)
            .with_mean_decay(0.05);
        let trace = generate_trace(&mix, seed);
        let base = EconomyConfig::uniform(
            2,
            SiteConfig::new(3)
                .with_policy(Policy::FirstPrice)
                .with_admission(AdmissionPolicy::SlackThreshold { threshold: 0.0 }),
        );
        let mut pay = base.clone();
        pay.pricing = PricingStrategy::PayBid;
        let mut sp = base;
        sp.pricing = PricingStrategy::second_price();
        let a = Economy::new(pay).run_trace(&trace);
        let b = Economy::new(sp).run_trace(&trace);
        prop_assert_eq!(a.placed, b.placed);
        prop_assert!(b.total_paid <= a.total_paid + 1e-9);
    }
}
