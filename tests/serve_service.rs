//! Live-service integration tests: the overload contract (backpressure,
//! deadline-aware shedding, Retry-After), graceful drain, and the chaos
//! story — `kill -9` a daemon mid-traffic, recover the journal offline,
//! restart on the same file, and drain it cleanly with SIGTERM.
//!
//! The in-process tests drive a [`mbts::serve::Server`] over real TCP
//! with a deliberately tiny admission queue and a throttled core so
//! overload is reproducible on any machine. The process-level test
//! spawns the actual `mbts` binary (`CARGO_BIN_EXE_mbts`), parses the
//! `listening on` banner, and kills it for real.

use mbts::serve::{self, ServeConfig, Server, ServiceMachine, ServiceRun};
use mbts::site::SiteConfig;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One round-trip against a live daemon: POST a JSON body, read the
/// response. Panics on framing errors — these tests own both ends.
fn post(addr: &str, target: &str, body: &str) -> serve::http::Response {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
    serve::http::write_post(&mut writer, target, body.as_bytes()).expect("write");
    writer.flush().expect("flush");
    let mut reader = BufReader::new(stream);
    serve::http::read_response(&mut reader)
        .expect("read")
        .expect("response")
}

fn get(addr: &str, target: &str) -> serve::http::Response {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
    serve::http::write_get(&mut writer, target).expect("write");
    writer.flush().expect("flush");
    let mut reader = BufReader::new(stream);
    serve::http::read_response(&mut reader)
        .expect("read")
        .expect("response")
}

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mbts-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

/// Under sustained 2x overload the daemon must stay responsive: a full
/// admission queue answers 429 + Retry-After instead of hanging, the
/// shed pass drops lowest-present-value submissions (journaled, with
/// provenance), `/healthz` keeps answering, and a `/drain` seals the
/// journal with a final snapshot. The journal then replays into an
/// analyze report that prices the regret of shedding.
#[test]
fn overload_stays_responsive_sheds_lowest_pv_and_drains_cleanly() {
    let journal = scratch("overload.mbtsj");
    let _ = std::fs::remove_file(&journal);
    let server = Server::start(ServeConfig {
        site: SiteConfig::new(2),
        journal: Some(journal.clone()),
        queue_capacity: 3,
        shed_threshold: 1,
        provenance: true,
        snapshot_every: 64,
        throttle: Duration::from_millis(1),
        ..ServeConfig::default()
    })
    .expect("server start");
    let addr = server.addr.to_string();

    let h = get(&addr, "/healthz");
    assert_eq!(h.status, 200);

    // 8 serial clients against a 3-slot queue with a 1ms/command core:
    // guaranteed queue-full rejections and a busy shed pass.
    let workers: Vec<_> = (0..8)
        .map(|w| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut ok = 0u64;
                let mut backpressured = 0u64;
                let mut shed = 0u64;
                let mut bad_429 = 0u64;
                for i in 0..60u64 {
                    // Low-value fast-decay bodies make juicy shed victims;
                    // interleave high-value ones so admissions happen too.
                    let value = if i % 3 == 0 { 0.5 } else { 50.0 };
                    let body = format!("{{\"runtime\":1.5,\"value\":{value},\"decay\":0.01}}");
                    let resp = post(&addr, "/submit", &body);
                    let text = String::from_utf8_lossy(&resp.body).to_string();
                    match resp.status {
                        200 => ok += 1,
                        429 => {
                            let retry_after = resp
                                .header("retry-after")
                                .and_then(|v| v.parse::<u64>().ok());
                            if retry_after.map(|s| s >= 1) != Some(true) {
                                bad_429 += 1;
                            }
                            if text.contains("shed") {
                                shed += 1;
                            } else {
                                backpressured += 1;
                            }
                        }
                        other => panic!("worker {w}: unexpected status {other}: {text}"),
                    }
                }
                (ok, backpressured, shed, bad_429)
            })
        })
        .collect();
    let mut ok = 0u64;
    let mut backpressured = 0u64;
    let mut shed = 0u64;
    let mut bad_429 = 0u64;
    for w in workers {
        let (o, b, s, bad) = w.join().expect("worker");
        ok += o;
        backpressured += b;
        shed += s;
        bad_429 += bad;
    }
    assert_eq!(bad_429, 0, "every 429 must carry Retry-After >= 1s");
    assert!(ok > 0, "no submission ever succeeded");
    assert!(
        backpressured + shed > 0,
        "2x overload never tripped the overload path"
    );

    // Liveness under load survived; stats still answers post-overload.
    let stats = get(&addr, "/stats");
    assert_eq!(stats.status, 200);

    // Graceful drain over the wire.
    let drain = post(&addr, "/drain", "{}");
    assert_eq!(drain.status, 200);
    let report = server.join().expect("drain");
    assert!(report.clean_drain, "drain must seal the journal");
    assert_eq!(report.violations, 0, "invariant auditors must stay clean");
    assert_eq!(report.summary.accepted + report.summary.rejected, ok);
    assert_eq!(report.summary.backpressured, backpressured);
    assert_eq!(report.summary.shed, shed);

    // The journal is the whole story: recover it offline and check the
    // books against the live report, then price the shed regret.
    let bytes = std::fs::read(&journal).expect("journal bytes");
    let (machine, _) = ServiceRun::recover(&bytes).expect("recover");
    assert_eq!(machine.applied(), report.applied);
    let c = *machine.counters();
    assert_eq!(c.accepted, report.summary.accepted);
    assert_eq!(c.shed, report.summary.shed);
    assert!(c.drains >= 1, "the drain marker must be journaled");

    if shed > 0 {
        let events = machine.into_trace_events().expect("provenance trace");
        let report = mbts::trace::analyze::analyze(
            "overload",
            &events,
            &mbts::trace::AnalyzeOptions::default(),
        );
        assert_eq!(
            report.decisions.shed, shed,
            "every shed is provenance-traced"
        );
        assert_eq!(report.admission.shed, shed);
        assert!(
            report.admission.shed_pv_lost > 0.0,
            "shedding real value must show up as regret"
        );
    }
    std::fs::remove_file(&journal).ok();
}

/// A daemon with no journal still serves (in-memory journal) and a
/// programmatic `request_stop` drains exactly like SIGTERM would.
#[test]
fn request_stop_drains_like_sigterm() {
    let server = Server::start(ServeConfig {
        site: SiteConfig::new(2),
        ..ServeConfig::default()
    })
    .expect("server start");
    let addr = server.addr.to_string();
    let resp = post(&addr, "/submit", "{\"runtime\":1.0,\"value\":5.0}");
    assert_eq!(resp.status, 200);
    server.request_stop();
    let report = server.join().expect("drain");
    assert!(report.clean_drain);
    assert_eq!(report.summary.accepted + report.summary.rejected, 1);

    // Post-drain, new connections are refused (listener is gone).
    assert!(TcpStream::connect(&addr).is_err());
}

/// Spawns the real `mbts` binary and returns (child, parsed address).
fn spawn_daemon(journal: &std::path::Path, extra: &[&str]) -> (std::process::Child, String) {
    let mut args = vec![
        "serve".to_string(),
        "--addr".to_string(),
        "127.0.0.1:0".to_string(),
        "--journal".to_string(),
        journal.display().to_string(),
    ];
    args.extend(extra.iter().map(|s| s.to_string()));
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_mbts"))
        .args(&args)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn mbts serve");
    let stdout = child.stdout.as_mut().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut banner = String::new();
    reader.read_line(&mut banner).expect("banner line");
    let addr = banner
        .trim()
        .strip_prefix("mbts serve listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
        .to_string();
    (child, addr)
}

/// The chaos contract, at process level: SIGKILL a daemon mid-traffic,
/// recover the torn journal offline — replaying the *entire* command
/// log from the genesis snapshot must reproduce the recovered state
/// byte-for-byte, and every client-acknowledged command must be in the
/// log. Then restart the daemon on the same journal, prove it serves,
/// and drain it with a real SIGTERM expecting exit code 0.
#[test]
fn sigkill_recovers_acknowledged_prefix_and_sigterm_drains() {
    let journal = scratch("chaos.mbtsj");
    let _ = std::fs::remove_file(&journal);

    // Phase 1: daemon under fire, then SIGKILL. fsync-every 1 makes
    // "acknowledged" mean "on disk", so the prefix check below is exact.
    let (mut child, addr) = spawn_daemon(
        &journal,
        &[
            "--fsync-every",
            "1",
            "--throttle-us",
            "300",
            "--processors",
            "2",
        ],
    );
    let clients: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                // Count acknowledged (status 200) submissions; stop at
                // the first socket error — that's the kill landing.
                let mut acked = 0u64;
                let Ok(stream) = TcpStream::connect(&addr) else {
                    return acked;
                };
                stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
                let Ok(read_half) = stream.try_clone() else {
                    return acked;
                };
                let mut reader = BufReader::new(read_half);
                let mut writer = BufWriter::new(stream);
                for _ in 0..400 {
                    let body = b"{\"runtime\":1.0,\"value\":5.0,\"decay\":0.01}";
                    if serve::http::write_post(&mut writer, "/submit", body).is_err()
                        || writer.flush().is_err()
                    {
                        break;
                    }
                    match serve::http::read_response(&mut reader) {
                        Ok(Some(resp)) if resp.status == 200 => acked += 1,
                        Ok(Some(_)) => {}
                        _ => break,
                    }
                }
                acked
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(400));
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");
    let acked: u64 = clients.into_iter().map(|c| c.join().expect("client")).sum();
    assert!(
        acked > 0,
        "no request was ever acknowledged before the kill"
    );

    // Phase 2: offline recovery. The incremental recovery (latest
    // snapshot + suffix) must equal a from-genesis replay of the full
    // command log, byte for byte — and hold every acknowledged command.
    let bytes = std::fs::read(&journal).expect("journal bytes");
    let (recovered, _) = ServiceRun::recover(&bytes).expect("recover after SIGKILL");
    let applied_at_kill = recovered.applied();

    let scan = mbts::durable::framing::scan(&bytes).expect("scan");
    let mut records = scan.records.into_iter();
    let (first_tag, genesis) = records.next().expect("genesis snapshot");
    assert_eq!(first_tag, mbts::durable::RecordTag::Snapshot);
    let snap: mbts::serve::ServiceSnapshot =
        serde_json::from_slice(genesis).expect("genesis parses");
    let mut replayed = ServiceMachine::from_snapshot(snap);
    let mut journaled_submits = 0u64;
    for (tag, payload) in records {
        if tag != mbts::durable::RecordTag::Event {
            continue;
        }
        let cmd: mbts::serve::Command = serde_json::from_slice(payload).expect("command parses");
        if matches!(cmd.kind, mbts::serve::CommandKind::Submit { .. }) {
            journaled_submits += 1;
        }
        replayed.apply(&cmd);
    }
    assert_eq!(
        replayed.snapshot_json(),
        recovered.snapshot_json(),
        "from-genesis replay diverged from incremental recovery"
    );
    assert!(
        journaled_submits >= acked,
        "journal holds {journaled_submits} submits but clients saw {acked} acks"
    );

    // Phase 3: restart on the same journal; the daemon must pick up the
    // acknowledged prefix, keep serving, and SIGTERM must drain it to
    // exit code 0 with a sealed journal.
    let (mut child, addr) = spawn_daemon(&journal, &["--processors", "2"]);
    let resp = post(&addr, "/submit", "{\"runtime\":1.0,\"value\":9.0}");
    assert_eq!(resp.status, 200, "restarted daemon must serve");
    let term = std::process::Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    let status = child.wait().expect("reap");
    assert!(
        status.success(),
        "SIGTERM drain must exit 0, got {status:?}"
    );

    let bytes = std::fs::read(&journal).expect("journal bytes");
    let (sealed, recovery) = ServiceRun::recover(&bytes).expect("recover sealed journal");
    assert_eq!(
        recovery.dropped_bytes, 0,
        "a clean drain leaves no torn tail"
    );
    assert!(sealed.applied() > applied_at_kill, "restart lost commands");
    assert!(sealed.counters().drains >= 1, "drain marker missing");
    std::fs::remove_file(&journal).ok();
}

/// Protocol garbage over a real socket must never crash, hang, or earn a
/// 2xx: each layer of parser damage — mangled request line, bad version,
/// unparseable or oversized content-length, colon-less header, invalid
/// UTF-8 where JSON belongs, and a body shorter than declared — draws a
/// 4xx (or an immediate close), and the daemon keeps serving well-formed
/// traffic afterwards.
#[test]
fn malformed_requests_draw_4xx_and_daemon_keeps_serving() {
    let server = Server::start(ServeConfig {
        site: SiteConfig::new(2),
        queue_capacity: 16,
        ..ServeConfig::default()
    })
    .expect("server start");
    let addr = server.addr.to_string();

    let garbage: &[(&str, &[u8])] = &[
        ("truncated request line", b"POST\r\n\r\n"),
        ("not http at all", b"\x00\x01\x02\x03\x04garbage\r\n\r\n"),
        ("bad version", b"POST /submit HTTP/9.9\r\nhost: mbts\r\n\r\n"),
        (
            "unparseable content-length",
            b"POST /submit HTTP/1.1\r\ncontent-length: nope\r\n\r\n",
        ),
        (
            "oversized content-length",
            b"POST /submit HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n",
        ),
        (
            "colon-less header",
            b"POST /submit HTTP/1.1\r\nno-colon-header\r\n\r\n",
        ),
        (
            "invalid utf-8 body",
            b"POST /submit HTTP/1.1\r\ncontent-length: 4\r\n\r\n\xff\xfe\xfd\xfc",
        ),
        (
            "body shorter than declared",
            b"POST /submit HTTP/1.1\r\ncontent-length: 64\r\n\r\n{}",
        ),
    ];

    for (label, wire) in garbage {
        let stream = TcpStream::connect(&addr).expect("connect");
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .ok();
        let mut w = stream.try_clone().expect("clone");
        // The daemon may slam the door mid-write; that is acceptable
        // garbage handling, not a test failure.
        if w.write_all(wire).is_err() || w.flush().is_err() {
            continue;
        }
        let mut reader = BufReader::new(stream);
        // A connection closed without a response is acceptable garbage
        // handling too — only an actual reply is held to the 4xx contract.
        if let Ok(Some(resp)) = serve::http::read_response(&mut reader) {
            assert!(
                (400..500).contains(&resp.status),
                "{label}: expected 4xx, got {} ({})",
                resp.status,
                String::from_utf8_lossy(&resp.body)
            );
        }

        // The daemon must still be alive and serving after every entry.
        let h = get(&addr, "/healthz");
        assert_eq!(h.status, 200, "{label}: daemon died");
    }

    // And real work still lands: a well-formed submit is accepted.
    let resp = post(&addr, "/submit", "{\"runtime\":1.0,\"value\":5.0,\"decay\":0.01}");
    assert_eq!(
        resp.status, 200,
        "well-formed submit after garbage: {}",
        String::from_utf8_lossy(&resp.body)
    );
}
