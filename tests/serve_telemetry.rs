//! Telemetry-plane integration tests: `GET /metrics` under live load.
//!
//! These run in their own test binary (process) because the telemetry
//! registry is process-global — the exact cross-checks below (acked
//! submissions vs `serve_requests_total{route="submit",outcome="ack"}`)
//! only hold when no unrelated server is bumping the same counters.
//! Within the file a mutex serializes the tests for the same reason.
//!
//! The contract under test, from the design's observability section:
//! scrapes are answered by worker threads from atomics only (never the
//! core thread, the queue, or the journal), counters are monotone under
//! concurrent writers, and the exposition stays internally consistent
//! (cumulative buckets, `_count` matching the counted requests).

use mbts::serve::{self, top, ServeConfig, Server, TopConfig};
use mbts::site::SiteConfig;
use mbts::trace::telemetry;
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Serializes the tests in this file: the registry is process-global.
static TELEMETRY: Mutex<()> = Mutex::new(());

fn get(addr: &str, target: &str) -> serve::http::Response {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
    serve::http::write_get(&mut writer, target).expect("write");
    writer.flush().expect("flush");
    let mut reader = BufReader::new(stream);
    serve::http::read_response(&mut reader)
        .expect("read")
        .expect("response")
}

fn post(addr: &str, target: &str, body: &str) -> serve::http::Response {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
    serve::http::write_post(&mut writer, target, body.as_bytes()).expect("write");
    writer.flush().expect("flush");
    let mut reader = BufReader::new(stream);
    serve::http::read_response(&mut reader)
        .expect("read")
        .expect("response")
}

/// Sum of `serve_requests_total` restricted to one (route, outcome).
fn requests(scrape: &top::Scrape, route: &str, outcome: &str) -> f64 {
    scrape
        .series("serve_requests_total")
        .filter(|s| s.label("route") == Some(route) && s.label("outcome") == Some(outcome))
        .map(|s| s.value)
        .sum()
}

/// `/metrics` must be a valid Prometheus text exposition with the
/// advertised content type, `/healthz` and `/readyz` must answer 200 on
/// a live daemon, and `/readyz` must stop saying ready once a drain is
/// in flight (503, or connection refused once the listener is gone).
#[test]
fn metrics_is_valid_exposition_and_readyz_reflects_drain() {
    let _guard = TELEMETRY.lock().unwrap();
    telemetry::reset();
    let server = Server::start(ServeConfig {
        site: SiteConfig::new(2),
        queue_capacity: 16,
        ..ServeConfig::default()
    })
    .expect("server start");
    let addr = server.addr.to_string();

    assert_eq!(get(&addr, "/healthz").status, 200);
    assert_eq!(get(&addr, "/readyz").status, 200);

    let ok = post(&addr, "/submit", "{\"runtime\":1.0,\"value\":5.0,\"decay\":0.01}");
    assert_eq!(ok.status, 200);

    let resp = get(&addr, "/metrics");
    assert_eq!(resp.status, 200);
    let ctype = resp.header("content-type").expect("content-type");
    assert!(
        ctype.starts_with("text/plain"),
        "exposition content type: {ctype}"
    );
    let text = String::from_utf8(resp.body).expect("utf-8 exposition");
    assert!(text.contains("# TYPE serve_requests_total counter"));
    assert!(text.contains("# TYPE serve_request_duration_seconds histogram"));
    let scrape = top::parse_exposition(&text);
    assert!(
        !scrape.samples.is_empty(),
        "exposition parsed to no samples:\n{text}"
    );
    assert_eq!(requests(&scrape, "submit", "ack"), 1.0, "one acked submit");
    // Gauges the dashboard keys on must be present.
    for gauge in [
        "serve_queue_depth",
        "serve_queue_capacity",
        "serve_uptime_seconds",
    ] {
        assert!(scrape.value(gauge).is_some(), "missing gauge {gauge}");
    }

    assert_eq!(post(&addr, "/drain", "{}").status, 200);
    // The drain window may be short: ready must no longer be 200 —
    // either an explicit 503 or, post-drain, a refused connection.
    if let Ok(stream) = TcpStream::connect(&addr) {
        stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
        let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
        if serve::http::write_get(&mut writer, "/readyz").is_ok() && writer.flush().is_ok() {
            let mut reader = BufReader::new(stream);
            if let Ok(Some(resp)) = serve::http::read_response(&mut reader) {
                assert_eq!(resp.status, 503, "draining daemon must not claim ready");
            }
        }
    }
    let report = server.join().expect("drain");
    assert!(report.clean_drain);
}

/// The concurrency contract: scrape `/metrics` continuously while four
/// pipelined connections flood submits. Every scrape must parse, the
/// request counters must be monotone across scrapes, and the final
/// post-drain scrape must agree exactly with what the clients saw
/// (acked = accepted submissions) and with itself (histogram `_count`
/// matches the counted requests; cumulative buckets are non-decreasing).
#[test]
fn concurrent_scrapes_under_flood_stay_monotonic_and_consistent() {
    let _guard = TELEMETRY.lock().unwrap();
    telemetry::reset();
    let server = Server::start(ServeConfig {
        site: SiteConfig::new(4),
        queue_capacity: 256,
        ..ServeConfig::default()
    })
    .expect("server start");
    let addr = server.addr.to_string();

    const CONNS: usize = 4;
    const BATCHES: usize = 10;
    const PIPELINE: usize = 8;
    let stop = Arc::new(AtomicBool::new(false));

    // Scraper: hammer /metrics while the flood runs, checking that the
    // total request count never goes backwards.
    let scraper = {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut scrapes = 0u64;
            let mut last_total = 0.0f64;
            while !stop.load(Ordering::Relaxed) {
                let scrape = serve::scrape(&addr).expect("mid-flood scrape");
                let total = scrape.sum("serve_requests_total");
                assert!(
                    total >= last_total,
                    "request counter went backwards: {total} < {last_total}"
                );
                last_total = total;
                scrapes += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
            scrapes
        })
    };

    let clients: Vec<_> = (0..CONNS)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(&addr).expect("connect");
                stream.set_nodelay(true).ok();
                stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut writer = BufWriter::new(stream);
                let mut acked = 0u64;
                let mut submitted = 0u64;
                for b in 0..BATCHES {
                    for i in 0..PIPELINE {
                        let value = 1.0 + ((c + b + i) % 7) as f64;
                        let body = format!(
                            "{{\"runtime\":1.0,\"value\":{value},\"decay\":0.01}}"
                        );
                        serve::http::write_post(&mut writer, "/submit", body.as_bytes())
                            .expect("write");
                        submitted += 1;
                    }
                    writer.flush().expect("flush");
                    for _ in 0..PIPELINE {
                        let resp = serve::http::read_response(&mut reader)
                            .expect("read")
                            .expect("response");
                        assert_eq!(resp.status, 200, "submit must land under this load");
                        if String::from_utf8_lossy(&resp.body).contains("\"accepted\":true") {
                            acked += 1;
                        }
                    }
                }
                (submitted, acked)
            })
        })
        .collect();
    let mut submitted = 0u64;
    let mut acked = 0u64;
    for c in clients {
        let (s, a) = c.join().expect("client");
        submitted += s;
        acked += a;
    }
    stop.store(true, Ordering::Relaxed);
    let scrapes = scraper.join().expect("scraper");
    assert!(scrapes > 0, "the scraper never got a scrape in");

    // Final scrape before drain: the books must balance exactly.
    let scrape = serve::scrape(&addr).expect("final scrape");
    let ack = requests(&scrape, "submit", "ack");
    let rejected = requests(&scrape, "submit", "rejected");
    assert_eq!(ack as u64, acked, "ack counter vs client-observed acks");
    assert_eq!(
        (ack + rejected) as u64,
        submitted,
        "every 200-answered submit is either ack or rejected"
    );
    // Internal consistency: every counted request recorded one latency
    // sample (no malformed traffic in this flood), and the cumulative
    // histogram is sane.
    let hist_count = scrape.value("serve_request_duration_seconds_count").unwrap_or(0.0);
    let counted = scrape.sum("serve_requests_total");
    assert_eq!(
        hist_count, counted,
        "latency samples vs counted requests (scrapes included)"
    );
    let mut last = 0.0f64;
    for s in scrape.series("serve_request_duration_seconds_bucket") {
        if s.label("le") == Some("+Inf") {
            assert_eq!(s.value, hist_count, "+Inf bucket must equal _count");
            continue;
        }
        assert!(
            s.value >= last,
            "cumulative buckets must be non-decreasing"
        );
        last = s.value;
    }
    let depth = scrape.value("serve_queue_depth").unwrap_or(f64::NAN);
    let cap = scrape.value("serve_queue_capacity").unwrap_or(f64::NAN);
    assert!(depth >= 0.0 && depth <= cap, "queue depth {depth} vs capacity {cap}");

    assert_eq!(post(&addr, "/drain", "{}").status, 200);
    let report = server.join().expect("drain");
    assert_eq!(report.summary.accepted, acked, "server books agree too");
}

/// `mbts top` end to end: two frames polled off a live daemon render
/// request rates, latency quantiles, and the queue sparkline.
#[test]
fn top_dashboard_renders_frames_from_a_live_daemon() {
    let _guard = TELEMETRY.lock().unwrap();
    telemetry::reset();
    let server = Server::start(ServeConfig {
        site: SiteConfig::new(2),
        queue_capacity: 32,
        ..ServeConfig::default()
    })
    .expect("server start");
    let addr = server.addr.to_string();
    for i in 0..5 {
        let body = format!("{{\"runtime\":1.0,\"value\":{}.0,\"decay\":0.01}}", i + 1);
        assert_eq!(post(&addr, "/submit", &body).status, 200);
    }
    let mut out = Vec::new();
    let frames = serve::run_top(
        &TopConfig {
            addr: addr.clone(),
            interval: 0.05,
            count: Some(2),
        },
        &mut out,
    )
    .expect("top frames");
    assert_eq!(frames, 2);
    let text = String::from_utf8(out).expect("utf-8 frames");
    assert!(text.contains("mbts top — uptime"), "frame lacks header:\n{text}");
    assert!(text.contains("/s total"), "frame lacks rates:\n{text}");
    assert!(text.contains("queue     depth"), "frame lacks queue line:\n{text}");
    assert!(text.contains("economy   pending"), "frame lacks economy line:\n{text}");
    server.request_stop();
    server.join().expect("drain");
}
