//! Seeded fault-injection soak: long replays under processor *and* site
//! outages with the always-on conservation auditor engaged. Any
//! [`AuditViolation`](mbts::site::AuditViolation) — task, processor, or
//! yield conservation — fails the run.
//!
//! Two tiers:
//!
//! * `soak_smoke_*` — small traces, always on, keeps `cargo test` fast;
//! * `soak_heavy_*` — ≥10k-event runs per (policy, seed); ignored in
//!   debug builds (run in release, as CI's soak job does).

use mbts::core::{AdmissionPolicy, Policy};
use mbts::sim::{FaultConfig, UpDown};
use mbts::site::{FaultPlan, LostWorkPolicy, Site, SiteConfig};
use mbts::workload::{fig67_mix, generate_trace, MixConfig};

/// The six policy configurations the fault sweep compares.
fn soak_policies(processors: usize) -> Vec<(&'static str, SiteConfig)> {
    vec![
        (
            "fcfs",
            SiteConfig::new(processors).with_policy(Policy::Fcfs),
        ),
        (
            "srpt",
            SiteConfig::new(processors).with_policy(Policy::Srpt),
        ),
        (
            "first_price",
            SiteConfig::new(processors).with_policy(Policy::FirstPrice),
        ),
        (
            "pv",
            SiteConfig::new(processors).with_policy(Policy::pv(0.01)),
        ),
        (
            "first_reward",
            SiteConfig::new(processors).with_policy(Policy::first_reward(0.3, 0.01)),
        ),
        (
            "first_reward_ac",
            SiteConfig::new(processors)
                .with_policy(Policy::first_reward(0.3, 0.01))
                .with_admission(AdmissionPolicy::SlackThreshold { threshold: 180.0 }),
        ),
    ]
}

/// Replays `mix` through every policy × `seeds`, with both processor and
/// site faults active and both lost-work policies exercised. Returns the
/// total number of events witnessed (arrivals + completions + crashes +
/// repairs), so callers can assert the soak was actually long.
fn soak(mix: &MixConfig, seeds: &[u64], processors: usize) -> u64 {
    let mut events = 0u64;
    for (label, base) in soak_policies(processors) {
        for &seed in seeds {
            for (wlabel, lost_work) in [
                ("restart", LostWorkPolicy::Restart),
                (
                    "checkpoint",
                    LostWorkPolicy::Checkpoint {
                        interval: 25.0,
                        restart_penalty: 2.0,
                    },
                ),
            ] {
                let trace = generate_trace(mix, seed);
                let faults = FaultConfig {
                    processor: Some(UpDown::exponential(4_000.0, 120.0)),
                    site: None,
                };
                let plan = FaultPlan::new(faults, seed.wrapping_mul(0x9E37_79B9) ^ 0x50A4);
                let outcome =
                    Site::new(base.clone().with_lost_work(lost_work).with_preemption(true))
                        .run_trace_with_faults(&trace, &plan);
                assert!(
                    outcome.violations.is_empty(),
                    "audit violations under {label}/{wlabel} seed {seed}: {:?}",
                    outcome.violations
                );
                let m = &outcome.metrics;
                assert_eq!(
                    m.completed + m.dropped + m.cancelled + m.orphaned,
                    m.accepted,
                    "task conservation after drain: {label}/{wlabel} seed {seed}"
                );
                assert_eq!(
                    m.crashed_procs, m.repaired_procs,
                    "all crashed processors must be repaired by drain: \
                     {label}/{wlabel} seed {seed}"
                );
                events += m.accepted as u64 + m.completed as u64 + m.crashed_procs;
            }
        }
    }
    events
}

#[test]
fn soak_smoke_all_policies_keep_a_clean_audit() {
    let mix = fig67_mix(1.6).with_tasks(250).with_processors(8);
    let events = soak(&mix, &[1, 2], 8);
    assert!(events > 1_000, "smoke soak saw only {events} events");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavy soak: run in release (CI soak job)")]
fn soak_heavy_ten_k_events_per_policy_and_seed() {
    // ≥10k events per (policy, seed): 4000 accepted-ish tasks each with
    // an arrival and a completion/drop, plus crash/repair traffic.
    let mix = fig67_mix(1.6).with_tasks(4_000).with_processors(16);
    let seeds = [101, 202, 303];
    let events = soak(&mix, &seeds, 16);
    assert!(
        events as usize > 10_000 * seeds.len(),
        "heavy soak saw only {events} events"
    );
}
