//! The incremental scheduling core is an optimization, not a behavior
//! change: with `incremental = true` (the default) the site must produce
//! byte-identical results to the rebuild-per-event baseline
//! (`with_incremental(false)`), and the pool-driven dynamic candidate
//! builder must emit the exact schedule a from-scratch rescore emits —
//! same picks, same tie-breaks, same floating-point bits.

use mbts::core::{
    build_candidate, AdmissionPolicy, CostModel, Job, Policy, ScheduleEntry, ScheduleMode, ScoreCtx,
};
use mbts::market::{
    Economy, EconomyConfig, EconomyRun, MarketFaultConfig, MigrationConfig, ShardExecMode,
    ShardedEconomyRun,
};
use mbts::sim::{FaultConfig, Time, UpDown};
use mbts::site::{FaultPlan, Site, SiteConfig};
use mbts::trace::Tracer;
use mbts::workload::{
    generate_trace, generate_workflows, BoundPolicy, MixConfig, Trace, WidthPolicy, WorkflowConfig,
    WorkflowSet, WorkflowShape,
};
use proptest::prelude::*;

/// Every dispatch policy the paper evaluates.
fn all_policies() -> Vec<(&'static str, Policy)> {
    vec![
        ("fcfs", Policy::Fcfs),
        ("srpt", Policy::Srpt),
        ("swpt", Policy::Swpt),
        ("first_price", Policy::FirstPrice),
        ("edf", Policy::EarliestDeadline),
        ("pv", Policy::pv(0.01)),
        ("first_reward", Policy::first_reward(0.3, 0.01)),
    ]
}

fn assert_sites_equivalent(cfg: SiteConfig, mix: &MixConfig, seed: u64, label: &str) {
    let trace = generate_trace(mix, seed);
    let fast = Site::new(cfg.clone()).run_trace(&trace);
    let slow = Site::new(cfg.with_incremental(false)).run_trace(&trace);
    assert_eq!(
        fast.outcomes, slow.outcomes,
        "outcomes diverged: {label} seed {seed}"
    );
    assert_eq!(
        fast.metrics.total_yield.to_bits(),
        slow.metrics.total_yield.to_bits(),
        "total yield diverged: {label} seed {seed}"
    );
}

#[test]
fn incremental_site_matches_rebuild_for_every_policy() {
    let mix = MixConfig::millennium_default()
        .with_tasks(300)
        .with_processors(4)
        .with_load_factor(1.6);
    for (label, policy) in all_policies() {
        for seed in [11, 12, 13] {
            let cfg = SiteConfig::new(4).with_policy(policy);
            assert_sites_equivalent(cfg, &mix, seed, label);
        }
    }
}

#[test]
fn incremental_site_matches_rebuild_with_preemption_and_admission() {
    let mix = MixConfig::millennium_default()
        .with_tasks(250)
        .with_processors(4)
        .with_load_factor(2.0)
        .with_bound(BoundPolicy::ZeroFloor);
    for (label, policy) in all_policies() {
        let cfg = SiteConfig::new(4)
            .with_policy(policy)
            .with_preemption(true)
            .with_admission(AdmissionPolicy::SlackThreshold { threshold: 150.0 });
        assert_sites_equivalent(cfg, &mix, 21, label);
    }
}

#[test]
fn incremental_site_matches_rebuild_on_gang_workloads() {
    // Gangs exercise the backfilling path, which walks the full score
    // vector — the pool materializes it lazily only on this path.
    let mix = MixConfig::millennium_default()
        .with_tasks(250)
        .with_processors(8)
        .with_load_factor(1.8)
        .with_width(WidthPolicy::PowersOfTwo { max_exp: 3 });
    for (label, policy) in all_policies() {
        for backfilling in [true, false] {
            let cfg = SiteConfig::new(8)
                .with_policy(policy)
                .with_backfilling(backfilling);
            assert_sites_equivalent(cfg, &mix, 31, label);
        }
    }
}

#[test]
fn incremental_site_matches_rebuild_with_bounded_penalties_and_expiry() {
    // Bounded penalties give finite expiry windows, so the incremental
    // cost model's BTree path and the expired-entry skip both engage;
    // drop_expired removes tasks from the middle of the pool.
    let mix = MixConfig::millennium_default()
        .with_tasks(300)
        .with_processors(4)
        .with_load_factor(2.2)
        .with_bound(BoundPolicy::ProportionalPenalty { fraction: 0.5 });
    for (label, policy) in all_policies() {
        for drop_expired in [false, true] {
            let cfg = SiteConfig::new(4)
                .with_policy(policy)
                .with_drop_expired(drop_expired);
            assert_sites_equivalent(cfg, &mix, 41, label);
        }
    }
}

#[test]
fn zero_fault_replay_is_byte_identical_to_plain_replay() {
    // The fault layer must be pay-for-what-you-use: an empty fault
    // config routes through the exact same event sequence as a plain
    // replay — same outcome stream, same floating-point bits, and a
    // clean audit — for every policy the paper evaluates.
    let mix = MixConfig::millennium_default()
        .with_tasks(300)
        .with_processors(4)
        .with_load_factor(1.8)
        .with_width(WidthPolicy::PowersOfTwo { max_exp: 2 });
    for (label, policy) in all_policies() {
        for seed in [11, 12] {
            let trace = generate_trace(&mix, seed);
            let cfg = SiteConfig::new(4).with_policy(policy).with_preemption(true);
            let plain = Site::new(cfg.clone()).run_trace(&trace);
            let faulted = Site::new(cfg)
                .run_trace_with_faults(&trace, &FaultPlan::new(FaultConfig::none(), 99));
            assert_eq!(
                plain.outcomes, faulted.outcomes,
                "outcome stream diverged: {label} seed {seed}"
            );
            assert_eq!(
                plain.metrics.total_yield.to_bits(),
                faulted.metrics.total_yield.to_bits(),
                "total yield diverged: {label} seed {seed}"
            );
            assert_eq!(
                plain.metrics.completed, faulted.metrics.completed,
                "{label} seed {seed}"
            );
            assert_eq!(faulted.metrics.crashed_procs, 0, "{label} seed {seed}");
            assert!(faulted.violations.is_empty(), "{label} seed {seed}");
        }
    }
}

#[test]
fn traced_replay_is_bit_identical_to_untraced_replay() {
    // The structured-event layer must be observational only: with any
    // sink installed (full buffer, bounded ring, or metrics registry)
    // the replay takes the same decisions, produces the same outcome
    // stream, and earns the same floating-point yield bits as with
    // tracing off.
    use mbts::trace::{TraceKind, Tracer};
    let mix = MixConfig::millennium_default()
        .with_tasks(300)
        .with_processors(4)
        .with_load_factor(1.8)
        .with_width(WidthPolicy::PowersOfTwo { max_exp: 2 })
        .with_bound(BoundPolicy::ProportionalPenalty { fraction: 0.5 });
    for (label, policy) in all_policies() {
        for seed in [11, 12] {
            let trace = generate_trace(&mix, seed);
            let cfg = SiteConfig::new(4)
                .with_policy(policy)
                .with_preemption(true)
                .with_drop_expired(true);
            let plain = Site::new(cfg.clone()).run_trace(&trace);
            for tracer in [
                Tracer::buffer(),
                Tracer::ring(64),
                Tracer::metrics(label, 4),
            ] {
                let (traced, tracer) = Site::new(cfg.clone()).run_trace_traced(&trace, tracer);
                assert_eq!(
                    plain.outcomes, traced.outcomes,
                    "outcome stream diverged under tracing: {label} seed {seed}"
                );
                assert_eq!(
                    plain.metrics.total_yield.to_bits(),
                    traced.metrics.total_yield.to_bits(),
                    "total yield diverged under tracing: {label} seed {seed}"
                );
                assert_eq!(
                    plain.metrics.completed, traced.metrics.completed,
                    "completions diverged under tracing: {label} seed {seed}"
                );
                assert_eq!(
                    plain.metrics.preemptions, traced.metrics.preemptions,
                    "preemptions diverged under tracing: {label} seed {seed}"
                );
                // The buffer sink really captured the replay.
                if let Some(events) = tracer.into_events() {
                    let completions = events
                        .iter()
                        .filter(|e| matches!(e.kind, TraceKind::Completed { .. }))
                        .count();
                    assert_eq!(
                        completions as u64, plain.metrics.completed as u64,
                        "trace completions diverged: {label} seed {seed}"
                    );
                }
            }
        }
    }
}

#[test]
fn provenance_off_streams_are_byte_identical_to_default_streams() {
    // The provenance level must be strictly additive: with it *off*
    // (the default) the serialized event stream carries not one byte of
    // the new decision-record machinery, and with it *on* the stream is
    // exactly the default stream with `DecisionRecord` lines spliced in
    // — never a reordering, never a perturbed float.
    use mbts::trace::{to_jsonl, TraceKind, Tracer};
    let mix = MixConfig::millennium_default()
        .with_tasks(300)
        .with_processors(4)
        .with_load_factor(1.8)
        .with_width(WidthPolicy::PowersOfTwo { max_exp: 2 })
        .with_bound(BoundPolicy::ProportionalPenalty { fraction: 0.5 });
    for (label, policy) in all_policies() {
        for seed in [11, 12] {
            let trace = generate_trace(&mix, seed);
            let cfg = SiteConfig::new(4)
                .with_policy(policy)
                .with_preemption(true)
                .with_drop_expired(true)
                .with_admission(AdmissionPolicy::SlackThreshold { threshold: 150.0 });
            let (plain_outcome, plain) =
                Site::new(cfg.clone()).run_trace_traced(&trace, Tracer::buffer());
            let (prov_outcome, prov) =
                Site::new(cfg).run_trace_traced(&trace, Tracer::buffer().with_provenance());
            assert_eq!(
                plain_outcome.outcomes, prov_outcome.outcomes,
                "outcome stream diverged under provenance: {label} seed {seed}"
            );
            assert_eq!(
                plain_outcome.metrics.total_yield.to_bits(),
                prov_outcome.metrics.total_yield.to_bits(),
                "total yield diverged under provenance: {label} seed {seed}"
            );
            let plain_jsonl = to_jsonl(&plain.into_events().expect("buffer keeps events"));
            let prov_events = prov.into_events().expect("buffer keeps events");
            assert!(
                prov_events
                    .iter()
                    .any(|e| matches!(e.kind, TraceKind::DecisionRecord { .. })),
                "provenance stream recorded no decisions: {label} seed {seed}"
            );
            let filtered: Vec<_> = prov_events
                .into_iter()
                .filter(|e| !matches!(e.kind, TraceKind::DecisionRecord { .. }))
                .collect();
            assert_eq!(
                to_jsonl(&filtered),
                plain_jsonl,
                "provenance-off stream is not byte-identical: {label} seed {seed}"
            );
        }
    }
}

#[test]
fn traced_faulty_replay_is_bit_identical_to_untraced_faulty_replay() {
    use mbts::sim::UpDown;
    use mbts::trace::Tracer;
    let mix = MixConfig::millennium_default()
        .with_tasks(200)
        .with_processors(4)
        .with_load_factor(1.5);
    let faults = FaultConfig {
        processor: Some(UpDown::exponential(3_000.0, 150.0)),
        site: None,
    };
    for (label, policy) in all_policies() {
        let trace = generate_trace(&mix, 17);
        let cfg = SiteConfig::new(4).with_policy(policy);
        let plan = FaultPlan::new(faults.clone(), 5);
        let plain = Site::new(cfg.clone()).run_trace_with_faults(&trace, &plan);
        let (traced, _) =
            Site::new(cfg).run_trace_with_faults_traced(&trace, &plan, Tracer::buffer());
        assert_eq!(plain.outcomes, traced.outcomes, "{label}");
        assert_eq!(
            plain.metrics.total_yield.to_bits(),
            traced.metrics.total_yield.to_bits(),
            "{label}"
        );
        assert_eq!(plain.metrics.crashed_procs, traced.metrics.crashed_procs);
    }
}

/// The pre-pool dynamic layout algorithm, verbatim: rescore the whole
/// remaining queue (rebuilding the cost model) at every dispatch
/// instant, pick the argmax, and place it on the earliest-free
/// processors via the original repeated-min scan.
fn reference_dynamic(policy: &Policy, free: &mut [Time], jobs: &[Job]) -> Vec<ScheduleEntry> {
    let mut remaining: Vec<Job> = jobs.to_vec();
    let mut entries = Vec::with_capacity(jobs.len());
    while !remaining.is_empty() {
        let now = free.iter().copied().min().expect("non-empty");
        let model = if policy.needs_cost_model() {
            Some(CostModel::build(now, &remaining))
        } else {
            None
        };
        let ctx = match &model {
            Some(m) => ScoreCtx::with_cost(now, m),
            None => ScoreCtx::simple(now),
        };
        let best = policy.select(&remaining, &ctx).expect("non-empty queue");
        let job = remaining.swap_remove(best);

        // Original placement: width × processors repeated-min scan.
        let width = job.spec.width;
        let mut chosen: Vec<usize> = Vec::with_capacity(width);
        for _ in 0..width {
            let mut best_p = usize::MAX;
            for (i, t) in free.iter().enumerate() {
                if chosen.contains(&i) {
                    continue;
                }
                if best_p == usize::MAX || *t < free[best_p] {
                    best_p = i;
                }
            }
            chosen.push(best_p);
        }
        let start = chosen.iter().map(|&i| free[i]).max().expect("width >= 1");
        let completion = start + job.rpt;
        for &i in &chosen {
            free[i] = completion;
        }
        entries.push(ScheduleEntry {
            id: job.id(),
            start,
            completion,
            expected_yield: job.spec.yield_at(completion),
            decay: job.spec.decay,
        });
    }
    entries
}

#[test]
fn dynamic_candidate_matches_from_scratch_rescore_bit_for_bit() {
    let mix = MixConfig::millennium_default()
        .with_tasks(120)
        .with_processors(6)
        .with_load_factor(1.5)
        .with_width(WidthPolicy::PowersOfTwo { max_exp: 2 })
        .with_bound(BoundPolicy::ProportionalPenalty { fraction: 0.4 });
    for (label, policy) in all_policies() {
        for seed in [7, 8, 9] {
            let trace = generate_trace(&mix, seed);
            let now = Time::new(5.0);
            let jobs: Vec<Job> = trace.tasks.iter().map(|s| Job::new(*s)).collect();
            // Staggered free times so placement order matters.
            let free: Vec<Time> = (0..6).map(|i| Time::new(i as f64 * 0.75)).collect();

            let candidate = build_candidate(&policy, ScheduleMode::Dynamic, now, &free, &jobs);
            let mut ref_free: Vec<Time> = free.iter().map(|&t| t.max(now)).collect();
            let expected = reference_dynamic(&policy, &mut ref_free, &jobs);

            assert_eq!(
                candidate.entries.len(),
                expected.len(),
                "entry count diverged: {label} seed {seed}"
            );
            for (got, want) in candidate.entries.iter().zip(&expected) {
                assert_eq!(got.id, want.id, "pick order diverged: {label} seed {seed}");
                assert_eq!(
                    got.start.as_f64().to_bits(),
                    want.start.as_f64().to_bits(),
                    "start diverged for {}: {label} seed {seed}",
                    got.id
                );
                assert_eq!(
                    got.completion.as_f64().to_bits(),
                    want.completion.as_f64().to_bits(),
                    "completion diverged for {}: {label} seed {seed}",
                    got.id
                );
                assert_eq!(
                    got.expected_yield.to_bits(),
                    want.expected_yield.to_bits(),
                    "yield diverged for {}: {label} seed {seed}",
                    got.id
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Sharded-market equivalence: the conservative-PDES runner is an
// optimization, not a behavior change. Whatever the shard count, the
// execution mode, or where a run pauses for a snapshot, the final
// `EconomySnapshot` must be byte-identical to the serial engine's.
// ---------------------------------------------------------------------------

fn market_trace(tasks: usize, seed: u64) -> Trace {
    generate_trace(
        &MixConfig::millennium_default()
            .with_tasks(tasks)
            .with_processors(16)
            .with_load_factor(1.5),
        seed,
    )
}

/// A hostile economy: faults on both processor and site granularity,
/// migration with bounded attempts, jittered orphan rebids — every
/// coordinator RNG stream and money-conservation auditor engaged.
fn market_cfg(sites: usize, policy: Policy) -> EconomyConfig {
    let mut c = EconomyConfig::uniform(
        sites,
        SiteConfig::new(2)
            .with_policy(policy)
            .with_admission(AdmissionPolicy::SlackThreshold { threshold: 0.0 }),
    );
    c.migration = Some(MigrationConfig {
        grace: 50.0,
        max_attempts: 3,
    });
    let mut faults = MarketFaultConfig::new(
        FaultConfig {
            processor: Some(UpDown::exponential(2_500.0, 120.0)),
            site: Some(UpDown::exponential(15_000.0, 500.0)),
        },
        5,
    );
    faults.orphan_backoff = 30.0;
    faults.orphan_jitter = 0.25;
    c.faults = Some(faults);
    c
}

fn serial_snapshot_json(cfg: &EconomyConfig, trace: &Trace) -> String {
    let mut run = EconomyRun::new(cfg.clone(), trace, Tracer::Off);
    while run.step() {}
    serde_json::to_string(&run.snapshot()).expect("serialize serial snapshot")
}

fn sharded_snapshot_json(
    cfg: &EconomyConfig,
    trace: &Trace,
    shards: usize,
    mode: ShardExecMode,
) -> String {
    let mut run = ShardedEconomyRun::new(cfg.clone(), trace, Tracer::Off, shards, mode);
    while run.step() {}
    serde_json::to_string(&run.snapshot()).expect("serialize sharded snapshot")
}

#[test]
fn sharded_market_snapshots_match_serial_for_every_policy() {
    for (label, policy) in all_policies() {
        for seed in [71, 72, 73] {
            let trace = market_trace(160, seed);
            let cfg = market_cfg(8, policy);
            let serial = serial_snapshot_json(&cfg, &trace);
            for shards in [1, 2, 4, 8] {
                let sharded = sharded_snapshot_json(&cfg, &trace, shards, ShardExecMode::Inline);
                assert_eq!(
                    serial, sharded,
                    "final snapshot diverged: {label} seed {seed} shards {shards}"
                );
            }
        }
    }
}

#[test]
fn threaded_sharded_market_matches_serial_outcome_and_snapshot() {
    for (label, policy) in all_policies() {
        let trace = market_trace(200, 74);
        let cfg = market_cfg(8, policy);
        let eco = Economy::new(cfg.clone());
        let serial_outcome = eco.run_trace(&trace);
        let serial_snap = serial_snapshot_json(&cfg, &trace);
        for shards in [2, 8] {
            let (outcome, _) =
                eco.run_trace_sharded(&trace, Tracer::Off, shards, ShardExecMode::Threads);
            assert_eq!(
                serial_outcome, outcome,
                "outcome diverged: {label} x{shards}"
            );
            assert!(
                outcome.audit_violations.is_empty(),
                "auditors flagged the sharded run: {label} x{shards}"
            );
            let snap = sharded_snapshot_json(&cfg, &trace, shards, ShardExecMode::Threads);
            assert_eq!(serial_snap, snap, "snapshot diverged: {label} x{shards}");
        }
    }
}

// ---------------------------------------------------------------------------
// Workflow equivalence: DAG workloads run through the market must be an
// overlay, not a fork of the engine. Whatever the shard count, the fault
// plan, or the provenance level, the final snapshot — workflow ledger
// included — must match the serial engine byte for byte.
// ---------------------------------------------------------------------------

fn equivalence_wf_set(seed: u64) -> WorkflowSet {
    generate_workflows(
        &WorkflowConfig::default_set()
            .with_workflows(8)
            .with_shape(WorkflowShape::RandomLayered {
                layers: 3,
                width: 2,
                edge_prob: 0.5,
            })
            .with_processors(4)
            .with_load_factor(2.0),
        seed,
    )
}

/// A workflow economy, optionally hostile: successor-aware sites, the
/// release/settle overlay installed, and (when `faulted`) processor and
/// site crashes with migration and jittered orphan rebids.
fn wf_market_cfg(sites: usize, policy: Policy, faulted: bool, set: &WorkflowSet) -> EconomyConfig {
    let mut c = EconomyConfig::uniform(
        sites,
        SiteConfig::new(2)
            .with_policy(policy)
            .with_admission(AdmissionPolicy::SlackThreshold { threshold: 0.0 })
            .with_workflow_facets(set.facets()),
    );
    c.workflows = Some(set.clone());
    if faulted {
        c.migration = Some(MigrationConfig {
            grace: 50.0,
            max_attempts: 3,
        });
        let mut faults = MarketFaultConfig::new(
            FaultConfig {
                processor: Some(UpDown::exponential(2_500.0, 120.0)),
                site: Some(UpDown::exponential(15_000.0, 500.0)),
            },
            5,
        );
        faults.orphan_backoff = 30.0;
        faults.orphan_jitter = 0.25;
        c.faults = Some(faults);
    }
    c
}

#[test]
fn workflow_sharded_market_matches_serial_for_every_policy() {
    for (label, policy) in all_policies() {
        for faulted in [false, true] {
            let set = equivalence_wf_set(81);
            let trace = set.trace();
            let cfg = wf_market_cfg(8, policy, faulted, &set);
            let serial = serial_snapshot_json(&cfg, &trace);
            for shards in [1, 2, 4, 8] {
                let sharded = sharded_snapshot_json(&cfg, &trace, shards, ShardExecMode::Inline);
                assert_eq!(
                    serial, sharded,
                    "workflow snapshot diverged: {label} faulted={faulted} shards {shards}"
                );
            }
            // The threaded executor takes the same path once windows open.
            let threaded = sharded_snapshot_json(&cfg, &trace, 4, ShardExecMode::Threads);
            assert_eq!(
                serial, threaded,
                "workflow snapshot diverged threaded: {label} faulted={faulted}"
            );
        }
    }
}

#[test]
fn workflow_provenance_off_streams_are_byte_identical_to_default_streams() {
    // Same additivity contract as the flat-task version, but over a DAG
    // market: provenance must not perturb release order, settlement, or
    // a single float in the workflow ledger.
    use mbts::trace::{to_jsonl, TraceKind, Tracer};
    for (label, policy) in all_policies() {
        let set = equivalence_wf_set(82);
        let trace = set.trace();
        let cfg = wf_market_cfg(4, policy, false, &set);
        let eco = Economy::new(cfg);
        let (plain_outcome, plain) = eco.run_trace_traced(&trace, Tracer::buffer());
        let (prov_outcome, prov) = eco.run_trace_traced(&trace, Tracer::buffer().with_provenance());
        assert_eq!(
            plain_outcome, prov_outcome,
            "outcome diverged under provenance: {label}"
        );
        assert_eq!(
            plain_outcome.workflows, prov_outcome.workflows,
            "workflow ledger diverged under provenance: {label}"
        );
        let plain_jsonl = to_jsonl(&plain.into_events().expect("buffer keeps events"));
        let filtered: Vec<_> = prov
            .into_events()
            .expect("buffer keeps events")
            .into_iter()
            .filter(|e| !matches!(e.kind, TraceKind::DecisionRecord { .. }))
            .collect();
        assert_eq!(
            to_jsonl(&filtered),
            plain_jsonl,
            "provenance-off stream is not byte-identical: {label}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any barrier-respecting interleaving converges to the serial
    /// state: pause a sharded run at an arbitrary event boundary, then
    /// finish it (a) in place, (b) resumed under a *different* shard
    /// count, and (c) resumed in the serial engine. All three final
    /// snapshots must be byte-identical to an uninterrupted serial run.
    #[test]
    fn barrier_respecting_interleavings_yield_byte_identical_snapshots(
        seed in 1u64..500,
        policy_idx in 0usize..7,
        shards_a in 1usize..=8,
        shards_b in 1usize..=8,
        threaded in any::<bool>(),
        pause_after in 1u64..400,
    ) {
        let (_, policy) = all_policies()[policy_idx];
        let trace = market_trace(120, seed);
        let cfg = market_cfg(6, policy);
        let serial = serial_snapshot_json(&cfg, &trace);

        let mode = if threaded { ShardExecMode::Threads } else { ShardExecMode::Inline };
        let mut a = ShardedEconomyRun::new(cfg.clone(), &trace, Tracer::Off, shards_a, mode);
        while !a.is_done() && a.events_handled() < pause_after {
            a.step();
        }
        let mid = serde_json::to_string(&a.snapshot()).expect("serialize mid-run snapshot");
        while a.step() {}
        let done_a = serde_json::to_string(&a.snapshot()).expect("serialize final snapshot");
        prop_assert_eq!(&done_a, &serial, "in-place continuation diverged");

        let mut b = ShardedEconomyRun::from_snapshot(
            serde_json::from_str(&mid).expect("mid-run snapshot round-trips"),
            shards_b,
            ShardExecMode::Inline,
        );
        while b.step() {}
        let done_b = serde_json::to_string(&b.snapshot()).expect("serialize resumed snapshot");
        prop_assert_eq!(&done_b, &serial, "re-sharded continuation diverged");

        let mut s = EconomyRun::from_snapshot(
            serde_json::from_str(&mid).expect("mid-run snapshot round-trips"),
        );
        while s.step() {}
        let done_s = serde_json::to_string(&s.snapshot()).expect("serialize serial resume");
        prop_assert_eq!(&done_s, &serial, "serial continuation diverged");
    }
}
