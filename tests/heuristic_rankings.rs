//! Cross-crate behavioral tests: the qualitative claims of §4–§5 should
//! hold on full simulations, not just unit-level scores.

use mbts::core::Policy;
use mbts::site::{Site, SiteConfig};
use mbts::workload::{fig45_mix, generate_trace, BoundPolicy, MixConfig};

fn yield_of(policy: Policy, mix: &MixConfig, seeds: std::ops::Range<u64>) -> f64 {
    let mut total = 0.0;
    let n = (seeds.end - seeds.start) as f64;
    for seed in seeds {
        let trace = generate_trace(mix, seed);
        total += Site::new(SiteConfig::new(mix.processors).with_policy(policy))
            .run_trace(&trace)
            .metrics
            .total_yield;
    }
    total / n
}

#[test]
fn value_aware_policies_beat_fcfs_on_skewed_mixes() {
    let mix = MixConfig::millennium_default()
        .with_tasks(800)
        .with_processors(8)
        .with_value_skew(4.0)
        .with_bound(BoundPolicy::ZeroFloor);
    let fcfs = yield_of(Policy::Fcfs, &mix, 100..103);
    let fp = yield_of(Policy::FirstPrice, &mix, 100..103);
    assert!(
        fp > fcfs,
        "FirstPrice {fp} should beat FCFS {fcfs} on a value-skewed mix"
    );
}

#[test]
fn cost_only_beats_first_price_under_unbounded_penalties() {
    // The headline of Figure 5: with unbounded penalties, considering
    // only cost (SWPT-like ordering) dominates greedy unit gain.
    let mix = fig45_mix(5.0, false).with_tasks(800).with_processors(8);
    let fp = yield_of(Policy::FirstPrice, &mix, 200..203);
    let cost_only = yield_of(Policy::first_reward(0.0, 0.01), &mix, 200..203);
    assert!(
        cost_only > fp,
        "cost-only {cost_only} should beat FirstPrice {fp} with unbounded penalties"
    );
}

#[test]
fn swpt_and_alpha_zero_agree_in_spirit_under_unbounded_penalties() {
    // Eq. 5: with unbounded penalties the α = 0 FirstReward ordering is a
    // per-unit-cost variant of SWPT. Their full-simulation yields should
    // land close together (not exactly equal: SWPT ranks by d/RPT while
    // α = 0 ranks by (d_i − D)·…/RPT which differs on ties).
    let mix = fig45_mix(5.0, false).with_tasks(800).with_processors(8);
    let swpt = yield_of(Policy::Swpt, &mix, 300..303);
    let alpha0 = yield_of(Policy::first_reward(0.0, 0.01), &mix, 300..303);
    let scale = swpt.abs().max(alpha0.abs()).max(1.0);
    assert!(
        (swpt - alpha0).abs() / scale < 0.25,
        "SWPT {swpt} vs α=0 {alpha0} diverge more than expected"
    );
}

#[test]
fn gains_matter_more_with_bounded_penalties_than_unbounded() {
    // Contrast of Figures 4 and 5: the advantage of considering gains
    // (α high vs α low) should be *less negative / more positive* when
    // penalties are bounded.
    let bounded = fig45_mix(5.0, true).with_tasks(800).with_processors(8);
    let unbounded = fig45_mix(5.0, false).with_tasks(800).with_processors(8);
    let gain_vs_cost_bounded = yield_of(Policy::first_reward(0.8, 0.01), &bounded, 400..403)
        - yield_of(Policy::first_reward(0.0, 0.01), &bounded, 400..403);
    let gain_vs_cost_unbounded = yield_of(Policy::first_reward(0.8, 0.01), &unbounded, 400..403)
        - yield_of(Policy::first_reward(0.0, 0.01), &unbounded, 400..403);
    // Normalize by total value scale to compare.
    let scale = generate_trace(&bounded, 400).stats().total_value;
    assert!(
        gain_vs_cost_bounded / scale > gain_vs_cost_unbounded / scale,
        "bounded Δ {} vs unbounded Δ {}",
        gain_vs_cost_bounded,
        gain_vs_cost_unbounded
    );
}

#[test]
fn srpt_minimizes_mean_delay() {
    // Sanity link to classic scheduling: SRPT should not lose on mean
    // delay to FCFS or FirstPrice.
    let mix = MixConfig::millennium_default()
        .with_tasks(800)
        .with_processors(8)
        .with_load_factor(1.5);
    let trace = generate_trace(&mix, 55);
    let delay = |p: Policy| {
        Site::new(SiteConfig::new(8).with_policy(p))
            .run_trace(&trace)
            .metrics
            .delay
            .mean()
    };
    let srpt = delay(Policy::Srpt);
    assert!(srpt <= delay(Policy::Fcfs) + 1e-9);
    assert!(srpt <= delay(Policy::FirstPrice) * 1.05 + 1e-9);
}

#[test]
fn higher_load_means_lower_yield_without_admission() {
    let mk = |load: f64| {
        MixConfig::millennium_default()
            .with_tasks(800)
            .with_processors(8)
            .with_load_factor(load)
    };
    let y1 = yield_of(Policy::FirstPrice, &mk(0.7), 500..503);
    let y2 = yield_of(Policy::FirstPrice, &mk(2.0), 500..503);
    let y3 = yield_of(Policy::FirstPrice, &mk(4.0), 500..503);
    assert!(y1 > y2, "load 0.7 {y1} vs 2.0 {y2}");
    assert!(y2 > y3, "load 2.0 {y2} vs 4.0 {y3}");
}
