//! End-to-end gang-scheduling tests: mixed-width workloads through the
//! full stack (generator → site → metrics), plus SWF-imported traces.

use mbts::core::{AdmissionPolicy, Policy};
use mbts::site::{Site, SiteConfig};
use mbts::workload::{generate_trace, parse_swf, MixConfig, SwfOptions, WidthPolicy};

fn gang_mix(load: f64) -> MixConfig {
    MixConfig::millennium_default()
        .with_tasks(400)
        .with_processors(8)
        .with_load_factor(load)
        .with_width(WidthPolicy::PowersOfTwo { max_exp: 3 })
}

#[test]
fn gang_workloads_complete_under_every_policy() {
    let trace = generate_trace(&gang_mix(1.2), 91);
    for policy in [
        Policy::Fcfs,
        Policy::Srpt,
        Policy::FirstPrice,
        Policy::EarliestDeadline,
        Policy::first_reward(0.3, 0.01),
    ] {
        let out = Site::new(SiteConfig::new(8).with_policy(policy)).run_trace(&trace);
        assert_eq!(out.metrics.completed, 400, "{}", policy.name());
        assert!(out.metrics.total_yield.is_finite());
    }
}

#[test]
fn gang_workloads_with_preemption_and_admission() {
    let trace = generate_trace(&gang_mix(2.0), 92);
    let out = Site::new(
        SiteConfig::new(8)
            .with_policy(Policy::first_reward(0.2, 0.01))
            .with_admission(AdmissionPolicy::SlackThreshold { threshold: 0.0 })
            .with_preemption(true),
    )
    .run_trace(&trace);
    let m = &out.metrics;
    assert_eq!(m.completed + m.dropped, m.accepted);
    assert_eq!(m.accepted + m.rejected, 400);
}

#[test]
fn load_calibration_accounts_for_width() {
    // With E[width] > 1 the arrival rate must slow down so that offered
    // work still matches the load factor. A single 400-task draw has
    // noticeable variance, so check the mean over several seeds (the
    // estimator must be unbiased) plus a loose per-seed band.
    let mut mean = 0.0;
    let seeds = 91..97u64;
    let n = seeds.clone().count() as f64;
    for seed in seeds {
        let load = generate_trace(&gang_mix(1.0), seed).stats().offered_load;
        assert!(
            (load - 1.0).abs() < 0.3,
            "offered load {load} (seed {seed}) far from 1.0"
        );
        mean += load / n;
    }
    assert!(
        (mean - 1.0).abs() < 0.1,
        "mean offered load {mean} should track 1.0"
    );
}

#[test]
fn backfilling_improves_utilization_on_gang_mixes() {
    let trace = generate_trace(&gang_mix(1.5), 94);
    let run = |backfill: bool| {
        Site::new(
            SiteConfig::new(8)
                .with_policy(Policy::FirstPrice)
                .with_backfilling(backfill),
        )
        .run_trace(&trace)
    };
    let easy = run(true);
    let strict = run(false);
    assert!(
        easy.metrics.backfills > 0,
        "gang mix must trigger backfills"
    );
    assert_eq!(strict.metrics.backfills, 0);
    // Backfilling reduces average delay (fills idle holes).
    assert!(
        easy.metrics.delay.mean() <= strict.metrics.delay.mean() * 1.05,
        "easy {} vs strict {}",
        easy.metrics.delay.mean(),
        strict.metrics.delay.mean()
    );
}

#[test]
fn swf_imported_trace_runs_end_to_end() {
    // A small synthetic SWF log with mixed widths and misestimates.
    let mut swf = String::from("; synthetic log\n");
    for i in 0..60 {
        let submit = i * 20;
        let run = 50 + (i % 7) * 30;
        let req_time = run + 40;
        let procs = 1 << (i % 3);
        swf.push_str(&format!(
            "{} {} 0 {} {} -1 -1 {} {} -1 1 1 1 1 1 -1 -1 -1\n",
            i + 1,
            submit,
            run,
            procs,
            procs,
            req_time
        ));
    }
    let opts = SwfOptions::new(MixConfig::millennium_default().with_processors(8), 5);
    let trace = parse_swf(&swf, &opts).unwrap();
    assert_eq!(trace.len(), 60);
    let out = Site::new(SiteConfig::new(8).with_policy(Policy::first_reward(0.3, 0.01)))
        .run_trace(&trace);
    assert_eq!(out.metrics.completed, 60);
    // Misestimation is live: estimates (req_time) exceed true runtimes.
    assert!(trace
        .tasks
        .iter()
        .all(|t| t.true_runtime.as_f64() < t.runtime.as_f64()));
}
