//! Whole-simulation property tests: for arbitrary (small) mixes, seeds,
//! policies, and site configurations, the invariants of a correct
//! value-based scheduler hold.

use mbts::core::{AdmissionPolicy, Policy};
use mbts::site::{PreemptionMode, Site, SiteConfig};
use mbts::trace::{TraceKind, Tracer};
use mbts::workload::{generate_trace, BoundPolicy, MixConfig, WidthPolicy};
use proptest::prelude::*;

fn arb_policy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::Fcfs),
        Just(Policy::Srpt),
        Just(Policy::Swpt),
        Just(Policy::FirstPrice),
        (0.0f64..0.1).prop_map(Policy::pv),
        (0.0f64..=1.0, 0.0f64..0.1).prop_map(|(a, r)| Policy::first_reward(a, r)),
    ]
}

fn arb_bound() -> impl Strategy<Value = BoundPolicy> {
    prop_oneof![
        Just(BoundPolicy::Unbounded),
        Just(BoundPolicy::ZeroFloor),
        (0.0f64..1.0).prop_map(|fraction| BoundPolicy::ProportionalPenalty { fraction }),
    ]
}

fn arb_width() -> impl Strategy<Value = WidthPolicy> {
    prop_oneof![
        Just(WidthPolicy::One),
        (1usize..3, 0usize..4).prop_map(|(lo, extra)| WidthPolicy::Uniform { lo, hi: lo + extra }),
        (0u32..3).prop_map(|max_exp| WidthPolicy::PowersOfTwo { max_exp }),
    ]
}

fn arb_admission() -> impl Strategy<Value = AdmissionPolicy> {
    prop_oneof![
        Just(AdmissionPolicy::AcceptAll),
        Just(AdmissionPolicy::PositiveExpectedYield),
        (-200.0f64..500.0).prop_map(|threshold| AdmissionPolicy::SlackThreshold { threshold }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Task conservation, finite yields, and the yield ceiling hold for
    /// arbitrary configurations.
    #[test]
    fn simulation_invariants(
        seed in any::<u64>(),
        load in 0.3f64..3.0,
        policy in arb_policy(),
        bound in arb_bound(),
        admission in arb_admission(),
        preemption in any::<bool>(),
        restart in any::<bool>(),
        drop_expired in any::<bool>(),
        backfilling in any::<bool>(),
        width in arb_width(),
        procs in 1usize..6,
    ) {
        let mix = MixConfig::millennium_default()
            .with_tasks(120)
            .with_processors(procs)
            .with_load_factor(load)
            .with_width(width)
            .with_bound(bound);
        let trace = generate_trace(&mix, seed);
        let cfg = SiteConfig::new(procs)
            .with_policy(policy)
            .with_admission(admission)
            .with_preemption(preemption)
            .with_preemption_mode(if restart { PreemptionMode::Restart } else { PreemptionMode::Resume })
            .with_backfilling(backfilling)
            .with_drop_expired(drop_expired);
        let out = Site::new(cfg).run_trace(&trace);
        let m = &out.metrics;
        prop_assert_eq!(m.submitted, 120);
        prop_assert_eq!(m.accepted + m.rejected, m.submitted);
        prop_assert_eq!(m.completed + m.dropped, m.accepted);
        prop_assert!(m.total_yield.is_finite());
        prop_assert!(m.total_yield <= trace.stats().total_value + 1e-6);
        // Bounded-at-zero mixes can never earn negative yield.
        if bound == BoundPolicy::ZeroFloor {
            prop_assert!(m.total_yield >= -1e-9);
            prop_assert_eq!(m.total_penalty, 0.0);
        }
        // Per-job earnings respect each task's floor and ceiling.
        for (o, spec) in out.outcomes.iter().zip(&trace.tasks) {
            prop_assert_eq!(o.id, spec.id);
            prop_assert!(o.earned <= spec.value + 1e-9);
            prop_assert!(o.earned >= spec.bound.floor() - 1e-9);
        }
    }

    /// Without preemption, no task is ever preempted; with AcceptAll,
    /// none is rejected.
    #[test]
    fn mode_flags_are_respected(seed in any::<u64>(), policy in arb_policy()) {
        let mix = MixConfig::millennium_default()
            .with_tasks(100)
            .with_processors(3)
            .with_load_factor(2.0);
        let trace = generate_trace(&mix, seed);
        let out = Site::new(SiteConfig::new(3).with_policy(policy)).run_trace(&trace);
        prop_assert_eq!(out.metrics.preemptions, 0);
        prop_assert_eq!(out.metrics.rejected, 0);
        prop_assert!(out.outcomes.iter().all(|o| o.preemptions == 0));
    }

    /// Threshold endpoints behave like AcceptAll / RejectAll.
    ///
    /// Note: acceptance counts are *not* monotone in the threshold in
    /// closed loop — rejecting a task shrinks the queue, which can raise
    /// later tasks' slack above a stricter bar. (Per-decision
    /// monotonicity is proven in `mbts-core`'s admission proptests.)
    /// Only the endpoints are globally ordered.
    #[test]
    fn threshold_endpoints(seed in any::<u64>(), mid in -100.0f64..300.0) {
        let mix = MixConfig::millennium_default()
            .with_tasks(100)
            .with_processors(3)
            .with_load_factor(2.0);
        let trace = generate_trace(&mix, seed);
        let run = |threshold: f64| {
            Site::new(
                SiteConfig::new(3)
                    .with_policy(Policy::FirstPrice)
                    .with_admission(AdmissionPolicy::SlackThreshold { threshold }),
            )
            .run_trace(&trace)
            .metrics
            .accepted
        };
        let lenient = run(f64::NEG_INFINITY);
        let strict = run(f64::INFINITY);
        let middle = run(mid);
        prop_assert_eq!(lenient, 100, "−∞ threshold accepts everything");
        // Feedback makes interior thresholds incomparable, but the
        // endpoints bound every run.
        prop_assert!(strict <= lenient);
        prop_assert!(middle <= lenient);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The trace is a complete account of value flow: summing the
    /// per-task `Completed`/`Dropped` earnings in the event stream
    /// reproduces the aggregate yield the site reports, and the event
    /// counts match the metrics counters, for arbitrary configurations.
    #[test]
    fn trace_yield_matches_outcome_yield(
        seed in any::<u64>(),
        load in 0.3f64..3.0,
        policy in arb_policy(),
        bound in arb_bound(),
        preemption in any::<bool>(),
        drop_expired in any::<bool>(),
        procs in 1usize..6,
    ) {
        let mix = MixConfig::millennium_default()
            .with_tasks(120)
            .with_processors(procs)
            .with_load_factor(load)
            .with_bound(bound);
        let trace = generate_trace(&mix, seed);
        let cfg = SiteConfig::new(procs)
            .with_policy(policy)
            .with_preemption(preemption)
            .with_drop_expired(drop_expired);
        let (out, tracer) = Site::new(cfg).run_trace_traced(&trace, Tracer::buffer());
        let events = tracer.into_events().expect("buffer tracer keeps events");
        let mut traced_yield = 0.0f64;
        let mut completed = 0usize;
        let mut dropped = 0usize;
        let mut arrived = 0usize;
        for ev in &events {
            match ev.kind {
                TraceKind::Completed { earned, .. } => {
                    traced_yield += earned;
                    completed += 1;
                }
                TraceKind::Dropped { earned } => {
                    traced_yield += earned;
                    dropped += 1;
                }
                TraceKind::TaskArrived { .. } => arrived += 1,
                _ => {}
            }
        }
        let m = &out.metrics;
        prop_assert_eq!(arrived, m.submitted);
        prop_assert_eq!(completed, m.completed);
        prop_assert_eq!(dropped, m.dropped);
        // Events are emitted at the very points the aggregate is
        // accumulated, in the same order, so the sums agree to within
        // one-reassociation rounding.
        let tolerance = 1e-9 * m.total_yield.abs().max(1.0);
        prop_assert!(
            (traced_yield - m.total_yield).abs() <= tolerance,
            "traced {} vs aggregate {}",
            traced_yield,
            m.total_yield
        );
    }
}
