//! Golden-trace conformance tests: small deterministic workloads whose
//! *complete* structured-event streams are committed as JSONL fixtures
//! under `tests/golden/` and diffed exactly. Any change to admission,
//! dispatch order, preemption, decay accounting, or the event layer
//! itself shows up as a fixture diff — the paper's policy-ordering
//! claims become executable conformance checks, decision by decision.
//!
//! To regenerate after an intentional behavior change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_trace
//! ```
//!
//! On failure each test writes the actual stream to
//! `target/golden-diff/<name>.jsonl` so CI can upload the diff as an
//! artifact.

use mbts::core::{AdmissionPolicy, Policy};
use mbts::site::{Site, SiteConfig};
use mbts::trace::{from_jsonl, to_jsonl, Tracer};
use mbts::workload::{
    generate_trace, generate_workflows, BoundPolicy, MixConfig, WidthPolicy, WorkflowConfig,
    WorkflowSet, WorkflowShape,
};
use std::path::PathBuf;

/// The six headline policies of the paper's evaluation (Figures 3–6).
fn roster() -> Vec<(&'static str, Policy)> {
    vec![
        ("fcfs", Policy::Fcfs),
        ("srpt", Policy::Srpt),
        ("swpt", Policy::Swpt),
        ("first_price", Policy::FirstPrice),
        ("pv", Policy::pv(0.01)),
        ("first_reward", Policy::first_reward(0.3, 0.01)),
    ]
}

/// Three seeded mini-workloads per policy. Overloaded two-processor site
/// with gangs, bounded penalties and expiry shedding, so the streams
/// exercise queueing, backfilling, preemption, and drops — not just
/// arrive/start/complete.
const SEEDS: [u64; 3] = [101, 102, 103];

fn mini_mix() -> MixConfig {
    MixConfig::millennium_default()
        .with_tasks(16)
        .with_processors(2)
        .with_load_factor(2.5)
        .with_width(WidthPolicy::PowersOfTwo { max_exp: 1 })
        .with_bound(BoundPolicy::ProportionalPenalty { fraction: 0.5 })
}

fn site(policy: Policy) -> Site {
    Site::new(
        SiteConfig::new(2)
            .with_policy(policy)
            .with_preemption(true)
            .with_drop_expired(true),
    )
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn diff_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("golden-diff")
}

fn actual_stream(policy: Policy, seed: u64) -> String {
    let trace = generate_trace(&mini_mix(), seed);
    let (_, tracer) = site(policy).run_trace_traced(&trace, Tracer::buffer());
    to_jsonl(&tracer.into_events().expect("buffer tracer keeps events"))
}

#[test]
fn golden_traces_match_committed_fixtures() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let mut failures = Vec::new();
    for (label, policy) in roster() {
        for seed in SEEDS {
            let name = format!("{label}_{seed}.jsonl");
            let fixture = golden_dir().join(&name);
            let actual = actual_stream(policy, seed);
            if update {
                std::fs::create_dir_all(golden_dir()).expect("create fixture dir");
                std::fs::write(&fixture, &actual).expect("write fixture");
                continue;
            }
            let expected = std::fs::read_to_string(&fixture)
                .unwrap_or_else(|e| panic!("missing fixture {}: {e}", fixture.display()));
            if actual != expected {
                std::fs::create_dir_all(diff_dir()).expect("create diff dir");
                let diff_path = diff_dir().join(&name);
                std::fs::write(&diff_path, &actual).expect("write actual stream");
                let first_diff = actual
                    .lines()
                    .zip(expected.lines())
                    .position(|(a, e)| a != e)
                    .map(|i| i + 1)
                    .unwrap_or_else(|| actual.lines().count().min(expected.lines().count()) + 1);
                failures.push(format!(
                    "{name}: first divergence at line {first_diff} \
                     (actual written to {})",
                    diff_path.display()
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "golden traces diverged (rerun with UPDATE_GOLDEN=1 to accept):\n{}",
        failures.join("\n")
    );
}

/// Workflow fixtures: two DAG shapes × two value-aware policies × two
/// seeds, on an overloaded two-processor site with slack admission, so
/// the streams exercise release ordering, stranding, and workflow
/// settlement — not just the flat-task path.
fn wf_roster() -> Vec<(&'static str, Policy)> {
    vec![
        ("first_price", Policy::FirstPrice),
        ("first_reward", Policy::first_reward(0.3, 0.01)),
    ]
}

fn wf_shapes() -> Vec<(&'static str, WorkflowShape)> {
    vec![
        ("forkjoin", WorkflowShape::ForkJoin { width: 3 }),
        ("pipeline", WorkflowShape::Pipeline { depth: 4 }),
    ]
}

fn wf_set(shape: WorkflowShape, seed: u64) -> WorkflowSet {
    generate_workflows(
        &WorkflowConfig::default_set()
            .with_workflows(4)
            .with_shape(shape)
            .with_processors(2)
            .with_load_factor(2.0),
        seed,
    )
}

fn wf_stream(policy: Policy, shape: WorkflowShape, seed: u64) -> String {
    let set = wf_set(shape, seed);
    let site = Site::new(
        SiteConfig::new(2)
            .with_policy(policy)
            .with_admission(AdmissionPolicy::SlackThreshold { threshold: 0.0 })
            .with_workflow_facets(set.facets()),
    );
    let (_, _, tracer) = site.run_workflows_traced(&set, Tracer::buffer());
    to_jsonl(&tracer.into_events().expect("buffer tracer keeps events"))
}

#[test]
fn golden_workflow_traces_match_committed_fixtures() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let mut failures = Vec::new();
    for (shape_label, shape) in wf_shapes() {
        for (label, policy) in wf_roster() {
            for seed in [101u64, 102] {
                let name = format!("wf_{shape_label}_{label}_{seed}.jsonl");
                let fixture = golden_dir().join(&name);
                let actual = wf_stream(policy, shape, seed);
                if update {
                    std::fs::create_dir_all(golden_dir()).expect("create fixture dir");
                    std::fs::write(&fixture, &actual).expect("write fixture");
                    continue;
                }
                let expected = std::fs::read_to_string(&fixture)
                    .unwrap_or_else(|e| panic!("missing fixture {}: {e}", fixture.display()));
                if actual != expected {
                    std::fs::create_dir_all(diff_dir()).expect("create diff dir");
                    let diff_path = diff_dir().join(&name);
                    std::fs::write(&diff_path, &actual).expect("write actual stream");
                    let first_diff = actual
                        .lines()
                        .zip(expected.lines())
                        .position(|(a, e)| a != e)
                        .map(|i| i + 1)
                        .unwrap_or_else(|| {
                            actual.lines().count().min(expected.lines().count()) + 1
                        });
                    failures.push(format!(
                        "{name}: first divergence at line {first_diff} \
                         (actual written to {})",
                        diff_path.display()
                    ));
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "golden workflow traces diverged (rerun with UPDATE_GOLDEN=1 to accept):\n{}",
        failures.join("\n")
    );
}

#[test]
fn golden_workflow_fixtures_exercise_the_dag_event_layer() {
    use mbts::trace::TraceKind;
    let mut released = 0usize;
    let mut settled = 0usize;
    let mut stranded = 0usize;
    for (shape_label, _) in wf_shapes() {
        for (label, _) in wf_roster() {
            for seed in [101u64, 102] {
                let path = golden_dir().join(format!("wf_{shape_label}_{label}_{seed}.jsonl"));
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
                let events = from_jsonl(&text)
                    .unwrap_or_else(|e| panic!("fixture {} does not parse: {e:?}", path.display()));
                assert!(
                    events.windows(2).all(|w| w[0].at <= w[1].at),
                    "wf_{shape_label}_{label}_{seed} is not time-ordered"
                );
                for ev in &events {
                    match ev.kind {
                        TraceKind::WorkflowReleased { .. } => released += 1,
                        TraceKind::WorkflowSettled { .. } => settled += 1,
                        TraceKind::WorkflowStranded { .. } => stranded += 1,
                        _ => {}
                    }
                }
            }
        }
    }
    assert!(released > 0, "no fixture exercises successor release");
    assert!(settled > 0, "no fixture exercises workflow settlement");
    assert!(
        stranded > 0,
        "no fixture exercises stranding (admission never refused a DAG member)"
    );
}

/// Telemetry is observation-only: regenerating a golden stream with the
/// live-metrics registry enabled and disabled must produce the same
/// bytes (and both must match the committed fixture, which the tests
/// above already pin). Guards the tentpole invariant from the engine
/// side — no instrumentation may ever feed back into event content.
#[test]
fn golden_streams_are_byte_identical_with_telemetry_on_and_off() {
    use mbts::trace::telemetry;
    telemetry::enable();
    let task_on = actual_stream(Policy::first_reward(0.3, 0.01), SEEDS[0]);
    let wf_on = wf_stream(Policy::FirstPrice, WorkflowShape::Pipeline { depth: 4 }, 101);
    telemetry::disable();
    let task_off = actual_stream(Policy::first_reward(0.3, 0.01), SEEDS[0]);
    let wf_off = wf_stream(Policy::FirstPrice, WorkflowShape::Pipeline { depth: 4 }, 101);
    telemetry::enable();
    assert_eq!(task_on, task_off, "telemetry perturbed a task stream");
    assert_eq!(wf_on, wf_off, "telemetry perturbed a workflow stream");
}

#[test]
fn golden_fixtures_parse_and_exercise_rich_events() {
    // The committed fixtures must stay valid JSONL and, collectively,
    // cover more than the trivial arrive/start/complete path.
    use mbts::trace::TraceKind;
    let mut preempted = 0usize;
    let mut dropped = 0usize;
    let mut backfills = 0usize;
    for (label, _) in roster() {
        for seed in SEEDS {
            let path = golden_dir().join(format!("{label}_{seed}.jsonl"));
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
            let events = from_jsonl(&text)
                .unwrap_or_else(|e| panic!("fixture {} does not parse: {e:?}", path.display()));
            assert!(!events.is_empty(), "{label}_{seed} is empty");
            assert!(
                events.windows(2).all(|w| w[0].at <= w[1].at),
                "{label}_{seed} is not time-ordered"
            );
            for ev in &events {
                match ev.kind {
                    TraceKind::Preempted { .. } => preempted += 1,
                    TraceKind::Dropped { .. } => dropped += 1,
                    TraceKind::Scheduled { backfill: true, .. } => backfills += 1,
                    _ => {}
                }
            }
        }
    }
    assert!(preempted > 0, "no fixture exercises preemption");
    assert!(dropped > 0, "no fixture exercises expiry drops");
    assert!(backfills > 0, "no fixture exercises backfilling");
}
