//! Property tests over journal damage: truncating or corrupting an
//! arbitrary suffix of a journal must never panic, must always recover
//! the valid prefix (or fail with a clean error when nothing intact
//! remains), and a recovered run finished to completion must be
//! bit-identical to the uninterrupted run — conservation auditors clean.

use mbts::core::Policy;
use mbts::durable::{framing, recover_bytes, DurableRun, Journal, RecoverError};
use mbts::market::{EconomyConfig, EconomyRun, MarketFaultConfig};
use mbts::sim::{FaultConfig, UpDown};
use mbts::site::{FaultPlan, LostWorkPolicy, SiteConfig, SiteOutcome, SiteRun};
use mbts::trace::Tracer;
use mbts::workload::{fig67_mix, generate_trace};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Reference journal and uninterrupted outcome, built once: a faulted,
/// checkpointed site run journaled with frequent snapshots so damage at
/// different depths lands before, between, and after snapshot records.
fn reference() -> &'static (Vec<u8>, SiteOutcome, u64) {
    static REF: OnceLock<(Vec<u8>, SiteOutcome, u64)> = OnceLock::new();
    REF.get_or_init(|| {
        let trace = generate_trace(&fig67_mix(1.6).with_tasks(20).with_processors(4), 11);
        let config = SiteConfig::new(4)
            .with_policy(Policy::first_reward(0.3, 0.01))
            .with_preemption(true)
            .with_lost_work(LostWorkPolicy::Checkpoint {
                interval: 25.0,
                restart_penalty: 2.0,
            });
        let plan = FaultPlan::new(
            FaultConfig {
                processor: Some(UpDown::exponential(600.0, 80.0)),
                site: None,
            },
            3,
        );
        let run = SiteRun::with_faults(config, &trace, &plan, Tracer::Off);
        let mut durable = DurableRun::new(run, Journal::in_memory(), 8).unwrap();
        durable.run_to_completion().unwrap();
        let (run, journal) = durable.into_parts();
        let total = run.events_handled();
        let (outcome, _) = run.finish();
        (journal.bytes().to_vec(), outcome, total)
    })
}

/// Recovery of damaged bytes either fails cleanly or yields a run that
/// finishes bit-identically to the uninterrupted reference.
fn check_damaged(bytes: &[u8]) -> Result<(), String> {
    // The framing scan itself must never panic on any input.
    let _ = framing::scan(bytes);
    let _ = recover_bytes(bytes);
    match DurableRun::<SiteRun>::recover(bytes) {
        Ok((mut run, report)) => {
            let (_, want, total) = reference();
            prop_assert!(run.events_handled() <= *total);
            run.run_to_completion();
            prop_assert_eq!(run.events_handled(), *total);
            let (got, _) = run.finish();
            prop_assert!(
                got.violations.is_empty(),
                "conservation auditors tripped after recovery: {:?}",
                got.violations
            );
            prop_assert_eq!(&got, want, "recovered run diverged from reference");
            // Damage only ever costs the tail, never the whole journal.
            prop_assert!(report.dropped_bytes <= bytes.len());
        }
        // Nothing intact to recover is a clean, typed refusal.
        Err(RecoverError::Framing(_) | RecoverError::NoSnapshot | RecoverError::BadSnapshot(_)) => {
        }
        Err(RecoverError::Divergence { index, detail }) => {
            return Err(format!(
                "suffix damage must not masquerade as divergence (event {index}: {detail})"
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncating the journal at any byte boundary recovers the valid
    /// prefix and replays to the reference outcome.
    #[test]
    fn truncation_at_any_byte_recovers_the_valid_prefix(cut_fraction in 0.0f64..=1.0) {
        let (bytes, _, _) = reference();
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        check_damaged(&bytes[..cut.min(bytes.len())])?;
    }

    /// XOR-corrupting everything from an arbitrary position onward is
    /// contained by the CRC framing: the undamaged prefix still recovers
    /// and finishes identically.
    #[test]
    fn corrupting_an_arbitrary_suffix_is_contained(
        start_fraction in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let (bytes, _, _) = reference();
        let start = ((bytes.len() as f64) * start_fraction) as usize;
        let mut damaged = bytes.clone();
        for b in &mut damaged[start..] {
            *b ^= xor;
        }
        check_damaged(&damaged)?;
    }

    /// A single flipped bit anywhere — header, snapshot, event, or
    /// framing fields — never panics and never silently corrupts the
    /// recovered state.
    #[test]
    fn a_single_bit_flip_never_panics_or_corrupts(
        pos_fraction in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let (bytes, _, _) = reference();
        let pos = (((bytes.len() - 1) as f64) * pos_fraction) as usize;
        let mut damaged = bytes.clone();
        damaged[pos] ^= 1 << bit;
        check_damaged(&damaged)?;
    }

    /// Truncation after corruption (a torn write on top of bit rot)
    /// still degrades gracefully.
    #[test]
    fn corrupt_then_truncate_degrades_gracefully(
        start_fraction in 0.0f64..1.0,
        cut_fraction in 0.0f64..=1.0,
        xor in 1u8..=255,
    ) {
        let (bytes, _, _) = reference();
        let start = ((bytes.len() as f64) * start_fraction) as usize;
        let mut damaged = bytes.clone();
        for b in &mut damaged[start..] {
            *b ^= xor;
        }
        let cut = ((damaged.len() as f64) * cut_fraction) as usize;
        check_damaged(&damaged[..cut.min(damaged.len())])?;
    }

    /// The scanner survives entirely arbitrary bytes (no journal header
    /// at all) without panicking.
    #[test]
    fn arbitrary_bytes_never_panic_the_scanner(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = framing::scan(&bytes);
        let _ = recover_bytes(&bytes);
        let _ = DurableRun::<SiteRun>::recover(&bytes);
        let _ = DurableRun::<EconomyRun>::recover(&bytes);
    }
}

/// Deterministic companion: an economy journal with a corrupted suffix
/// recovers with clean money-conservation books.
#[test]
fn economy_journal_suffix_corruption_keeps_the_books_closed() {
    let trace = generate_trace(&fig67_mix(1.5).with_tasks(20).with_processors(8), 9);
    let mut config = EconomyConfig::uniform(2, SiteConfig::new(4).with_policy(Policy::FirstPrice));
    config.faults = Some(MarketFaultConfig::new(
        FaultConfig {
            processor: Some(UpDown::exponential(900.0, 90.0)),
            site: Some(UpDown::exponential(2_500.0, 300.0)),
        },
        5,
    ));
    let run = EconomyRun::new(config, &trace, Tracer::Off);
    let mut durable = DurableRun::new(run, Journal::in_memory(), 8).unwrap();
    durable.run_to_completion().unwrap();
    let (run, journal) = durable.into_parts();
    let (want, _) = run.finish();
    let bytes = journal.bytes();

    for start in (framing::HEADER_LEN..bytes.len()).step_by(97) {
        let mut damaged = bytes.to_vec();
        for b in &mut damaged[start..] {
            *b ^= 0xA5;
        }
        match DurableRun::<EconomyRun>::recover(&damaged) {
            Ok((mut rec, _)) => {
                rec.run_to_completion();
                let (got, _) = rec.finish();
                assert!(got.audit_violations.is_empty());
                assert_eq!(got, want, "books diverged after corruption at {start}");
            }
            Err(RecoverError::NoSnapshot | RecoverError::BadSnapshot(_)) => {}
            Err(e) => panic!("unexpected recovery error at {start}: {e}"),
        }
    }
}

/// Satellite: the `kill -9` story told from the filesystem's side. A
/// live writer appends service commands while a reader concurrently
/// snapshots the file bytes; every image the reader can observe must
/// recover — without panicking — to a clean, monotonically growing
/// prefix of the final command log. Then, deterministically, truncating
/// the finished journal at every byte of its tail must do the same.
#[test]
fn concurrent_writer_torn_tail_recovers_a_clean_prefix() {
    use mbts::serve::{CommandKind, MachineConfig, ServiceRun};
    use mbts::sim::Time;
    use mbts::workload::{PenaltyBound, TaskSpec};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let dir = std::env::temp_dir().join(format!("mbts-torn-tail-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("service.mbtsj");
    let _ = std::fs::remove_file(&path);

    const COMMANDS: u64 = 300;
    let done = Arc::new(AtomicBool::new(false));
    let writer = {
        let path = path.clone();
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let (mut run, _) =
                ServiceRun::resume_file(&path, MachineConfig::default(), 16, 0).unwrap();
            for i in 0..COMMANDS {
                let at = i as f64 * 0.25;
                let spec =
                    TaskSpec::new(0, at, 1.0 + (i % 7) as f64, 5.0, 0.05, PenaltyBound::ZERO);
                run.apply(Time::new(at), CommandKind::Submit { spec })
                    .unwrap();
                if i % 16 == 0 {
                    // Give the reader a chance to catch torn interleavings.
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
            }
            run.apply(Time::new(COMMANDS as f64), CommandKind::Drain)
                .unwrap();
            run.sync().unwrap();
            done.store(true, Ordering::SeqCst);
            run
        })
    };

    // Reader: hammer the file while the writer runs. Append-only means
    // recovered length is monotone; a clean *error* is only legal
    // before the genesis snapshot record is fully on disk.
    let mut best = 0u64;
    while !done.load(Ordering::SeqCst) {
        let Ok(bytes) = std::fs::read(&path) else {
            continue;
        };
        match ServiceRun::recover(&bytes) {
            Ok((machine, _)) => {
                assert!(
                    machine.applied() >= best,
                    "recovery went backwards: {} -> {}",
                    best,
                    machine.applied()
                );
                best = machine.applied();
                assert!(machine.applied() <= COMMANDS + 1);
            }
            Err(_) => assert_eq!(best, 0, "recovery regressed to an error mid-run"),
        }
        std::thread::yield_now();
    }

    // The final image recovers bit-identically to the live writer.
    let run = writer.join().unwrap();
    let final_bytes = std::fs::read(&path).unwrap();
    let (recovered, _) = ServiceRun::recover(&final_bytes).unwrap();
    assert_eq!(recovered.applied(), COMMANDS + 1);
    assert_eq!(recovered.snapshot_json(), run.machine().snapshot_json());

    // Deterministic sweep: cut the finished journal at every byte of
    // its tail; each cut is some prefix a crash could have left behind.
    let start = final_bytes.len().saturating_sub(1024);
    let mut prev = 0u64;
    for cut in start..final_bytes.len() {
        let (machine, _) = ServiceRun::recover(&final_bytes[..cut])
            .unwrap_or_else(|e| panic!("cut at {cut} failed to recover: {e}"));
        assert!(machine.applied() >= prev, "applied regressed at cut {cut}");
        prev = machine.applied();
    }
    assert!(prev <= COMMANDS + 1);
    std::fs::remove_file(&path).ok();
}
