//! End-to-end pipeline tests: workload → site → metrics, across policies
//! and configurations, checking the conservation laws any correct run
//! must satisfy.

use mbts::core::{AdmissionPolicy, Policy};
use mbts::site::{Site, SiteConfig, SiteOutcome};
use mbts::workload::{generate_trace, MixConfig, Trace};

fn mix(load: f64) -> MixConfig {
    MixConfig::millennium_default()
        .with_tasks(600)
        .with_processors(8)
        .with_load_factor(load)
}

fn policies() -> Vec<Policy> {
    vec![
        Policy::Fcfs,
        Policy::Srpt,
        Policy::Swpt,
        Policy::FirstPrice,
        Policy::pv(0.01),
        Policy::first_reward(0.0, 0.01),
        Policy::first_reward(0.3, 0.01),
        Policy::first_reward(1.0, 0.01),
    ]
}

fn check_conservation(trace: &Trace, outcome: &SiteOutcome) {
    let m = &outcome.metrics;
    assert_eq!(m.submitted, trace.len());
    assert_eq!(m.accepted + m.rejected, m.submitted);
    assert_eq!(m.completed + m.dropped, m.accepted);
    assert_eq!(outcome.outcomes.len(), trace.len());
    // Yield can never exceed the sum of maximum values.
    assert!(m.total_yield <= trace.stats().total_value + 1e-6);
    assert!(m.total_yield.is_finite());
    // Per-job records are consistent with the aggregate.
    let sum: f64 = outcome.outcomes.iter().map(|o| o.earned).sum();
    assert!(
        (sum - m.total_yield).abs() < 1e-6 * (1.0 + m.total_yield.abs()),
        "per-job sum {sum} vs aggregate {}",
        m.total_yield
    );
}

#[test]
fn every_policy_conserves_tasks_accept_all() {
    let trace = generate_trace(&mix(1.0), 21);
    for policy in policies() {
        let outcome = Site::new(SiteConfig::new(8).with_policy(policy)).run_trace(&trace);
        check_conservation(&trace, &outcome);
        assert_eq!(outcome.metrics.rejected, 0);
        assert_eq!(outcome.metrics.completed, trace.len());
    }
}

#[test]
fn every_policy_conserves_tasks_with_admission_and_preemption() {
    let trace = generate_trace(&mix(2.0), 22);
    for policy in policies() {
        let outcome = Site::new(
            SiteConfig::new(8)
                .with_policy(policy)
                .with_admission(AdmissionPolicy::SlackThreshold { threshold: 50.0 })
                .with_preemption(true),
        )
        .run_trace(&trace);
        check_conservation(&trace, &outcome);
    }
}

#[test]
fn runs_are_deterministic() {
    let trace = generate_trace(&mix(1.5), 23);
    let cfg = SiteConfig::new(8)
        .with_policy(Policy::first_reward(0.3, 0.01))
        .with_admission(AdmissionPolicy::SlackThreshold { threshold: 100.0 })
        .with_preemption(true);
    let a = Site::new(cfg.clone()).run_trace(&trace);
    let b = Site::new(cfg).run_trace(&trace);
    assert_eq!(a.metrics.total_yield, b.metrics.total_yield);
    assert_eq!(a.metrics.completed, b.metrics.completed);
    assert_eq!(a.metrics.preemptions, b.metrics.preemptions);
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x, y);
    }
}

#[test]
fn pv_at_zero_rate_is_exactly_first_price() {
    let trace = generate_trace(&mix(1.3), 24);
    let fp = Site::new(SiteConfig::new(8).with_policy(Policy::FirstPrice)).run_trace(&trace);
    let pv = Site::new(SiteConfig::new(8).with_policy(Policy::pv(0.0))).run_trace(&trace);
    assert_eq!(fp.metrics.total_yield, pv.metrics.total_yield);
    for (x, y) in fp.outcomes.iter().zip(&pv.outcomes) {
        assert_eq!(x.finished_at, y.finished_at);
    }
}

#[test]
fn first_reward_alpha_one_zero_discount_is_first_price() {
    // §5.3: with α = 1 and discount 0, FirstReward reduces to FirstPrice.
    let trace = generate_trace(&mix(1.3), 25);
    let fp = Site::new(SiteConfig::new(8).with_policy(Policy::FirstPrice)).run_trace(&trace);
    let fr =
        Site::new(SiteConfig::new(8).with_policy(Policy::first_reward(1.0, 0.0))).run_trace(&trace);
    assert_eq!(fp.metrics.total_yield, fr.metrics.total_yield);
}

#[test]
fn single_processor_single_task() {
    let mix = MixConfig::millennium_default()
        .with_tasks(1)
        .with_processors(1);
    let trace = generate_trace(&mix, 1);
    let outcome = Site::new(SiteConfig::new(1)).run_trace(&trace);
    assert_eq!(outcome.metrics.completed, 1);
    // A lone task starts immediately: earns full value.
    assert!((outcome.metrics.total_yield - trace.tasks[0].value).abs() < 1e-9);
    assert_eq!(outcome.outcomes[0].delay, 0.0);
}

#[test]
fn value_skew_does_not_change_what_completes_only_what_it_earns() {
    // With AcceptAll and a value-blind policy, the same tasks complete at
    // the same times regardless of the value labels.
    let a = generate_trace(&mix(1.0).with_value_skew(1.0), 30);
    let b = generate_trace(&mix(1.0).with_value_skew(9.0), 30);
    let oa = Site::new(SiteConfig::new(8).with_policy(Policy::Srpt)).run_trace(&a);
    let ob = Site::new(SiteConfig::new(8).with_policy(Policy::Srpt)).run_trace(&b);
    for (x, y) in oa.outcomes.iter().zip(&ob.outcomes) {
        assert_eq!(x.finished_at, y.finished_at);
    }
}

#[test]
fn overload_without_admission_hurts_more_with_unbounded_penalties() {
    let unbounded = generate_trace(&mix(3.0), 31);
    let bounded = generate_trace(
        &mix(3.0).with_bound(mbts::workload::config::BoundPolicy::ZeroFloor),
        31,
    );
    let cfg = SiteConfig::new(8).with_policy(Policy::FirstPrice);
    let u = Site::new(cfg.clone()).run_trace(&unbounded);
    let b = Site::new(cfg).run_trace(&bounded);
    assert!(u.metrics.total_yield < b.metrics.total_yield);
    assert!(b.metrics.total_penalty == 0.0);
    assert!(u.metrics.total_penalty < 0.0);
}

#[test]
fn preemption_strictly_helps_or_matches_under_first_price() {
    // Preemption gives the scheduler more freedom; on skewed mixes it
    // should not hurt FirstPrice (it may reorder but never blocks).
    let trace = generate_trace(&mix(1.5).with_value_skew(9.0), 32);
    let off = Site::new(SiteConfig::new(8).with_policy(Policy::FirstPrice)).run_trace(&trace);
    let on = Site::new(
        SiteConfig::new(8)
            .with_policy(Policy::FirstPrice)
            .with_preemption(true),
    )
    .run_trace(&trace);
    assert!(
        on.metrics.total_yield >= off.metrics.total_yield - off.metrics.total_yield.abs() * 0.05,
        "preemption on {} vs off {}",
        on.metrics.total_yield,
        off.metrics.total_yield
    );
    assert!(on.metrics.preemptions > 0);
}
