//! Exhaustive kill-point recovery sweeps.
//!
//! The durability layer's headline guarantee: crash a journaled run
//! after *any* event index `k`, recover from the journal bytes written
//! so far, run to completion — and the outcome (schedule dispositions,
//! yields, account balances, trace stream) is **bit-identical** to the
//! run that was never interrupted. These tests enumerate every `k`
//! rather than sampling: determinism bugs love to hide at specific
//! boundaries (first event, mid-repair, last completion).
//!
//! Two tiers, mirroring `fault_soak.rs`:
//!
//! * smoke — small traces, always on;
//! * heavy — all six policies × both lost-work policies × three seeds,
//!   with and without fault injection; ignored in debug builds (CI runs
//!   it in release with `--include-ignored`).
//!
//! On divergence, if `MBTS_DUMP_DIR` is set the expected/actual states
//! are dumped there so CI can upload them as artifacts.

use mbts::core::{AdmissionPolicy, Policy};
use mbts::durable::{framing, DurableRun, Journal, RecordTag};
use mbts::market::{
    BudgetConfig, EconomyConfig, EconomyRun, MarketFaultConfig, MigrationConfig, RetryConfig,
};
use mbts::sim::{FaultConfig, UpDown};
use mbts::site::{FaultPlan, LostWorkPolicy, SiteConfig, SiteRun};
use mbts::trace::Tracer;
use mbts::workload::{
    fig67_mix, generate_trace, generate_workflows, Trace, WorkflowConfig, WorkflowSet,
    WorkflowShape,
};

/// On mismatch, dump expected/actual to `MBTS_DUMP_DIR` (if set) and
/// return a pointer for the panic message.
fn dump_divergence(name: &str, want: &str, got: &str) -> String {
    let Ok(dir) = std::env::var("MBTS_DUMP_DIR") else {
        return String::new();
    };
    let dir = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&dir).ok();
    let path = dir.join(format!("{name}.txt"));
    std::fs::write(
        &path,
        format!("=== expected ===\n{want}\n=== got ===\n{got}\n"),
    )
    .ok();
    format!(" (state dump: {})", path.display())
}

macro_rules! assert_identical {
    ($want:expr, $got:expr, $name:expr, $what:expr, $k:expr) => {
        if $got != $want {
            let hint = dump_divergence(
                &format!("{}-k{}-{}", $name, $k, $what),
                &format!("{:#?}", $want),
                &format!("{:#?}", $got),
            );
            panic!(
                "{} diverged after kill at event {} [{}]{hint}",
                $what, $k, $name
            );
        }
    };
}

/// Journals a full site run (recording the journal offset at every event
/// boundary), then for each `k` truncates to that offset, recovers, and
/// finishes — asserting outcome and trace-stream identity. Returns the
/// total event count.
fn kill_sweep_site(name: &str, mk: impl Fn(Tracer) -> SiteRun, snapshot_every: u64) -> u64 {
    kill_sweep_site_traced(name, mk, snapshot_every, Tracer::buffer())
}

/// [`kill_sweep_site`] with a caller-chosen tracer, so the sweep can
/// also cover the provenance verbosity level: the tracer state is part
/// of every snapshot, and recovery must resume the decision-record
/// stream without losing or duplicating records.
fn kill_sweep_site_traced(
    name: &str,
    mk: impl Fn(Tracer) -> SiteRun,
    snapshot_every: u64,
    tracer: Tracer,
) -> u64 {
    let mut durable = DurableRun::new(mk(tracer), Journal::in_memory(), snapshot_every).unwrap();
    let mut offsets = vec![durable.offset()];
    while durable.step().unwrap() {
        offsets.push(durable.offset());
    }
    let (run, journal) = durable.into_parts();
    let total = run.events_handled();
    let (want, want_tracer) = run.finish();
    let want_events = want_tracer.into_events().unwrap();
    let bytes = journal.bytes();

    for (k, &cut) in offsets.iter().enumerate() {
        let (mut rec, _report) = DurableRun::<SiteRun>::recover(&bytes[..cut])
            .unwrap_or_else(|e| panic!("recovery failed at kill point {k} [{name}]: {e}"));
        assert_eq!(
            rec.events_handled(),
            k as u64,
            "recovered run resumed at the wrong event [{name}]"
        );
        rec.run_to_completion();
        assert_eq!(rec.events_handled(), total);
        let (got, got_tracer) = rec.finish();
        assert_identical!(want, got, name, "outcome", k);
        let got_events = got_tracer.into_events().unwrap();
        assert_identical!(want_events, got_events, name, "trace", k);
    }
    total
}

/// The economy-layer twin of [`kill_sweep_site`].
fn kill_sweep_economy(
    name: &str,
    config: &EconomyConfig,
    trace: &Trace,
    snapshot_every: u64,
) -> u64 {
    kill_sweep_economy_traced(name, config, trace, snapshot_every, Tracer::buffer())
}

/// The tracer-parameterized twin of [`kill_sweep_economy`].
fn kill_sweep_economy_traced(
    name: &str,
    config: &EconomyConfig,
    trace: &Trace,
    snapshot_every: u64,
    tracer: Tracer,
) -> u64 {
    let run = EconomyRun::new(config.clone(), trace, tracer);
    let mut durable = DurableRun::new(run, Journal::in_memory(), snapshot_every).unwrap();
    let mut offsets = vec![durable.offset()];
    while durable.step().unwrap() {
        offsets.push(durable.offset());
    }
    let (run, journal) = durable.into_parts();
    let total = run.events_handled();
    let (want, want_tracer) = run.finish();
    let want_events = want_tracer.into_events().unwrap();
    let bytes = journal.bytes();

    for (k, &cut) in offsets.iter().enumerate() {
        let (mut rec, _report) = DurableRun::<EconomyRun>::recover(&bytes[..cut])
            .unwrap_or_else(|e| panic!("recovery failed at kill point {k} [{name}]: {e}"));
        assert_eq!(rec.events_handled(), k as u64);
        rec.run_to_completion();
        assert_eq!(rec.events_handled(), total);
        let (got, got_tracer) = rec.finish();
        assert_identical!(want, got, name, "outcome", k);
        let got_events = got_tracer.into_events().unwrap();
        assert_identical!(want_events, got_events, name, "trace", k);
    }
    total
}

/// Processor faults aggressive enough that even a ~25-task smoke trace
/// sees crashes and repairs.
fn smoke_faults() -> FaultConfig {
    FaultConfig {
        processor: Some(UpDown::exponential(600.0, 80.0)),
        site: None,
    }
}

#[test]
fn kill_every_event_site_smoke() {
    let trace = generate_trace(&fig67_mix(1.6).with_tasks(24).with_processors(4), 17);
    let config = SiteConfig::new(4)
        .with_policy(Policy::first_reward(0.3, 0.01))
        .with_preemption(true)
        .with_lost_work(LostWorkPolicy::Checkpoint {
            interval: 25.0,
            restart_penalty: 2.0,
        });
    let plan = FaultPlan::new(smoke_faults(), 5);
    let total = kill_sweep_site(
        "site-smoke",
        |tracer| SiteRun::with_faults(config.clone(), &trace, &plan, tracer),
        32,
    );
    assert!(total > 48, "smoke sweep saw only {total} events");
}

#[test]
fn kill_every_event_site_smoke_unfaulted() {
    let trace = generate_trace(&fig67_mix(1.6).with_tasks(25).with_processors(4), 23);
    let config = SiteConfig::new(4)
        .with_policy(Policy::FirstPrice)
        .with_admission(AdmissionPolicy::SlackThreshold { threshold: 180.0 });
    let total = kill_sweep_site(
        "site-smoke-unfaulted",
        |tracer| SiteRun::new(config.clone(), &trace, tracer),
        16,
    );
    assert!(total >= 25);
}

#[test]
fn kill_every_event_economy_smoke() {
    let trace = generate_trace(&fig67_mix(1.5).with_tasks(24).with_processors(8), 31);
    let mut config = EconomyConfig::uniform(
        2,
        SiteConfig::new(4)
            .with_policy(Policy::FirstPrice)
            .with_admission(AdmissionPolicy::SlackThreshold { threshold: 0.0 }),
    );
    config.budgets = Some(BudgetConfig {
        num_clients: 3,
        initial: 200.0,
        replenish_rate: 0.05,
        cap: 600.0,
    });
    config.migration = Some(MigrationConfig {
        grace: 100.0,
        max_attempts: 2,
    });
    config.retry = Some(RetryConfig {
        backoff: 40.0,
        max_retries: 1,
    });
    config.faults = Some(
        MarketFaultConfig::new(
            FaultConfig {
                processor: Some(UpDown::exponential(900.0, 90.0)),
                site: Some(UpDown::exponential(2_500.0, 300.0)),
            },
            13,
        )
        .with_backoff_cap(240.0)
        .with_jitter(0.5),
    );
    let total = kill_sweep_economy("economy-smoke", &config, &trace, 32);
    assert!(total > 48, "economy sweep saw only {total} events");
}

/// Kill sweeps with the provenance verbosity level *on*: every snapshot
/// now carries a wrapped tracer cursor plus buffered `DecisionRecord`
/// events, and recovery from any kill point must reproduce the exact
/// provenance stream — same candidates, same ranks, same float bits —
/// the uninterrupted run emits.
#[test]
fn kill_every_event_site_smoke_with_provenance() {
    let trace = generate_trace(&fig67_mix(1.6).with_tasks(24).with_processors(4), 17);
    let config = SiteConfig::new(4)
        .with_policy(Policy::first_reward(0.3, 0.01))
        .with_preemption(true)
        .with_admission(AdmissionPolicy::SlackThreshold { threshold: 180.0 })
        .with_lost_work(LostWorkPolicy::Checkpoint {
            interval: 25.0,
            restart_penalty: 2.0,
        });
    let plan = FaultPlan::new(smoke_faults(), 5);
    let total = kill_sweep_site_traced(
        "site-smoke-provenance",
        |tracer| SiteRun::with_faults(config.clone(), &trace, &plan, tracer),
        32,
        Tracer::buffer().with_provenance(),
    );
    assert!(total > 48, "provenance sweep saw only {total} events");
}

#[test]
fn kill_every_event_economy_smoke_with_provenance() {
    let trace = generate_trace(&fig67_mix(1.5).with_tasks(20).with_processors(8), 37);
    let config = EconomyConfig::uniform(
        2,
        SiteConfig::new(4)
            .with_policy(Policy::FirstPrice)
            .with_admission(AdmissionPolicy::SlackThreshold { threshold: 0.0 }),
    );
    let total = kill_sweep_economy_traced(
        "economy-smoke-provenance",
        &config,
        &trace,
        16,
        Tracer::buffer().with_provenance(),
    );
    assert!(
        total > 20,
        "economy provenance sweep saw only {total} events"
    );
}

/// A DAG workload for the workflow kill sweeps: enough edges that many
/// kill points land *between* a predecessor's completion and the
/// successor's `Release` event — the window where the workflow
/// overlay's released/stranded bookkeeping lives only in the snapshot.
fn smoke_wf_set(seed: u64) -> WorkflowSet {
    generate_workflows(
        &WorkflowConfig::default_set()
            .with_workflows(6)
            .with_shape(WorkflowShape::RandomLayered {
                layers: 3,
                width: 2,
                edge_prob: 0.5,
            })
            .with_processors(2)
            .with_load_factor(2.0),
        seed,
    )
}

#[test]
fn kill_every_event_site_workflow_smoke() {
    let set = smoke_wf_set(19);
    let config = SiteConfig::new(2)
        .with_policy(Policy::first_reward(0.3, 0.01))
        .with_admission(AdmissionPolicy::SlackThreshold { threshold: 0.0 })
        .with_workflow_facets(set.facets());
    let total = kill_sweep_site(
        "site-workflow-smoke",
        |tracer| SiteRun::with_workflows(config.clone(), &set, tracer),
        16,
    );
    // Arrivals + completions + deadline checks + releases: well past the
    // flat task count, so the sweep really crossed release boundaries.
    assert!(
        total > set.tasks.len() as u64,
        "workflow sweep saw only {total} events"
    );
}

#[test]
fn kill_every_event_economy_workflow_smoke() {
    let set = smoke_wf_set(29);
    let trace = set.trace();
    let mut config = EconomyConfig::uniform(
        2,
        SiteConfig::new(2)
            .with_policy(Policy::FirstPrice)
            .with_admission(AdmissionPolicy::SlackThreshold { threshold: 0.0 })
            .with_workflow_facets(set.facets()),
    );
    config.workflows = Some(set.clone());
    config.migration = Some(MigrationConfig {
        grace: 100.0,
        max_attempts: 2,
    });
    config.faults = Some(
        MarketFaultConfig::new(
            FaultConfig {
                processor: Some(UpDown::exponential(900.0, 90.0)),
                site: None,
            },
            5,
        )
        .with_backoff_cap(240.0),
    );
    let total = kill_sweep_economy("economy-workflow-smoke", &config, &trace, 32);
    assert!(
        total > set.tasks.len() as u64,
        "workflow economy sweep saw only {total} events"
    );
}

#[test]
fn kill_every_event_economy_workflow_smoke_with_provenance() {
    let set = smoke_wf_set(31);
    let trace = set.trace();
    let mut config = EconomyConfig::uniform(
        2,
        SiteConfig::new(2)
            .with_policy(Policy::first_reward(0.3, 0.01))
            .with_admission(AdmissionPolicy::SlackThreshold { threshold: 0.0 })
            .with_workflow_facets(set.facets()),
    );
    config.workflows = Some(set);
    let total = kill_sweep_economy_traced(
        "economy-workflow-provenance",
        &config,
        &trace,
        16,
        Tracer::buffer().with_provenance(),
    );
    assert!(
        total > 20,
        "workflow provenance sweep saw only {total} events"
    );
}

/// Satellite: the kill point *between* a site's `Crash` event and its
/// matching `Repair` must recover correctly under checkpointed lost
/// work — the recovered run must re-derive the same repair schedule,
/// checkpoint credit and restart penalties from snapshot state alone.
#[test]
fn crash_during_repair_kill_points_recover_under_checkpoint() {
    let trace = generate_trace(&fig67_mix(1.6).with_tasks(24).with_processors(4), 41);
    let config = SiteConfig::new(4)
        .with_policy(Policy::first_reward(0.3, 0.01))
        .with_preemption(true)
        .with_lost_work(LostWorkPolicy::Checkpoint {
            interval: 25.0,
            restart_penalty: 2.0,
        });
    let plan = FaultPlan::new(smoke_faults(), 7);

    // Journal with genesis-only snapshots so record i+1 is event i.
    let run = SiteRun::with_faults(config.clone(), &trace, &plan, Tracer::buffer());
    let mut durable = DurableRun::new(run, Journal::in_memory(), 0).unwrap();
    let mut offsets = vec![durable.offset()];
    while durable.step().unwrap() {
        offsets.push(durable.offset());
    }
    let (run, journal) = durable.into_parts();
    let total = run.events_handled();
    let (want, want_tracer) = run.finish();
    let want_events = want_tracer.into_events().unwrap();

    // Find every Crash event's index from the journaled payloads.
    let scan = framing::scan(journal.bytes()).unwrap();
    let crash_indices: Vec<usize> = scan
        .records
        .iter()
        .filter(|(tag, _)| *tag == RecordTag::Event)
        .enumerate()
        .filter(|(_, (_, payload))| {
            let text = std::str::from_utf8(payload).unwrap();
            text.contains("Crash")
        })
        .map(|(i, _)| i)
        .collect();
    assert!(
        !crash_indices.is_empty(),
        "the fault plan must actually crash processors"
    );

    // Kill immediately after each Crash applies — its Repair is still
    // pending in the journaled queue snapshot.
    for &i in &crash_indices {
        let k = i + 1;
        let (mut rec, _) = DurableRun::<SiteRun>::recover(&journal.bytes()[..offsets[k]])
            .unwrap_or_else(|e| panic!("recovery failed mid-repair at event {k}: {e}"));
        assert_eq!(rec.events_handled(), k as u64);
        rec.run_to_completion();
        assert_eq!(rec.events_handled(), total);
        let (got, got_tracer) = rec.finish();
        assert_identical!(want, got, "crash-during-repair", "outcome", k);
        let got_events = got_tracer.into_events().unwrap();
        assert_identical!(want_events, got_events, "crash-during-repair", "trace", k);
    }
}

/// The six policy configurations of the fault soak, swept exhaustively.
fn soak_policies(processors: usize) -> Vec<(&'static str, SiteConfig)> {
    vec![
        (
            "fcfs",
            SiteConfig::new(processors).with_policy(Policy::Fcfs),
        ),
        (
            "srpt",
            SiteConfig::new(processors).with_policy(Policy::Srpt),
        ),
        (
            "first_price",
            SiteConfig::new(processors).with_policy(Policy::FirstPrice),
        ),
        (
            "pv",
            SiteConfig::new(processors).with_policy(Policy::pv(0.01)),
        ),
        (
            "first_reward",
            SiteConfig::new(processors).with_policy(Policy::first_reward(0.3, 0.01)),
        ),
        (
            "first_reward_ac",
            SiteConfig::new(processors)
                .with_policy(Policy::first_reward(0.3, 0.01))
                .with_admission(AdmissionPolicy::SlackThreshold { threshold: 180.0 }),
        ),
    ]
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "exhaustive sweep: run in release (CI crash-restart soak job)"
)]
fn kill_every_event_all_policies_heavy() {
    let mix = fig67_mix(1.6).with_tasks(120).with_processors(8);
    let mut total = 0u64;
    for &seed in &[101, 202, 303] {
        let trace = generate_trace(&mix, seed);
        for (label, base) in soak_policies(8) {
            // Unfaulted variant.
            total += kill_sweep_site(
                &format!("{label}-s{seed}-plain"),
                |tracer| SiteRun::new(base.clone(), &trace, tracer),
                64,
            );
            // Faulted, under both lost-work policies.
            for (wlabel, lost_work) in [
                ("restart", LostWorkPolicy::Restart),
                (
                    "checkpoint",
                    LostWorkPolicy::Checkpoint {
                        interval: 25.0,
                        restart_penalty: 2.0,
                    },
                ),
            ] {
                let config = base.clone().with_lost_work(lost_work).with_preemption(true);
                let faults = FaultConfig {
                    processor: Some(UpDown::exponential(4_000.0, 120.0)),
                    site: None,
                };
                let plan = FaultPlan::new(faults, seed.wrapping_mul(0x9E37_79B9) ^ 0x50A4);
                total += kill_sweep_site(
                    &format!("{label}-s{seed}-{wlabel}"),
                    |tracer| SiteRun::with_faults(config.clone(), &trace, &plan, tracer),
                    64,
                );
            }
        }
    }
    // 54 sweeps × ~250 events each (rejections mean not every task
    // yields a completion event).
    assert!(total > 10_000, "heavy sweep saw only {total} events");
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "exhaustive sweep: run in release (CI crash-restart soak job)"
)]
fn kill_every_event_economy_heavy() {
    let mix = fig67_mix(1.5).with_tasks(100).with_processors(8);
    let mut total = 0u64;
    for &seed in &[7, 19] {
        let trace = generate_trace(&mix, seed);
        let mut config = EconomyConfig::uniform(
            2,
            SiteConfig::new(4)
                .with_policy(Policy::first_reward(0.3, 0.01))
                .with_admission(AdmissionPolicy::SlackThreshold { threshold: 0.0 }),
        );
        config.budgets = Some(BudgetConfig {
            num_clients: 4,
            initial: 150.0,
            replenish_rate: 0.05,
            cap: 500.0,
        });
        config.faults = Some(
            MarketFaultConfig::new(
                FaultConfig {
                    processor: Some(UpDown::exponential(2_500.0, 120.0)),
                    site: Some(UpDown::exponential(6_000.0, 400.0)),
                },
                seed,
            )
            .with_backoff_cap(240.0)
            .with_jitter(0.5),
        );
        total += kill_sweep_economy(&format!("economy-s{seed}"), &config, &trace, 64);
    }
    // Tight budgets leave many tasks unfunded (arrival-only), so the
    // floor is well below 2 events/task.
    assert!(total > 250, "economy heavy sweep saw only {total} events");
}

/// Telemetry-plane leg of the durability contract: the live-metrics
/// registry wraps the serve hot path (journal append and apply are both
/// timed), so this sweep proves it is observation-only. The same command
/// log run with telemetry enabled and disabled must write byte-identical
/// journal bytes, and every crash point of the instrumented journal must
/// recover to the same snapshot JSON as the uninstrumented one.
#[test]
fn service_journal_is_byte_identical_with_telemetry_on_and_off() {
    use mbts::serve::{CommandKind, MachineConfig, ServiceRun, ShedReason};
    use mbts::sim::Time;
    use mbts::trace::telemetry;
    use mbts::workload::{PenaltyBound, TaskId, TaskSpec};

    let config = MachineConfig {
        provenance: true,
        ..MachineConfig::default()
    };
    let mut kinds: Vec<(f64, CommandKind)> = Vec::new();
    for i in 0..40u64 {
        let at = i as f64 * 0.3;
        let spec = TaskSpec::new(
            0,
            at,
            1.0 + (i % 4) as f64,
            1.5 + (i % 7) as f64,
            0.02 + 0.01 * (i % 3) as f64,
            PenaltyBound::ZERO,
        );
        kinds.push((at, CommandKind::Submit { spec }));
        if i % 9 == 4 {
            kinds.push((at, CommandKind::Cancel { task: TaskId(i / 3) }));
        }
        if i % 13 == 6 {
            let spec = TaskSpec::new(0, at, 2.0, 0.5, 0.4, PenaltyBound::ZERO);
            kinds.push((
                at,
                CommandKind::Shed {
                    spec,
                    queue_depth: 7,
                    reason: ShedReason::LowestValue,
                },
            ));
        }
    }
    kinds.push((15.0, CommandKind::Drain));

    let run_once = |cfg: &MachineConfig| -> (Vec<u8>, Vec<usize>) {
        let mut run = ServiceRun::new(cfg.clone(), Journal::in_memory(), 8).unwrap();
        let mut offsets = Vec::new();
        for (at, kind) in &kinds {
            run.apply(Time::new(*at), kind.clone()).unwrap();
            offsets.push(run.journal().bytes().len());
        }
        (run.journal().bytes().to_vec(), offsets)
    };

    telemetry::enable();
    let (with_tel, offsets) = run_once(&config);
    telemetry::disable();
    let (without_tel, _) = run_once(&config);
    // Restore the always-on default before any assertion can bail.
    telemetry::enable();

    assert_eq!(
        with_tel, without_tel,
        "telemetry perturbed the journal bytes"
    );
    let (on, _) = ServiceRun::recover(&with_tel).expect("recover instrumented journal");
    let (off, _) = ServiceRun::recover(&without_tel).expect("recover uninstrumented journal");
    assert_eq!(
        on.snapshot_json(),
        off.snapshot_json(),
        "telemetry perturbed the recovered state"
    );
    // Crash the instrumented journal at every command boundary; each
    // prefix must still recover (telemetry counters never reach disk).
    for (k, offset) in offsets.iter().enumerate() {
        let (recovered, _) = ServiceRun::recover(&with_tel[..*offset])
            .unwrap_or_else(|e| panic!("crash after command {k} failed to recover: {e}"));
        assert_eq!(recovered.applied() as usize, k + 1);
    }
}

/// Service-journal leg: crash an `mbts serve` command log after *every*
/// applied command. Each crash point must recover a machine — state and
/// captured provenance trace both, via the snapshot JSON — bit-identical
/// to a fresh machine fed the same accepted prefix; and feeding the
/// recovered machine the remaining suffix must land on the uncrashed
/// final state. This is the daemon's durability contract: the journal is
/// the single source of truth, and an acknowledged command is never
/// reinterpreted.
#[test]
fn kill_every_command_service_journal_smoke() {
    use mbts::serve::{CommandKind, MachineConfig, ServiceMachine, ServiceRun, ShedReason};
    use mbts::sim::Time;
    use mbts::workload::{PenaltyBound, TaskId, TaskSpec};

    let config = MachineConfig {
        provenance: true,
        ..MachineConfig::default()
    };
    // A command log exercising every verb: submits (varied value/decay so
    // the acceptance heuristic both admits and declines), cancels (hits
    // and misses), overload sheds, and a final drain.
    let mut kinds: Vec<(f64, CommandKind)> = Vec::new();
    for i in 0..60u64 {
        let at = i as f64 * 0.4;
        let spec = TaskSpec::new(
            0,
            at,
            0.8 + (i % 5) as f64,
            2.0 + (i % 9) as f64,
            0.02 + 0.01 * (i % 4) as f64,
            PenaltyBound::ZERO,
        );
        kinds.push((at, CommandKind::Submit { spec }));
        if i % 7 == 3 {
            kinds.push((
                at,
                CommandKind::Cancel {
                    task: TaskId(i / 2),
                },
            ));
        }
        if i % 11 == 5 {
            let spec = TaskSpec::new(0, at, 3.0, 0.5, 0.5, PenaltyBound::ZERO);
            kinds.push((
                at,
                CommandKind::Shed {
                    spec,
                    queue_depth: 9,
                    reason: ShedReason::LowestValue,
                },
            ));
        }
    }
    kinds.push((40.0, CommandKind::Drain));

    // Uncrashed reference run, recording the journal offset after every
    // applied command — each offset is one crash point.
    let mut reference = ServiceRun::new(config.clone(), Journal::in_memory(), 8).unwrap();
    let mut offsets = Vec::new();
    let mut commands = Vec::new();
    for (at, kind) in &kinds {
        let (cmd, _) = reference.apply(Time::new(*at), kind.clone()).unwrap();
        commands.push(cmd);
        offsets.push(reference.journal().bytes().len());
    }
    let reference_final = reference.machine().snapshot_json();
    let bytes = reference.journal().bytes().to_vec();

    for (k, offset) in offsets.iter().enumerate() {
        let (recovered, _) = ServiceRun::recover(&bytes[..*offset])
            .unwrap_or_else(|e| panic!("crash after command {k} failed to recover: {e}"));
        assert_eq!(recovered.applied() as usize, k + 1);

        let mut fresh = ServiceMachine::new(config.clone());
        for cmd in &commands[..=k] {
            fresh.apply(cmd);
        }
        assert_eq!(
            recovered.snapshot_json(),
            fresh.snapshot_json(),
            "recovered state diverged from direct replay after command {k}"
        );

        let mut recovered = recovered;
        for cmd in &commands[k + 1..] {
            recovered.apply(cmd);
        }
        assert_eq!(
            recovered.snapshot_json(),
            reference_final,
            "finishing from crash point {k} missed the uncrashed outcome"
        );
    }
}
