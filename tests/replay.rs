//! Replayability: traces serialize losslessly and replayed traces produce
//! bit-identical simulation outcomes — the property every experiment in
//! EXPERIMENTS.md depends on.

use mbts::core::{AdmissionPolicy, Policy};
use mbts::site::{Site, SiteConfig};
use mbts::workload::{generate_trace, MixConfig, Trace};

fn mix() -> MixConfig {
    MixConfig::millennium_default()
        .with_tasks(400)
        .with_processors(6)
        .with_load_factor(1.4)
}

#[test]
fn trace_json_roundtrip_preserves_simulation_results() {
    let original = generate_trace(&mix(), 77);
    let replayed = Trace::from_json(&original.to_json()).expect("roundtrip");
    assert_eq!(original, replayed);

    let cfg = SiteConfig::new(6)
        .with_policy(Policy::first_reward(0.25, 0.01))
        .with_admission(AdmissionPolicy::SlackThreshold { threshold: 120.0 })
        .with_preemption(true);
    let a = Site::new(cfg.clone()).run_trace(&original);
    let b = Site::new(cfg).run_trace(&replayed);
    assert_eq!(
        a.metrics.total_yield.to_bits(),
        b.metrics.total_yield.to_bits()
    );
    assert_eq!(a.outcomes, b.outcomes);
}

#[test]
fn trace_file_roundtrip() {
    let dir = std::env::temp_dir().join("mbts-replay-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.json");
    let original = generate_trace(&mix(), 78);
    original.save(&path).unwrap();
    let replayed = Trace::load(&path).unwrap();
    assert_eq!(original, replayed);
    std::fs::remove_file(&path).ok();
}

#[test]
fn same_seed_same_trace_different_seed_different_trace() {
    let a = generate_trace(&mix(), 79);
    let b = generate_trace(&mix(), 79);
    let c = generate_trace(&mix(), 80);
    assert_eq!(a, b);
    assert_ne!(a.tasks, c.tasks);
}

#[test]
fn generator_is_stable_across_releases() {
    // Golden values: if the stream derivation or distribution sampling
    // changes, recorded experiments stop being reproducible. This pins
    // the first task of a known (config, seed).
    let t = generate_trace(&mix(), 2024);
    let first = &t.tasks[0];
    // Pin to 6 significant digits — enough to catch any algorithmic
    // change while robust to doc formatting. The reference stream is
    // defined by the vendored `rand` shim (vendor/rand), which is part
    // of this repository and therefore stable across environments.
    assert_eq!(first.arrival.as_f64(), 0.0);
    assert!(
        (first.runtime.as_f64() - 19.766773).abs() < 1e-5,
        "runtime drifted: {}",
        first.runtime
    );
    assert!(
        (first.value - 15.790429).abs() < 1e-5,
        "value drifted: {}",
        first.value
    );
    assert!(
        (first.decay - 1.518003).abs() < 1e-5,
        "decay drifted: {}",
        first.decay
    );
}
