//! # mbts — Market-Based Task Service
//!
//! Facade crate re-exporting the full MBTS stack: a production-quality Rust
//! reproduction of *“Balancing Risk and Reward in a Market-Based Task
//! Service”* (Irwin, Grit & Chase, HPDC 2004).
//!
//! The stack, bottom-up:
//!
//! * [`sim`] — discrete-event simulation substrate (time, events, RNG
//!   streams, distributions, statistics).
//! * [`workload`] — synthetic batch workloads: bimodal value/decay mixes,
//!   load-factor calibration, trace serialization.
//! * [`core`] — the paper's contribution: linear-decay value functions,
//!   opportunity cost, and the FCFS/SRPT/SWPT/FirstPrice/PV/FirstReward
//!   scheduling heuristics plus slack-based admission control.
//! * [`site`] — an event-driven task-service site executing a trace on a
//!   pool of processors with optional preemption and admission control.
//! * [`market`] — bids, contracts, negotiation, brokers, budgets, pricing,
//!   and a multi-site economy (the paper's Figure 1 setting).
//! * [`durable`] — crash consistency: CRC-framed snapshot + write-ahead
//!   event journals that make site and economy runs recoverable at any
//!   event boundary, bit-identical to an uninterrupted run.
//! * [`serve`] — the live task service: an HTTP+JSON daemon (`mbts
//!   serve`) fronting the deterministic core with journaled admission,
//!   backpressure, deadline-aware shedding, and graceful drain, plus
//!   the `mbts flood` load/chaos client.
//! * [`experiments`] — the harness that regenerates every figure of the
//!   paper's evaluation (Figures 3–7) plus ablations.
//! * [`chaos`] — the `mbts chaos` scenario orchestrator: deterministic
//!   fault-injection schedules (disk, network, shard fabric) replayed
//!   against journaled runs, with recovery bit-identity, acked-prefix
//!   durability, and clean-auditor invariants checked after every fault.
//!
//! ## Quickstart
//!
//! ```
//! use mbts::core::{heuristics::Policy, value::ValueFunction};
//! use mbts::site::{Site, SiteConfig};
//! use mbts::workload::{MixConfig, generate_trace};
//!
//! // Generate a 200-task bimodal mix at load factor 1 on 4 processors.
//! let mix = MixConfig::millennium_default()
//!     .with_tasks(200)
//!     .with_processors(4)
//!     .with_load_factor(1.0);
//! let trace = generate_trace(&mix, 42);
//!
//! // Run it under the FirstReward heuristic with α = 0.3.
//! let config = SiteConfig::new(4)
//!     .with_policy(Policy::first_reward(0.3, 0.01))
//!     .with_preemption(true);
//! let outcome = Site::new(config).run_trace(&trace);
//! assert_eq!(outcome.metrics.completed, 200);
//! assert!(outcome.metrics.total_yield.is_finite());
//! ```

pub mod chaos;
pub mod cli;

pub use mbts_chaos as chaos_core;
pub use mbts_core as core;
pub use mbts_durable as durable;
pub use mbts_experiments as experiments;
pub use mbts_market as market;
pub use mbts_serve as serve;
pub use mbts_sim as sim;
pub use mbts_site as site;
pub use mbts_trace as trace;
pub use mbts_workload as workload;
