//! `mbts` — generate traces, run sites, and run market economies from the
//! command line. See `mbts::cli` for the full grammar.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match mbts::cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = mbts::cli::execute(cmd, &mut stdout) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
