//! The `mbts chaos` scenario orchestrator.
//!
//! Runs JSON fault-injection scenarios (the `tests/chaos/` corpus)
//! against journaled site runs, serial and sharded economy runs, and
//! scripted service runs, crashing and recovering the workload every
//! time an injected disk fault surfaces — and asserting, after every
//! fault, the invariants the rest of the test suite promises:
//!
//! * **Recovery bit-identity** — the faulted run's final state is
//!   byte-for-byte the uninjected reference's (determinism re-derives
//!   the future from whatever intact prefix the disk held).
//! * **Acked-prefix durability** (service scenarios) — every command
//!   whose journal append was acknowledged survives recovery, with its
//!   `/status` entry intact; a failed fsync may leave one command in
//!   ack limbo, and recovery must resolve it exactly once.
//! * **Conservation auditors clean** — no invariant-auditor violation
//!   anywhere in the faulted run.
//! * **No panics, no hangs** — every fault degrades to a typed error,
//!   a crash-recovery cycle, or (shard fabric) a resent reply.
//!
//! Determinism contract: a scenario's outcome — report, fault log, and
//! chaos trace events — is a pure function of `(seed, schedule)`. The
//! CLI runs every scenario twice and fails on any byte-level divergence
//! between the two runs, dumping both sides under [`DUMP_DIR`].
//!
//! Crash model: disk faults are fail-stop. When an append fails the
//! orchestrator abandons the process state, re-reads exactly what the
//! in-memory disk image holds (optionally flipping one seeded bit via
//! the `durable.read` failpoint), recovers, and re-journals onto a
//! fresh disk generation — the in-process equivalent of log rotation at
//! restart. Shard-fabric faults never crash anything: the lost-reply
//! protocol absorbs them, and the orchestrator checks bit-identity
//! against the serial engine instead.

use mbts_chaos::{ChaosRegistry, Scenario, ScenarioTarget};
use mbts_durable::framing::{write_header, HEADER_LEN};
use mbts_durable::{corrupt_image, ChaosSink, DurableRun, Journal, Recoverable, SharedImage};
use mbts_market::{EconomyConfig, EconomyOutcome, EconomyRun, ShardExecMode, ShardedEconomyRun};
use mbts_serve::{
    ApplyOutcome, Command as ServeCommand, CommandKind, MachineConfig, ServiceMachine, ServiceRun,
    ShedReason,
};
use mbts_site::{SiteConfig, SiteRun};
use mbts_sim::Time;
use mbts_trace::{to_jsonl, TraceEvent, TraceKind, Tracer};
use mbts_workload::{generate_trace, MixConfig, PenaltyBound, TaskId, TaskSpec, Trace};
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Where divergence dumps land when an invariant or the determinism
/// contract fails (CI uploads this directory on failure).
pub const DUMP_DIR: &str = "target/chaos";

/// Crash-recovery cycles a single scenario may consume before the
/// orchestrator declares the schedule unable to make progress.
const MAX_CRASHES: u64 = 64;

/// Per-scenario outcome, serialized into the corpus report.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioReport {
    /// Scenario name from the JSON.
    pub name: String,
    /// Target class: `site`, `market`, or `serve`.
    pub class: String,
    /// Seed actually used (after any CLI override).
    pub seed: u64,
    /// Total faults fired across every failpoint instance.
    pub injected: u64,
    /// Fires per failpoint instance.
    pub by_point: BTreeMap<String, u64>,
    /// Crash-recovery cycles the injected faults forced.
    pub crashes: u64,
    /// Journal events replayed across all recoveries.
    pub replayed: u64,
    /// Invariants that held (each would have failed the scenario).
    pub checks: Vec<String>,
}

/// The full `mbts chaos` run: every scenario, run twice, all clean.
#[derive(Debug, Clone, Serialize)]
pub struct CorpusReport {
    /// Per-scenario outcomes, in corpus order.
    pub scenarios: Vec<ScenarioReport>,
    /// Faults fired across the corpus.
    pub total_injected: u64,
    /// Crash-recovery cycles across the corpus.
    pub total_crashes: u64,
    /// Always true on success: both runs of every scenario were
    /// byte-identical (report and chaos trace events).
    pub deterministic: bool,
}

fn budget(crashes: u64, name: &str) -> Result<(), String> {
    if crashes > MAX_CRASHES {
        return Err(format!(
            "scenario '{name}': exceeded the {MAX_CRASHES}-crash recovery budget; \
             gate the fault with `every`/`max_fires` so the run can make progress"
        ));
    }
    Ok(())
}

/// Converts everything fired since the last drain into `ChaosInjected`
/// trace events stamped at `at`.
fn drain_injected(registry: &ChaosRegistry, at: Time, events: &mut Vec<TraceEvent>) {
    for fault in registry.drain_fired() {
        events.push(TraceEvent {
            at,
            task: None,
            site: None,
            kind: TraceKind::ChaosInjected {
                point: fault.point,
                action: fault.action.label().to_string(),
            },
        });
    }
}

fn push_recovered(events: &mut Vec<TraceEvent>, at: Time, point: &str, detail: String) {
    events.push(TraceEvent {
        at,
        task: None,
        site: None,
        kind: TraceKind::ChaosRecovered {
            point: point.to_string(),
            detail,
        },
    });
}

/// A fresh disk generation: an empty image behind a fault-injecting
/// sink, fsynced on every append so `durable.sink.sync` failpoints see
/// one hit per record.
fn chaos_journal(registry: &Arc<ChaosRegistry>) -> (SharedImage, Journal) {
    let image = SharedImage::new();
    let journal = Journal::with_sink(Box::new(ChaosSink::new(image.clone(), Arc::clone(registry))))
        .with_fsync_every_n(1);
    (image, journal)
}

/// What recovery would read off the disk right now: header + the exact
/// bytes the sink accepted, with one read-time corruption pass applied
/// (a no-op unless the schedule arms `durable.read`).
fn disk_image_bytes(image: &SharedImage, registry: &ChaosRegistry) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(HEADER_LEN + image.len());
    write_header(&mut bytes);
    bytes.extend_from_slice(&image.snapshot());
    let _flipped = corrupt_image(&mut bytes, registry);
    bytes
}

fn dump(name: &str, label: &str, payload: &str) -> String {
    let dir = std::path::Path::new(DUMP_DIR);
    let path = dir.join(format!("{name}.{label}.json"));
    let write = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, payload));
    match write {
        Ok(()) => path.display().to_string(),
        Err(e) => format!("<dump failed: {e}>"),
    }
}

/// The per-target hooks the generic crash-recovery driver needs beyond
/// [`Recoverable`].
trait ChaosTarget: Recoverable + Sized {
    /// Current simulation time (stamps chaos trace events).
    fn sim_now(&self) -> Time;
    /// Serialized full replay state, for bit-identity comparison.
    fn state_json(&self) -> String;
}

impl ChaosTarget for SiteRun {
    fn sim_now(&self) -> Time {
        self.now()
    }
    fn state_json(&self) -> String {
        serde_json::to_string(&self.snapshot()).expect("site snapshots serialize")
    }
}

impl ChaosTarget for EconomyRun {
    fn sim_now(&self) -> Time {
        self.now()
    }
    fn state_json(&self) -> String {
        serde_json::to_string(&self.snapshot()).expect("economy snapshots serialize")
    }
}

/// Starts (or restarts) a journaled run on a fresh disk generation,
/// absorbing genesis-snapshot faults as reformat-and-retry crashes.
fn genesis<R: ChaosTarget>(
    mk: &dyn Fn() -> R,
    registry: &Arc<ChaosRegistry>,
    snapshot_every: u64,
    crashes: &mut u64,
    events: &mut Vec<TraceEvent>,
    name: &str,
) -> Result<(SharedImage, DurableRun<R>), String> {
    loop {
        let (image, journal) = chaos_journal(registry);
        let run = mk();
        let at = run.sim_now();
        match DurableRun::new(run, journal, snapshot_every) {
            Ok(durable) => return Ok((image, durable)),
            Err(err) => {
                *crashes += 1;
                budget(*crashes, name)?;
                drain_injected(registry, at, events);
                push_recovered(
                    events,
                    at,
                    "durable.sink",
                    format!("genesis snapshot failed ({err}); reformatted"),
                );
            }
        }
    }
}

/// Recovers from `disk` and re-journals the run onto a fresh disk
/// generation. `Ok(None)` means the image held no intact snapshot (the
/// caller restarts from scratch — determinism makes that equivalent).
#[allow(clippy::type_complexity)]
fn recover_and_rejournal<R: ChaosTarget>(
    disk: &[u8],
    registry: &Arc<ChaosRegistry>,
    snapshot_every: u64,
    crashes: &mut u64,
    events: &mut Vec<TraceEvent>,
    at: Time,
    name: &str,
) -> Result<Option<(SharedImage, DurableRun<R>, u64)>, String> {
    let (first, report) = match DurableRun::<R>::recover(disk) {
        Ok(pair) => pair,
        Err(_) => return Ok(None),
    };
    let mut run = Some(first);
    loop {
        let (image, journal) = chaos_journal(registry);
        // `DurableRun::new` consumes the run even when the genesis
        // append fails; re-recovering from the same bytes rebuilds it
        // bit-identically.
        let r = match run.take() {
            Some(r) => r,
            None => {
                DurableRun::<R>::recover(disk)
                    .map_err(|e| format!("scenario '{name}': re-recovery failed: {e:?}"))?
                    .0
            }
        };
        match DurableRun::new(r, journal, snapshot_every) {
            Ok(durable) => return Ok(Some((image, durable, report.replayed_events))),
            Err(err) => {
                *crashes += 1;
                budget(*crashes, name)?;
                drain_injected(registry, at, events);
                push_recovered(
                    events,
                    at,
                    "durable.sink",
                    format!("re-genesis failed ({err}); reformatted"),
                );
            }
        }
    }
}

/// Drives a journaled run to completion under disk faults, crashing and
/// recovering on every surfaced append error. Returns the finished run
/// plus (crashes, events replayed across recoveries).
fn run_durable_chaos<R: ChaosTarget>(
    mk: &dyn Fn() -> R,
    registry: &Arc<ChaosRegistry>,
    snapshot_every: u64,
    events: &mut Vec<TraceEvent>,
    name: &str,
) -> Result<(R, u64, u64), String> {
    let mut crashes = 0u64;
    let mut replayed = 0u64;
    let (mut image, mut durable) = genesis(mk, registry, snapshot_every, &mut crashes, events, name)?;
    loop {
        match durable.step() {
            Ok(true) => drain_injected(registry, durable.run().sim_now(), events),
            Ok(false) => break,
            Err(err) => {
                crashes += 1;
                budget(crashes, name)?;
                let at = durable.run().sim_now();
                drain_injected(registry, at, events);
                let disk = disk_image_bytes(&image, registry);
                match recover_and_rejournal::<R>(
                    &disk,
                    registry,
                    snapshot_every,
                    &mut crashes,
                    events,
                    at,
                    name,
                )? {
                    Some((ni, nd, rep)) => {
                        replayed += rep;
                        push_recovered(
                            events,
                            nd.run().sim_now(),
                            "durable.sink",
                            format!("crash on '{err}': replayed={rep}"),
                        );
                        image = ni;
                        durable = nd;
                    }
                    None => {
                        // Bit rot (or a fault during genesis) destroyed
                        // every intact snapshot. A real operator starts
                        // the run over; determinism guarantees the same
                        // final state either way.
                        push_recovered(
                            events,
                            at,
                            "durable.read",
                            format!("image unrecoverable after '{err}'; restarted from genesis"),
                        );
                        let (ni, nd) =
                            genesis(mk, registry, snapshot_every, &mut crashes, events, name)?;
                        image = ni;
                        durable = nd;
                    }
                }
            }
        }
    }
    drain_injected(registry, durable.run().sim_now(), events);
    let (run, _journal) = durable.into_parts();
    Ok((run, crashes, replayed))
}

fn bit_identity_check(
    name: &str,
    what: &str,
    reference: &str,
    chaotic: &str,
) -> Result<(), String> {
    if reference == chaotic {
        return Ok(());
    }
    let ref_path = dump(name, &format!("{what}.reference"), reference);
    let got_path = dump(name, &format!("{what}.chaotic"), chaotic);
    Err(format!(
        "scenario '{name}': {what} diverged from the uninjected reference \
         (dumps: {ref_path} vs {got_path})"
    ))
}

fn site_workload(tasks: u64, processors: usize, load: f64, seed: u64) -> Trace {
    let mix = MixConfig::millennium_default()
        .with_tasks((tasks.max(1)) as usize)
        .with_processors(processors)
        .with_load_factor(load);
    generate_trace(&mix, seed)
}

#[allow(clippy::too_many_arguments)]
fn run_site_scenario(
    name: &str,
    seed: u64,
    tasks: u64,
    processors: usize,
    load: f64,
    policy: &str,
    snapshot_every: u64,
    registry: &Arc<ChaosRegistry>,
    events: &mut Vec<TraceEvent>,
) -> Result<(u64, u64, Vec<String>), String> {
    let policy = crate::cli::parse_policy(policy)?;
    let trace = site_workload(tasks, processors, load, seed);
    let config = SiteConfig::new(processors)
        .with_policy(policy)
        .with_preemption(true);

    let mut reference = SiteRun::new(config.clone(), &trace, Tracer::Off);
    reference.run_to_completion();
    let reference_state = reference.state_json();

    let mk = || SiteRun::new(config.clone(), &trace, Tracer::Off);
    let (run, crashes, replayed) =
        run_durable_chaos::<SiteRun>(&mk, registry, snapshot_every, events, name)?;

    bit_identity_check(name, "final-site-state", &reference_state, &run.state_json())?;
    let violations = run.state().violations().len();
    if violations > 0 {
        return Err(format!(
            "scenario '{name}': {violations} auditor violations in the faulted run"
        ));
    }
    Ok((
        crashes,
        replayed,
        vec![
            "bit-identical-to-reference".to_string(),
            "auditors-clean".to_string(),
            "recovery-replay-verified".to_string(),
        ],
    ))
}

/// Invariant-auditor violations across the economy: market-level money
/// conservation plus every site's task/processor/yield audits. (Not
/// [`EconomyOutcome::violations`] — those are contract-time breaches, a
/// normal market phenomenon under load, not invariant failures.)
fn economy_audit_violations(outcome: &EconomyOutcome) -> usize {
    outcome.audit_violations.len()
        + outcome
            .per_site
            .iter()
            .map(|s| s.violations.len())
            .sum::<usize>()
}

#[allow(clippy::too_many_arguments)]
fn run_market_scenario(
    name: &str,
    seed: u64,
    tasks: u64,
    sites: usize,
    processors: usize,
    load: f64,
    policy: &str,
    shards: usize,
    snapshot_every: u64,
    registry: &Arc<ChaosRegistry>,
    events: &mut Vec<TraceEvent>,
) -> Result<(u64, u64, Vec<String>), String> {
    let policy = crate::cli::parse_policy(policy)?;
    let trace = site_workload(tasks, processors * sites.max(1), load, seed);
    let site = SiteConfig::new(processors)
        .with_policy(policy)
        .with_preemption(true);
    let config = EconomyConfig::uniform(sites, site);

    let mut reference = EconomyRun::new(config.clone(), &trace, Tracer::Off);
    reference.run_to_completion();
    let reference_state = reference.state_json();

    if shards > 1 {
        // Shard-fabric faults: delayed / dropped worker replies stall the
        // coordinator's barrier and exercise resend; the run must still be
        // bit-identical to the serial engine. Worker threads hit their
        // failpoints concurrently, so the fired log's *order* is timing
        // noise — sort by (instance, hit), which is deterministic, and
        // stamp everything at the (deterministic) final sim time.
        let mut sharded = ShardedEconomyRun::new_with_chaos(
            config,
            &trace,
            Tracer::Off,
            shards,
            ShardExecMode::Threads,
            Some(Arc::clone(registry)),
        );
        sharded.run_to_completion();
        let end = sharded.now();
        let mut fired = registry.drain_fired();
        fired.sort_by(|a, b| a.point.cmp(&b.point).then(a.hit.cmp(&b.hit)));
        for fault in fired {
            events.push(TraceEvent {
                at: end,
                task: None,
                site: None,
                kind: TraceKind::ChaosInjected {
                    point: fault.point,
                    action: fault.action.label().to_string(),
                },
            });
        }
        push_recovered(
            events,
            end,
            "market.shard.reply",
            format!("all replies accounted for across {shards} shards"),
        );
        bit_identity_check(
            name,
            "final-economy-state",
            &reference_state,
            &sharded.state_json_mut(),
        )?;
        let (outcome, _) = sharded.finish();
        let audit = economy_audit_violations(&outcome);
        if audit > 0 {
            return Err(format!(
                "scenario '{name}': {audit} conservation-auditor violations in the sharded run"
            ));
        }
        return Ok((
            0,
            0,
            vec![
                "sharded-bit-identical-to-serial".to_string(),
                "auditors-clean".to_string(),
                "no-reply-lost".to_string(),
            ],
        ));
    }

    let mk = || EconomyRun::new(config.clone(), &trace, Tracer::Off);
    let (run, crashes, replayed) =
        run_durable_chaos::<EconomyRun>(&mk, registry, snapshot_every, events, name)?;
    bit_identity_check(name, "final-economy-state", &reference_state, &run.state_json())?;
    let (outcome, _) = run.finish();
    let audit = economy_audit_violations(&outcome);
    if audit > 0 {
        return Err(format!(
            "scenario '{name}': {audit} conservation-auditor violations in the faulted run"
        ));
    }
    Ok((
        crashes,
        replayed,
        vec![
            "bit-identical-to-reference".to_string(),
            "auditors-clean".to_string(),
            "recovery-replay-verified".to_string(),
        ],
    ))
}

/// `ShardedEconomyRun::snapshot` needs `&mut self`; adapter so the
/// sharded path can reuse the same comparison helper.
trait StateJsonMut {
    fn state_json_mut(&mut self) -> String;
}

impl StateJsonMut for ShardedEconomyRun {
    fn state_json_mut(&mut self) -> String {
        serde_json::to_string(&self.snapshot()).expect("economy snapshots serialize")
    }
}

// ---------------------------------------------------------------------------
// Scripted service scenarios
// ---------------------------------------------------------------------------

/// xorshift64* — same generator the failpoint streams and `mbts flood`
/// use; seeds the scripted command schedule.
struct ScriptRng(u64);

impl ScriptRng {
    fn new(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ScriptRng((z ^ (z >> 31)) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// One step of the scripted client, independent of machine state so the
/// reference and chaos runs fold the identical schedule.
enum ScriptStep {
    Submit {
        gap: f64,
        runtime: f64,
        value: f64,
        decay: f64,
    },
    Cancel {
        pick: u64,
    },
    Shed {
        gap: f64,
        runtime: f64,
        value: f64,
        decay: f64,
        depth: usize,
    },
    Drain,
}

fn build_script(seed: u64, commands: u64, queue_capacity: usize) -> Vec<ScriptStep> {
    let mut rng = ScriptRng::new(seed ^ 0xC0FF_EE00);
    let mut steps = Vec::with_capacity(commands.max(2) as usize);
    for i in 0..commands.max(2) - 1 {
        let gap = 0.05 + rng.next_f64() * 0.4;
        let runtime = 0.5 + rng.next_f64() * 4.0;
        let value = 5.0 + rng.next_f64() * 20.0;
        let decay = 0.01 + rng.next_f64() * 0.2;
        if i % 13 == 9 {
            steps.push(ScriptStep::Shed {
                gap,
                runtime,
                value,
                decay,
                depth: (rng.next_u64() as usize) % queue_capacity.max(1),
            });
        } else if i % 7 == 5 {
            steps.push(ScriptStep::Cancel {
                pick: rng.next_u64(),
            });
        } else {
            steps.push(ScriptStep::Submit {
                gap,
                runtime,
                value,
                decay,
            });
        }
    }
    steps.push(ScriptStep::Drain);
    steps
}

/// Turns a script step into a concrete command at the machine's current
/// task-id frontier; `None` when the step has nothing to act on (a
/// cancel before anything was submitted) — identically skipped by the
/// reference and chaos runs.
fn materialize(
    step: &ScriptStep,
    machine: &ServiceMachine,
    submitted: &[u64],
    clock: &mut f64,
) -> Option<(Time, CommandKind)> {
    match step {
        ScriptStep::Submit {
            gap,
            runtime,
            value,
            decay,
        } => {
            *clock += gap;
            let spec = TaskSpec::new(
                machine.next_task_id(),
                *clock,
                *runtime,
                *value,
                *decay,
                PenaltyBound::Bounded { max_penalty: 0.0 },
            );
            Some((Time::new(*clock), CommandKind::Submit { spec }))
        }
        ScriptStep::Cancel { pick } => {
            if submitted.is_empty() {
                return None;
            }
            let task = submitted[(*pick as usize) % submitted.len()];
            Some((Time::new(*clock), CommandKind::Cancel { task: TaskId(task) }))
        }
        ScriptStep::Shed {
            gap,
            runtime,
            value,
            decay,
            depth,
        } => {
            *clock += gap;
            let spec = TaskSpec::new(
                machine.next_task_id(),
                *clock,
                *runtime,
                *value,
                *decay,
                PenaltyBound::Bounded { max_penalty: 0.0 },
            );
            Some((
                Time::new(*clock),
                CommandKind::Shed {
                    spec,
                    queue_depth: *depth,
                    reason: ShedReason::LowestValue,
                },
            ))
        }
        ScriptStep::Drain => Some((Time::new(*clock), CommandKind::Drain)),
    }
}

/// The uninjected reference fold: same script, infallible journal.
fn drive_reference_serve(mc: &MachineConfig, script: &[ScriptStep]) -> String {
    let mut machine = ServiceMachine::new(mc.clone());
    let mut submitted = Vec::new();
    let mut clock = 0.0f64;
    for step in script {
        let Some((at, kind)) = materialize(step, &machine, &submitted, &mut clock) else {
            continue;
        };
        let cmd = ServeCommand {
            seq: machine.applied(),
            at,
            kind,
        };
        if let ApplyOutcome::Submitted { task, .. } = machine.apply(&cmd) {
            submitted.push(task.0);
        }
    }
    machine.snapshot_json()
}

/// Opens a fresh journal generation for the service machine, absorbing
/// genesis-snapshot faults.
fn serve_generation(
    machine: &ServiceMachine,
    registry: &Arc<ChaosRegistry>,
    crashes: &mut u64,
    events: &mut Vec<TraceEvent>,
    at: Time,
    name: &str,
) -> Result<(SharedImage, Journal), String> {
    loop {
        let (image, mut journal) = chaos_journal(registry);
        match journal.append_snapshot(machine.snapshot_json().as_bytes()) {
            Ok(()) => return Ok((image, journal)),
            Err(err) => {
                *crashes += 1;
                budget(*crashes, name)?;
                drain_injected(registry, at, events);
                push_recovered(
                    events,
                    at,
                    "durable.sink",
                    format!("genesis snapshot failed ({err}); reformatted"),
                );
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_serve_scenario(
    name: &str,
    seed: u64,
    commands: u64,
    processors: usize,
    policy: &str,
    queue_capacity: usize,
    snapshot_every: u64,
    registry: &Arc<ChaosRegistry>,
    events: &mut Vec<TraceEvent>,
) -> Result<(u64, u64, Vec<String>), String> {
    let policy = crate::cli::parse_policy(policy)?;
    let mc = MachineConfig {
        site: SiteConfig::new(processors)
            .with_policy(policy)
            .with_preemption(true),
        provenance: false,
        status_capacity: 65_536,
    };
    let script = build_script(seed, commands, queue_capacity);
    let reference_state = drive_reference_serve(&mc, &script);

    let mut crashes = 0u64;
    let mut replayed = 0u64;
    let mut machine = ServiceMachine::new(mc.clone());
    let (mut image, mut journal) =
        serve_generation(&machine, registry, &mut crashes, events, Time::ZERO, name)?;
    let mut submitted: Vec<u64> = Vec::new();
    let mut acked_tasks: Vec<u64> = Vec::new();
    let mut since_snapshot = 0u64;
    let mut clock = 0.0f64;

    // Crash + recover; returns true when the in-flight command turned
    // out to be durable after all (a failed fsync *after* the bytes
    // landed) and recovery already applied it — the ack-limbo case the
    // client must not retry.
    #[allow(clippy::too_many_arguments)]
    fn crash_recover(
        name: &str,
        err: &std::io::Error,
        at: Time,
        allow_absorbed: bool,
        machine: &mut ServiceMachine,
        image: &mut SharedImage,
        journal: &mut Journal,
        registry: &Arc<ChaosRegistry>,
        crashes: &mut u64,
        replayed: &mut u64,
        acked_tasks: &[u64],
        events: &mut Vec<TraceEvent>,
    ) -> Result<bool, String> {
        *crashes += 1;
        budget(*crashes, name)?;
        drain_injected(registry, at, events);
        let disk = disk_image_bytes(image, registry);
        let (recovered, rec) = ServiceRun::recover(&disk).map_err(|e| {
            format!("scenario '{name}': acked service state unrecoverable after '{err}': {e:?}")
        })?;
        let absorbed = recovered.applied() == machine.applied() + 1;
        if recovered.applied() != machine.applied() && !(allow_absorbed && absorbed) {
            return Err(format!(
                "scenario '{name}': acked-prefix durability violated — {} commands acked, \
                 {} recovered",
                machine.applied(),
                recovered.applied()
            ));
        }
        for &task in acked_tasks {
            if recovered.status(task).is_none() {
                return Err(format!(
                    "scenario '{name}': acked task {task} lost its /status entry across recovery"
                ));
            }
        }
        *replayed += rec.replayed;
        push_recovered(
            events,
            at,
            "durable.sink",
            format!(
                "crash on '{err}': applied={} replayed={} dropped_bytes={}{}",
                recovered.applied(),
                rec.replayed,
                rec.dropped_bytes,
                if absorbed { " absorbed-in-flight" } else { "" }
            ),
        );
        *machine = recovered;
        let (ni, nj) = serve_generation(machine, registry, crashes, events, at, name)?;
        *image = ni;
        *journal = nj;
        Ok(absorbed)
    }

    for step in &script {
        let Some((at, kind)) = materialize(step, &machine, &submitted, &mut clock) else {
            continue;
        };
        loop {
            let cmd = ServeCommand {
                seq: machine.applied(),
                at,
                kind: kind.clone(),
            };
            let payload = serde_json::to_string(&cmd)
                .map_err(|e| format!("scenario '{name}': command serialization failed: {e}"))?;
            match journal.append_event(payload.as_bytes()) {
                Ok(()) => {
                    let outcome = machine.apply(&cmd);
                    match outcome {
                        ApplyOutcome::Submitted { task, .. } => {
                            submitted.push(task.0);
                            acked_tasks.push(task.0);
                        }
                        ApplyOutcome::Shed { task, .. } => acked_tasks.push(task.0),
                        _ => {}
                    }
                    drain_injected(registry, at, events);
                    since_snapshot += 1;
                    if snapshot_every > 0 && since_snapshot >= snapshot_every {
                        match journal.append_snapshot(machine.snapshot_json().as_bytes()) {
                            Ok(()) => since_snapshot = 0,
                            Err(err) => {
                                // A snapshot is never in ack limbo: commands
                                // on disk are unaffected whether or not the
                                // snapshot record survived.
                                crash_recover(
                                    name,
                                    &err,
                                    at,
                                    false,
                                    &mut machine,
                                    &mut image,
                                    &mut journal,
                                    registry,
                                    &mut crashes,
                                    &mut replayed,
                                    &acked_tasks,
                                    events,
                                )?;
                                since_snapshot = 0;
                            }
                        }
                    }
                    break;
                }
                Err(err) => {
                    let absorbed = crash_recover(
                        name,
                        &err,
                        at,
                        true,
                        &mut machine,
                        &mut image,
                        &mut journal,
                        registry,
                        &mut crashes,
                        &mut replayed,
                        &acked_tasks,
                        events,
                    )?;
                    if absorbed {
                        // Recovery applied the in-flight command; account
                        // for its (deterministic, pre-assigned) task id
                        // and move on without retrying.
                        match &kind {
                            CommandKind::Submit { spec } | CommandKind::Shed { spec, .. } => {
                                if matches!(kind, CommandKind::Submit { .. }) {
                                    submitted.push(spec.id.0);
                                }
                                acked_tasks.push(spec.id.0);
                            }
                            _ => {}
                        }
                        since_snapshot += 1;
                        break;
                    }
                    // Not absorbed: the command never became durable —
                    // retry it against the recovered machine.
                }
            }
        }
    }

    bit_identity_check(name, "final-service-state", &reference_state, &machine.snapshot_json())?;
    if machine.violations() > 0 {
        return Err(format!(
            "scenario '{name}': {} auditor violations in the faulted service run",
            machine.violations()
        ));
    }
    if machine.counters().drains == 0 {
        return Err(format!(
            "scenario '{name}': the drain command never survived to the machine"
        ));
    }
    Ok((
        crashes,
        replayed,
        vec![
            "bit-identical-to-reference".to_string(),
            "acked-prefix-durable".to_string(),
            "auditors-clean".to_string(),
            "drained-cleanly".to_string(),
        ],
    ))
}

/// Runs one scenario once. The trace events returned are the chaos
/// markers (`ChaosInjected` / `ChaosRecovered`) the run emitted, in
/// deterministic order.
pub fn run_scenario(
    scenario: &Scenario,
    seed_override: Option<u64>,
) -> Result<(ScenarioReport, Vec<TraceEvent>), String> {
    let seed = seed_override.unwrap_or(scenario.seed);
    let registry = Arc::new(ChaosRegistry::new(seed, scenario.failpoints.clone()));
    let mut events = Vec::new();
    let name = scenario.name.as_str();
    let (crashes, replayed, checks) = match &scenario.target {
        ScenarioTarget::Site {
            tasks,
            processors,
            load,
            policy,
            snapshot_every,
        } => run_site_scenario(
            name,
            seed,
            *tasks,
            *processors,
            *load,
            policy,
            *snapshot_every,
            &registry,
            &mut events,
        )?,
        ScenarioTarget::Market {
            tasks,
            sites,
            processors,
            load,
            policy,
            shards,
            snapshot_every,
        } => run_market_scenario(
            name,
            seed,
            *tasks,
            *sites,
            *processors,
            *load,
            policy,
            *shards,
            *snapshot_every,
            &registry,
            &mut events,
        )?,
        ScenarioTarget::Serve {
            commands,
            processors,
            policy,
            queue_capacity,
            snapshot_every,
        } => run_serve_scenario(
            name,
            seed,
            *commands,
            *processors,
            policy,
            *queue_capacity,
            *snapshot_every,
            &registry,
            &mut events,
        )?,
    };
    if !scenario.failpoints.is_empty() && registry.fired_total() == 0 {
        return Err(format!(
            "scenario '{name}': schedule armed but no failpoint ever fired — \
             check point names against DESIGN.md §15"
        ));
    }
    Ok((
        ScenarioReport {
            name: scenario.name.clone(),
            class: scenario.target.class().to_string(),
            seed,
            injected: registry.fired_total(),
            by_point: registry.fired_by_point(),
            crashes,
            replayed,
            checks,
        },
        events,
    ))
}

/// Runs every scenario **twice**, enforcing the determinism contract:
/// both runs must produce byte-identical reports and chaos traces.
pub fn run_corpus(
    scenarios: &[Scenario],
    seed_override: Option<u64>,
) -> Result<(CorpusReport, Vec<TraceEvent>), String> {
    let mut reports = Vec::with_capacity(scenarios.len());
    let mut all_events = Vec::new();
    for scenario in scenarios {
        let (r1, e1) = run_scenario(scenario, seed_override)?;
        let (r2, e2) = run_scenario(scenario, seed_override)?;
        let a = serde_json::to_string(&r1).map_err(|e| e.to_string())?;
        let b = serde_json::to_string(&r2).map_err(|e| e.to_string())?;
        let ea = to_jsonl(&e1);
        let eb = to_jsonl(&e2);
        if a != b || ea != eb {
            let first = dump(&scenario.name, "run1", &format!("{a}\n{ea}"));
            let second = dump(&scenario.name, "run2", &format!("{b}\n{eb}"));
            return Err(format!(
                "scenario '{}' is NONDETERMINISTIC: two runs with seed {} diverged \
                 (dumps: {first} vs {second})",
                scenario.name, r1.seed
            ));
        }
        reports.push(r1);
        all_events.extend(e1);
    }
    let total_injected = reports.iter().map(|r| r.injected).sum();
    let total_crashes = reports.iter().map(|r| r.crashes).sum();
    Ok((
        CorpusReport {
            scenarios: reports,
            total_injected,
            total_crashes,
            deterministic: true,
        },
        all_events,
    ))
}
