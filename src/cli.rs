//! Implementation of the `mbts` command-line tool.
//!
//! The binary (`src/bin/mbts.rs`) is a thin wrapper; everything here is a
//! plain function so parsing and command execution are unit-testable.
//!
//! ```text
//! mbts gen    --out trace.json [--tasks N] [--processors P] [--load L]
//!             [--seed S] [--value-skew R] [--decay-skew R] [--mean-decay D]
//!             [--bound zero|unbounded|prop:F] [--widths one|uniform:LO:HI|pow2:E]
//! mbts run    --trace trace.json [--policy SPEC] [--admission SPEC]
//!             [--processors P] [--preemption] [--drop-expired] [--gantt]
//!             [--classes] [--journal FILE]
//! mbts market --trace trace.json [--sites N] [--procs-per-site P]
//!             [--policy SPEC] [--admission SPEC]
//!             [--selection earliest|slack|random|first] [--second-price]
//!             [--journal FILE] [--shards N]
//! mbts serve  [--addr HOST:PORT] [--journal FILE] [--processors P]
//!             [--policy SPEC] [--admission SPEC] [--queue-cap N]
//!             [--shed-threshold N] [--time-scale X] [--provenance]
//! mbts flood  --addr HOST:PORT [--requests N] [--connections N]
//!             [--pipeline N] [--gate-rps R] [--out FILE]
//! mbts top    [--addr HOST:PORT] [--interval S] [--count N | --once]
//! mbts analyze FILE... [--format text|json] [--buckets N] [--out FILE]
//! mbts metrics --trace FILE [--label NAME] [--prom FILE]
//! mbts resume --journal FILE
//! mbts policies
//! ```
//!
//! `run`/`market` accept `--trace-out FILE` to capture the structured
//! event stream as JSON Lines, `--provenance` to additionally record a
//! ranked, score-decomposed candidate set at every dispatch, preemption,
//! admission and bid-selection decision, and `--profile FILE` to enable
//! the hot-path self-profiler and save its latency histograms. `mbts
//! analyze` post-processes any of those outputs (plus durable journals)
//! into yield-attribution, preemption-chain, admission-regret and
//! utilization reports.
//!
//! `--shards N` runs the economy as N parallel site groups under the
//! conservative parallel-discrete-event engine; the result is
//! bit-identical to the serial run, and the summary (plus the profile
//! report, when `--profile` is also given) gains per-shard utilization
//! and barrier-stall figures. `--shards` is incompatible with
//! `--journal`: the durable journal serializes one global event order,
//! which only the serial engine produces — passing both is a parse
//! error, not a silent fallback.
//!
//! `mbts serve` fronts the same deterministic core as a live HTTP+JSON
//! daemon: every accepted command is journal-appended *before* it is
//! applied, so a `kill -9` at any instant recovers — via `mbts serve
//! --journal FILE` again, or offline via `mbts resume` / `mbts analyze`
//! — to exactly the state the acknowledged prefix implies. Overload is
//! first-class: a bounded admission queue answers 429 + `Retry-After`
//! when full, and a deadline-aware shed pass drops expired-then-lowest-
//! present-value work (provenance-traced, so `mbts analyze` can report
//! the regret of shedding). `mbts flood` is the matching load/chaos
//! client and writes the `BENCH_serve.json` throughput artifact. The
//! daemon exposes a live telemetry plane — `GET /metrics` (Prometheus
//! text), `GET /healthz`, `GET /readyz` — and `mbts top` is the
//! matching terminal dashboard: it polls `/metrics` and renders request
//! rates, latency quantiles, and a queue-depth sparkline.
//!
//! `--journal FILE` makes `run`/`market` crash-recoverable: the full
//! replay state is snapshotted and every applied event journaled to
//! `FILE` (CRC-framed, flushed per record). If the process dies — even
//! mid-write — `mbts resume --journal FILE` restores the latest intact
//! state, replays the event suffix, and finishes the run with the exact
//! outcome the uninterrupted run would have produced.
//!
//! Policy specs: `fcfs`, `srpt`, `swpt`, `first-price`, `pv:<rate>`,
//! `first-reward:<alpha>:<rate>`. Admission specs: `all`, `positive`,
//! `slack:<threshold>`.

use mbts_core::{AdmissionPolicy, Policy};
use mbts_market::{ClientSelection, Economy, EconomyConfig, PricingStrategy};
use mbts_site::{class_breakdown, render_gantt, Site, SiteConfig};
use mbts_workload::{
    generate_trace, generate_workflows, BoundPolicy, MixConfig, Trace, WidthPolicy, WorkflowConfig,
    WorkflowSet, WorkflowShape,
};
use std::path::PathBuf;

/// A parsed `mbts` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a trace and write it to disk (synthetic, or imported
    /// from an SWF log with synthetic valuation).
    Gen {
        /// Output path.
        out: PathBuf,
        /// The mix to generate (or to draw values/decay from when
        /// importing).
        mix: MixConfig,
        /// Generator seed.
        seed: u64,
        /// SWF log to import instead of generating synthetically.
        swf: Option<PathBuf>,
        /// Generate a seeded DAG workflow set instead of a flat trace.
        workflow: Option<WorkflowConfig>,
    },
    /// Run one site over a stored trace or workflow set.
    Run {
        /// Input trace path (`--trace`; absent for workflow replays).
        trace: Option<PathBuf>,
        /// Input workflow-set path (`--workflow`; successors release as
        /// predecessors complete and admission sees DAG structure).
        workflow: Option<PathBuf>,
        /// Site configuration.
        site: SiteConfig,
        /// Render an ASCII Gantt chart of the schedule.
        gantt: bool,
        /// Print the per-value-class breakdown.
        classes: bool,
        /// Write the structured audit log (JSON Lines) to this path.
        audit: Option<PathBuf>,
        /// Journal snapshots + events to this path (crash-recoverable).
        journal: Option<PathBuf>,
        /// Write the trace-event stream (JSON Lines) to this path.
        trace_out: Option<PathBuf>,
        /// Emit decision-provenance records into the trace stream.
        provenance: bool,
        /// Enable the hot-path self-profiler and write its report
        /// (JSON) to this path.
        profile: Option<PathBuf>,
    },
    /// Run a multi-site economy over a stored trace or workflow set.
    Market {
        /// Input trace path (`--trace`; absent for workflow replays).
        trace: Option<PathBuf>,
        /// Input workflow-set path (`--workflow`; only roots arrive at
        /// the market, successors release on predecessor completion).
        workflow: Option<PathBuf>,
        /// Economy configuration.
        economy: EconomyConfig,
        /// Journal snapshots + events to this path (crash-recoverable).
        journal: Option<PathBuf>,
        /// Write the market-layer trace-event stream to this path.
        trace_out: Option<PathBuf>,
        /// Emit decision-provenance records into the trace stream.
        provenance: bool,
        /// Enable the hot-path self-profiler and write its report
        /// (JSON) to this path.
        profile: Option<PathBuf>,
        /// Run the economy sharded across this many parallel site
        /// groups (1 = the serial engine). Results are bit-identical
        /// whatever the count.
        shards: usize,
    },
    /// Post-process trace / journal / profiler files into reports.
    Analyze {
        /// Input files: trace JSONL, durable journals, or profiler
        /// reports (auto-detected per file).
        inputs: Vec<PathBuf>,
        /// Emit machine-readable JSON instead of text.
        json: bool,
        /// Utilization-timeline bucket count.
        buckets: usize,
        /// Write the report here instead of stdout.
        out: Option<PathBuf>,
    },
    /// Aggregate a trace into per-policy metrics; optionally export
    /// Prometheus exposition text.
    Metrics {
        /// Input trace (JSON Lines of trace events).
        trace: PathBuf,
        /// Policy label the metrics are attributed to.
        label: String,
        /// Processor count for utilization accounting.
        processors: usize,
        /// Profiler report (JSON) to fold into the Prometheus export.
        profile: Option<PathBuf>,
        /// Write Prometheus exposition text to this path.
        prom: Option<PathBuf>,
    },
    /// Recover an interrupted journaled run and finish it.
    Resume {
        /// Journal written by `run --journal`, `market --journal`, or
        /// `serve --journal`.
        journal: PathBuf,
    },
    /// Run the live task-service daemon: HTTP + JSON over the journaled
    /// deterministic sim core.
    Serve {
        /// Bind address (`127.0.0.1:0` picks an ephemeral port).
        addr: String,
        /// The fronted site.
        site: SiteConfig,
        /// Journal file — the source of truth for recovery. `None`
        /// journals in memory only (no durability).
        journal: Option<PathBuf>,
        /// Bounded admission-queue capacity; a full queue answers 429.
        queue_capacity: usize,
        /// Queue depth that trips the shed pass (0 = capacity / 2).
        shed_threshold: usize,
        /// Sim-time units that elapse per wall-clock second.
        time_scale: f64,
        /// Snapshot cadence in applied commands.
        snapshot_every: u64,
        /// Fsync cadence in journal appends (0 = OS-buffered).
        fsync_every_n: u64,
        /// Emit provenance decision records (admissions + sheds).
        provenance: bool,
        /// `/status` registry retention.
        status_capacity: usize,
        /// Artificial per-command apply delay in microseconds — a chaos
        /// knob that makes overload reproducible on fast machines.
        throttle_us: u64,
        /// Enable the self-profiler; write its report here at drain.
        profile: Option<PathBuf>,
        /// Failpoint schedule (JSON array of specs) arming the socket
        /// layer (`serve.accept`, `serve.conn.read`, `serve.conn.write`).
        chaos: Option<PathBuf>,
        /// Seed for the armed failpoint streams.
        chaos_seed: u64,
        /// Disable the live telemetry registry (`/metrics` serves an
        /// empty exposition). Exists for honest overhead A/B runs —
        /// the registry is designed to stay on in production.
        no_telemetry: bool,
    },
    /// Load-test (and chaos-test) a live `mbts serve` daemon.
    Flood {
        /// Daemon address.
        addr: String,
        /// Total submissions to deliver.
        requests: u64,
        /// Concurrent connections (threads).
        connections: usize,
        /// Pipelining depth per batch.
        pipeline: usize,
        /// RNG seed for bid values and retry jitter.
        seed: u64,
        /// Retry budget per request on 429 / connection drop.
        retries: u32,
        /// Cancel an earlier accepted task every N submissions (0 =
        /// never).
        cancel_every: u64,
        /// Interleave a malformed protocol-garbage request every N
        /// submissions (0 = never); each must earn a 400/413 while the
        /// daemon keeps serving.
        malformed_every: u64,
        /// Throughput floor in req/s; enforced only on multi-core
        /// runners, always reported.
        gate_rps: Option<f64>,
        /// Write the flood report (`BENCH_serve.json` shape) here.
        out: Option<PathBuf>,
    },
    /// Live text dashboard over a daemon's `GET /metrics` endpoint.
    Top {
        /// Daemon address.
        addr: String,
        /// Seconds between scrapes.
        interval: f64,
        /// Stop after N frames (`--once` = 1); `None` polls until the
        /// daemon goes away.
        count: Option<u64>,
    },
    /// Paired A/B comparison of two policies on fresh seeded workloads.
    Compare {
        /// Site A.
        a: SiteConfig,
        /// Site B.
        b: SiteConfig,
        /// Workload mix.
        mix: MixConfig,
        /// Replications.
        seeds: u64,
    },
    /// Run deterministic fault-injection scenarios from JSON schedules.
    Chaos {
        /// Scenario files, or directories scanned for `*.json`.
        inputs: Vec<PathBuf>,
        /// Override every scenario's seed (determinism check still runs).
        seed: Option<u64>,
        /// Emit the corpus report as JSON instead of text.
        json: bool,
        /// Write the report here instead of stdout.
        out: Option<PathBuf>,
        /// Write the ChaosInjected/ChaosRecovered event stream (JSON
        /// Lines) to this path.
        trace_out: Option<PathBuf>,
    },
    /// Validate a stored trace.
    Validate {
        /// Input trace path.
        trace: PathBuf,
    },
    /// List available policies.
    Policies,
}

/// Parses a policy spec (`first-reward:0.3:0.01` etc.).
pub fn parse_policy(spec: &str) -> Result<Policy, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        ["fcfs"] => Ok(Policy::Fcfs),
        ["srpt"] => Ok(Policy::Srpt),
        ["swpt"] => Ok(Policy::Swpt),
        ["first-price"] => Ok(Policy::FirstPrice),
        ["edf"] => Ok(Policy::EarliestDeadline),
        ["pv", rate] => {
            let rate: f64 = rate.parse().map_err(|_| format!("bad rate in {spec}"))?;
            Ok(Policy::pv(rate))
        }
        ["first-reward", alpha, rate] => {
            let alpha: f64 = alpha.parse().map_err(|_| format!("bad alpha in {spec}"))?;
            let rate: f64 = rate.parse().map_err(|_| format!("bad rate in {spec}"))?;
            if !(0.0..=1.0).contains(&alpha) {
                return Err(format!("alpha must be in [0,1], got {alpha}"));
            }
            Ok(Policy::first_reward(alpha, rate))
        }
        _ => Err(format!(
            "unknown policy '{spec}' (try: fcfs, srpt, swpt, first-price, edf, \
             pv:<rate>, first-reward:<alpha>:<rate>)"
        )),
    }
}

/// Parses an admission spec (`all`, `positive`, `slack:180`).
pub fn parse_admission(spec: &str) -> Result<AdmissionPolicy, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        ["all"] => Ok(AdmissionPolicy::AcceptAll),
        ["positive"] => Ok(AdmissionPolicy::PositiveExpectedYield),
        ["slack", t] => {
            let threshold: f64 = t.parse().map_err(|_| format!("bad threshold in {spec}"))?;
            Ok(AdmissionPolicy::SlackThreshold { threshold })
        }
        _ => Err(format!(
            "unknown admission policy '{spec}' (try: all, positive, slack:<threshold>)"
        )),
    }
}

/// Parses a bound spec (`zero`, `unbounded`, `prop:0.5`).
pub fn parse_bound(spec: &str) -> Result<BoundPolicy, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        ["zero"] => Ok(BoundPolicy::ZeroFloor),
        ["unbounded"] => Ok(BoundPolicy::Unbounded),
        ["prop", f] => {
            let fraction: f64 = f.parse().map_err(|_| format!("bad fraction in {spec}"))?;
            Ok(BoundPolicy::ProportionalPenalty { fraction })
        }
        _ => Err(format!(
            "unknown bound '{spec}' (try: zero, unbounded, prop:<fraction>)"
        )),
    }
}

/// Parses a width spec (`one`, `uniform:1:4`, `pow2:3`).
pub fn parse_widths(spec: &str) -> Result<WidthPolicy, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        ["one"] => Ok(WidthPolicy::One),
        ["uniform", lo, hi] => {
            let lo: usize = lo.parse().map_err(|_| format!("bad lo in {spec}"))?;
            let hi: usize = hi.parse().map_err(|_| format!("bad hi in {spec}"))?;
            if lo < 1 || hi < lo {
                return Err(format!("need 1 <= lo <= hi in {spec}"));
            }
            Ok(WidthPolicy::Uniform { lo, hi })
        }
        ["pow2", e] => {
            let max_exp: u32 = e.parse().map_err(|_| format!("bad exponent in {spec}"))?;
            Ok(WidthPolicy::PowersOfTwo { max_exp })
        }
        _ => Err(format!(
            "unknown width policy '{spec}' (try: one, uniform:<lo>:<hi>, pow2:<max_exp>)"
        )),
    }
}

/// Parses a client-selection spec.
pub fn parse_selection(spec: &str) -> Result<ClientSelection, String> {
    match spec {
        "earliest" => Ok(ClientSelection::EarliestCompletion),
        "slack" => Ok(ClientSelection::MaxSlack),
        "random" => Ok(ClientSelection::Random),
        "first" => Ok(ClientSelection::FirstResponder),
        _ => Err(format!(
            "unknown selection '{spec}' (try: earliest, slack, random, first)"
        )),
    }
}

/// Parses a DAG-shape spec: `fork-join:<width>`, `pipeline:<depth>`,
/// `layered:<layers>:<width>:<edge_prob>`.
pub fn parse_shape(spec: &str) -> Result<WorkflowShape, String> {
    let bad = || format!("unknown shape '{spec}' (try: fork-join:W, pipeline:D, layered:L:W:P)");
    let mut parts = spec.split(':');
    let kind = parts.next().ok_or_else(bad)?;
    let nums: Vec<&str> = parts.collect();
    let int = |s: &str| s.parse::<usize>().map_err(|_| bad());
    match (kind, nums.as_slice()) {
        ("fork-join", [w]) => {
            let width = int(w)?;
            if width == 0 {
                return Err("fork-join width must be at least 1".into());
            }
            Ok(WorkflowShape::ForkJoin { width })
        }
        ("pipeline", [d]) => {
            let depth = int(d)?;
            if depth == 0 {
                return Err("pipeline depth must be at least 1".into());
            }
            Ok(WorkflowShape::Pipeline { depth })
        }
        ("layered", [l, w, p]) => {
            let layers = int(l)?;
            let width = int(w)?;
            let edge_prob: f64 = p.parse().map_err(|_| bad())?;
            if layers == 0 || width == 0 {
                return Err("layered shape needs layers ≥ 1 and width ≥ 1".into());
            }
            if !(0.0..=1.0).contains(&edge_prob) {
                return Err("layered edge probability must lie in [0, 1]".into());
            }
            Ok(WorkflowShape::RandomLayered {
                layers,
                width,
                edge_prob,
            })
        }
        _ => Err(bad()),
    }
}

/// Usage text.
pub fn usage() -> &'static str {
    "usage: mbts <gen|run|market|serve|flood|top|chaos|analyze|metrics|resume|compare|validate|policies> [options]\n\
     \n\
     mbts gen    --out FILE [--swf LOG] [--tasks N] [--processors P] [--load L] [--seed S]\n\
     \x20           [--value-skew R] [--decay-skew R] [--mean-decay D]\n\
     \x20           [--bound zero|unbounded|prop:F] [--widths one|uniform:LO:HI|pow2:E]\n\
     \x20           [--workflow SHAPE [--workflows N]]  (writes a DAG workflow set)\n\
     mbts run    <--trace FILE | --workflow FILE> [--policy SPEC] [--admission SPEC]\n\
     \x20           [--processors P] [--preemption] [--drop-expired] [--gantt] [--classes]\n\
     \x20           [--audit FILE] [--journal FILE] [--trace-out FILE [--provenance]]\n\
     \x20           [--profile FILE]\n\
     mbts market <--trace FILE | --workflow FILE> [--sites N] [--procs-per-site P] [--policy SPEC]\n\
     \x20           [--admission SPEC] [--selection KIND] [--second-price] [--shards N]\n\
     \x20           [--journal FILE] [--trace-out FILE [--provenance]] [--profile FILE]\n\
     \x20           (--shards N is incompatible with --journal FILE: the durable\n\
     \x20            journal requires the serial engine's global event order)\n\
     mbts serve  [--addr HOST:PORT] [--journal FILE] [--processors P] [--policy SPEC]\n\
     \x20           [--admission SPEC] [--queue-cap N] [--shed-threshold N]\n\
     \x20           [--time-scale X] [--snapshot-every N] [--fsync-every N]\n\
     \x20           [--provenance] [--status-cap N] [--throttle-us U] [--profile FILE]\n\
     \x20           [--chaos SCHEDULE.json [--chaos-seed S]]  (arm socket failpoints)\n\
     \x20           [--no-telemetry]  (overhead A/B only; /metrics goes empty)\n\
     mbts flood  --addr HOST:PORT [--requests N] [--connections N] [--pipeline N]\n\
     \x20           [--seed S] [--retries N] [--cancel-every N] [--malformed-every N]\n\
     \x20           [--gate-rps R] [--out FILE]\n\
     mbts top    [--addr HOST:PORT] [--interval S] [--count N | --once]\n\
     \x20           (poll GET /metrics; rates, latency quantiles, queue sparkline)\n\
     mbts chaos  FILE|DIR... [--seed S] [--format text|json] [--out FILE]\n\
     \x20           [--trace-out FILE]  (runs each scenario twice; any\n\
     \x20            divergence between the runs fails the corpus)\n\
     mbts analyze FILE... [--format text|json] [--buckets N] [--out FILE]\n\
     mbts metrics --trace FILE [--label NAME] [--processors P] [--profile FILE]\n\
     \x20           [--prom FILE]\n\
     mbts resume --journal FILE\n\
     mbts compare --a SPEC --b SPEC [--tasks N] [--load L] [--seeds N]\n\
     \x20           [--processors P] [--admission SPEC] [--mean-decay D]\n\
     mbts validate --trace FILE\n\
     mbts policies\n\
     \n\
     policy specs: fcfs srpt swpt first-price pv:<rate> first-reward:<alpha>:<rate>\n\
     admission specs: all positive slack:<threshold>\n\
     shape specs: fork-join:<width> pipeline:<depth> layered:<layers>:<width>:<edge_prob>"
}

/// Parses a full argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter().map(String::as_str);
    let sub = it.next().ok_or_else(|| usage().to_string())?;
    let rest: Vec<&str> = it.collect();
    let get = |flag: &str| -> Option<&str> {
        rest.iter()
            .position(|a| *a == flag)
            .and_then(|i| rest.get(i + 1).copied())
    };
    let has = |flag: &str| rest.contains(&flag);
    let num = |flag: &str, default: f64| -> Result<f64, String> {
        match get(flag) {
            Some(v) => v.parse().map_err(|_| format!("{flag} needs a number")),
            None => Ok(default),
        }
    };
    let int = |flag: &str, default: usize| -> Result<usize, String> {
        match get(flag) {
            Some(v) => v.parse().map_err(|_| format!("{flag} needs an integer")),
            None => Ok(default),
        }
    };

    match sub {
        "gen" => {
            let out = PathBuf::from(get("--out").ok_or("gen requires --out FILE")?);
            let mut mix = MixConfig::millennium_default()
                .with_tasks(int("--tasks", 5000)?)
                .with_processors(int("--processors", 16)?)
                .with_load_factor(num("--load", 1.0)?)
                .with_value_skew(num("--value-skew", 3.0)?)
                .with_decay_skew(num("--decay-skew", 5.0)?)
                .with_mean_decay(num("--mean-decay", 0.05)?);
            if let Some(b) = get("--bound") {
                mix = mix.with_bound(parse_bound(b)?);
            }
            if let Some(w) = get("--widths") {
                mix = mix.with_width(parse_widths(w)?);
            }
            let seed = int("--seed", 42)? as u64;
            let swf = get("--swf").map(PathBuf::from);
            let workflow = match get("--workflow") {
                Some(spec) => {
                    if swf.is_some() {
                        return Err("--workflow and --swf are mutually exclusive".into());
                    }
                    let n = int("--workflows", 16)?;
                    if n == 0 {
                        return Err("--workflows must be at least 1".into());
                    }
                    let mut wf = WorkflowConfig::default_set()
                        .with_workflows(n)
                        .with_shape(parse_shape(spec)?)
                        .with_processors(int("--processors", 16)?)
                        .with_load_factor(num("--load", 1.0)?);
                    if let Some(b) = get("--bound") {
                        wf = wf.with_bound(parse_bound(b)?);
                    }
                    Some(wf)
                }
                None => None,
            };
            Ok(Command::Gen {
                out,
                mix,
                seed,
                swf,
                workflow,
            })
        }
        "run" => {
            let trace = get("--trace").map(PathBuf::from);
            let workflow = get("--workflow").map(PathBuf::from);
            match (&trace, &workflow) {
                (None, None) => return Err("run requires --trace FILE or --workflow FILE".into()),
                (Some(_), Some(_)) => {
                    return Err("--trace and --workflow are mutually exclusive".into())
                }
                _ => {}
            }
            let audit = get("--audit").map(PathBuf::from);
            let mut site = SiteConfig::new(int("--processors", 16)?)
                .with_preemption(has("--preemption"))
                .with_drop_expired(has("--drop-expired"))
                .with_audit(audit.is_some())
                .with_record_segments(has("--gantt"));
            if let Some(p) = get("--policy") {
                site = site.with_policy(parse_policy(p)?);
            }
            if let Some(a) = get("--admission") {
                site = site.with_admission(parse_admission(a)?);
            }
            let trace_out = get("--trace-out").map(PathBuf::from);
            let provenance = has("--provenance");
            if provenance && trace_out.is_none() {
                return Err("--provenance requires --trace-out FILE".into());
            }
            Ok(Command::Run {
                trace,
                workflow,
                site,
                gantt: has("--gantt"),
                classes: has("--classes"),
                audit,
                journal: get("--journal").map(PathBuf::from),
                trace_out,
                provenance,
                profile: get("--profile").map(PathBuf::from),
            })
        }
        "market" => {
            let trace = get("--trace").map(PathBuf::from);
            let workflow = get("--workflow").map(PathBuf::from);
            match (&trace, &workflow) {
                (None, None) => {
                    return Err("market requires --trace FILE or --workflow FILE".into())
                }
                (Some(_), Some(_)) => {
                    return Err("--trace and --workflow are mutually exclusive".into())
                }
                _ => {}
            }
            let mut site = SiteConfig::new(int("--procs-per-site", 8)?);
            if let Some(p) = get("--policy") {
                site = site.with_policy(parse_policy(p)?);
            }
            if let Some(a) = get("--admission") {
                site = site.with_admission(parse_admission(a)?);
            }
            let mut economy = EconomyConfig::uniform(int("--sites", 3)?, site);
            if let Some(s) = get("--selection") {
                economy.selection = parse_selection(s)?;
            }
            if has("--second-price") {
                economy.pricing = PricingStrategy::second_price();
            }
            economy.seed = int("--seed", 0)? as u64;
            let trace_out = get("--trace-out").map(PathBuf::from);
            let provenance = has("--provenance");
            if provenance && trace_out.is_none() {
                return Err("--provenance requires --trace-out FILE".into());
            }
            let journal = get("--journal").map(PathBuf::from);
            let shards = int("--shards", 1)?;
            if shards == 0 {
                return Err("--shards must be at least 1".into());
            }
            if shards > 1 && journal.is_some() {
                return Err("--shards requires the serial engine; drop --journal".into());
            }
            Ok(Command::Market {
                trace,
                workflow,
                economy,
                journal,
                trace_out,
                provenance,
                profile: get("--profile").map(PathBuf::from),
                shards,
            })
        }
        "analyze" => {
            let json = match get("--format") {
                None | Some("text") => false,
                Some("json") => true,
                Some(other) => return Err(format!("unknown format '{other}' (try: text, json)")),
            };
            let buckets = int("--buckets", 20)?;
            if buckets == 0 {
                return Err("--buckets must be at least 1".into());
            }
            // Positional inputs: everything that is neither a flag nor
            // the value of a value-taking flag.
            let mut inputs = Vec::new();
            let mut skip = false;
            for a in &rest {
                if skip {
                    skip = false;
                    continue;
                }
                match *a {
                    "--format" | "--buckets" | "--out" => skip = true,
                    f if f.starts_with("--") => return Err(format!("unknown flag '{f}'")),
                    file => inputs.push(PathBuf::from(file)),
                }
            }
            if inputs.is_empty() {
                return Err("analyze requires at least one input file".into());
            }
            Ok(Command::Analyze {
                inputs,
                json,
                buckets,
                out: get("--out").map(PathBuf::from),
            })
        }
        "metrics" => {
            let trace = PathBuf::from(get("--trace").ok_or("metrics requires --trace FILE")?);
            Ok(Command::Metrics {
                trace,
                label: get("--label").unwrap_or("trace").to_string(),
                processors: int("--processors", 16)?,
                profile: get("--profile").map(PathBuf::from),
                prom: get("--prom").map(PathBuf::from),
            })
        }
        "resume" => {
            let journal = PathBuf::from(get("--journal").ok_or("resume requires --journal FILE")?);
            Ok(Command::Resume { journal })
        }
        "serve" => {
            let addr = get("--addr").unwrap_or("127.0.0.1:7741").to_string();
            let mut site = SiteConfig::new(int("--processors", 4)?);
            if let Some(p) = get("--policy") {
                site = site.with_policy(parse_policy(p)?);
            }
            if let Some(a) = get("--admission") {
                site = site.with_admission(parse_admission(a)?);
            }
            let queue_capacity = int("--queue-cap", 1024)?;
            if queue_capacity == 0 {
                return Err("--queue-cap must be at least 1".into());
            }
            let time_scale = num("--time-scale", 1.0)?;
            if time_scale <= 0.0 || !time_scale.is_finite() {
                return Err("--time-scale must be a positive number".into());
            }
            Ok(Command::Serve {
                addr,
                site,
                journal: get("--journal").map(PathBuf::from),
                queue_capacity,
                shed_threshold: int("--shed-threshold", 0)?,
                time_scale,
                snapshot_every: int("--snapshot-every", 8192)? as u64,
                fsync_every_n: int("--fsync-every", 0)? as u64,
                provenance: has("--provenance"),
                status_capacity: int("--status-cap", 65_536)?,
                throttle_us: int("--throttle-us", 0)? as u64,
                profile: get("--profile").map(PathBuf::from),
                chaos: get("--chaos").map(PathBuf::from),
                chaos_seed: int("--chaos-seed", 42)? as u64,
                no_telemetry: has("--no-telemetry"),
            })
        }
        "flood" => {
            let addr = get("--addr")
                .ok_or("flood requires --addr HOST:PORT")?
                .to_string();
            let connections = int("--connections", 4)?;
            if connections == 0 {
                return Err("--connections must be at least 1".into());
            }
            let pipeline = int("--pipeline", 32)?;
            if pipeline == 0 {
                return Err("--pipeline must be at least 1".into());
            }
            let gate_rps = match get("--gate-rps") {
                Some(v) => Some(
                    v.parse::<f64>()
                        .map_err(|_| "--gate-rps needs a number".to_string())?,
                ),
                None => None,
            };
            Ok(Command::Flood {
                addr,
                requests: int("--requests", 10_000)? as u64,
                connections,
                pipeline,
                seed: int("--seed", 42)? as u64,
                retries: int("--retries", 3)? as u32,
                cancel_every: int("--cancel-every", 0)? as u64,
                malformed_every: int("--malformed-every", 0)? as u64,
                gate_rps,
                out: get("--out").map(PathBuf::from),
            })
        }
        "top" => {
            let interval = num("--interval", 1.0)?;
            if !(interval > 0.0) {
                return Err("--interval must be positive".into());
            }
            let count = if has("--once") {
                Some(1)
            } else {
                match get("--count") {
                    Some(v) => Some(
                        v.parse::<u64>()
                            .map_err(|_| "--count needs an integer".to_string())?,
                    ),
                    None => None,
                }
            };
            Ok(Command::Top {
                addr: get("--addr").unwrap_or("127.0.0.1:7741").to_string(),
                interval,
                count,
            })
        }
        "chaos" => {
            let json = match get("--format") {
                None | Some("text") => false,
                Some("json") => true,
                Some(other) => return Err(format!("unknown format '{other}' (try: text, json)")),
            };
            let seed = match get("--seed") {
                Some(v) => Some(
                    v.parse::<u64>()
                        .map_err(|_| "--seed needs an integer".to_string())?,
                ),
                None => None,
            };
            // Positional inputs: everything that is neither a flag nor
            // the value of a value-taking flag.
            let mut inputs = Vec::new();
            let mut skip = false;
            for a in &rest {
                if skip {
                    skip = false;
                    continue;
                }
                match *a {
                    "--format" | "--seed" | "--out" | "--trace-out" => skip = true,
                    f if f.starts_with("--") => return Err(format!("unknown flag '{f}'")),
                    file => inputs.push(PathBuf::from(file)),
                }
            }
            if inputs.is_empty() {
                return Err("chaos requires at least one scenario file or directory".into());
            }
            Ok(Command::Chaos {
                inputs,
                seed,
                json,
                out: get("--out").map(PathBuf::from),
                trace_out: get("--trace-out").map(PathBuf::from),
            })
        }
        "compare" => {
            let pa = parse_policy(get("--a").ok_or("compare requires --a SPEC")?)?;
            let pb = parse_policy(get("--b").ok_or("compare requires --b SPEC")?)?;
            let procs = int("--processors", 16)?;
            let mut a = SiteConfig::new(procs).with_policy(pa);
            let mut b = SiteConfig::new(procs).with_policy(pb);
            if let Some(adm) = get("--admission") {
                let adm = parse_admission(adm)?;
                a = a.with_admission(adm);
                b = b.with_admission(adm);
            }
            let mix = MixConfig::millennium_default()
                .with_tasks(int("--tasks", 2000)?)
                .with_processors(procs)
                .with_load_factor(num("--load", 1.0)?)
                .with_mean_decay(num("--mean-decay", 0.05)?);
            Ok(Command::Compare {
                a,
                b,
                mix,
                seeds: int("--seeds", 5)? as u64,
            })
        }
        "validate" => {
            let trace = PathBuf::from(get("--trace").ok_or("validate requires --trace FILE")?);
            Ok(Command::Validate { trace })
        }
        "policies" => Ok(Command::Policies),
        other => Err(format!("unknown subcommand '{other}'\n{}", usage())),
    }
}

/// Events between journal snapshots for `--journal` runs: frequent
/// enough to bound resume replay, sparse enough that journal size stays
/// dominated by the (small) event records.
const JOURNAL_SNAPSHOT_EVERY: u64 = 4096;

fn market_summary(
    outcome: &mbts_market::EconomyOutcome,
    out: &mut dyn std::io::Write,
) -> Result<(), String> {
    writeln!(
        out,
        "{} sites | offered {}  placed {}  unplaced {}  violations {}",
        outcome.per_site.len(),
        outcome.offered,
        outcome.placed,
        outcome.unplaced,
        outcome.violations()
    )
    .map_err(|e| e.to_string())?;
    writeln!(
        out,
        "total yield {:.1}  settled {:.1}  charged {:.1}",
        outcome.total_yield(),
        outcome.total_settled,
        outcome.total_paid
    )
    .map_err(|e| e.to_string())?;
    if let Some(r) = &outcome.workflows {
        writeln!(
            out,
            "workflows {}  settled {}  failed {}  stranded tasks {}  workflow yield {:.1}",
            r.workflows, r.settled, r.failed, outcome.stranded, r.total_earned
        )
        .map_err(|e| e.to_string())?;
    }
    for (i, s) in outcome.per_site.iter().enumerate() {
        writeln!(
            out,
            "  site {i}: won {:>5}  completed {:>5}  yield {:>10.1}  rate {:>8.3}",
            s.metrics.accepted,
            s.metrics.completed,
            s.metrics.total_yield,
            s.metrics.yield_rate()
        )
        .map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn resume_banner(
    kind: &str,
    events_handled: u64,
    report: &mbts_durable::RecoveryReport,
    out: &mut dyn std::io::Write,
) -> Result<(), String> {
    writeln!(
        out,
        "recovered {kind} run at event {events_handled} \
         (replayed {} journaled events, dropped {} torn bytes)",
        report.replayed_events, report.dropped_bytes
    )
    .map_err(|e| e.to_string())
}

/// Loads and validates a workflow set when `--workflow` was given.
fn load_workflow_set(path: Option<&std::path::Path>) -> Result<Option<WorkflowSet>, String> {
    match path {
        Some(p) => WorkflowSet::load(p)
            .map(Some)
            .map_err(|e| format!("cannot read {}: {e}", p.display())),
        None => Ok(None),
    }
}

/// Builds the tracer for a `run`/`market` invocation: a buffering sink
/// when the event stream is wanted, optionally provenance-wrapped.
fn make_tracer(capture: bool, provenance: bool) -> mbts_trace::Tracer {
    let tracer = if capture {
        mbts_trace::Tracer::buffer()
    } else {
        mbts_trace::Tracer::Off
    };
    if provenance {
        tracer.with_provenance()
    } else {
        tracer
    }
}

/// Arms the self-profiler for one run; returns whether it was armed.
fn start_profiling(wanted: bool) -> bool {
    if wanted {
        mbts_sim::profiler::reset();
        mbts_sim::profiler::enable();
    }
    wanted
}

/// Writes the captured event stream as JSON Lines, if requested.
fn write_trace_out(
    path: Option<&std::path::Path>,
    tracer: mbts_trace::Tracer,
    out: &mut dyn std::io::Write,
) -> Result<(), String> {
    let Some(path) = path else { return Ok(()) };
    let events = tracer.into_events().unwrap_or_default();
    std::fs::write(path, mbts_trace::to_jsonl(&events))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    writeln!(out, "trace: {} events -> {}", events.len(), path.display()).map_err(|e| e.to_string())
}

/// Converts a market-layer shard report into the trace-layer summary
/// that rides along in the profile report.
fn shard_summary(stats: &mbts_market::ShardStats) -> mbts_trace::ShardSummary {
    mbts_trace::ShardSummary {
        shards: stats
            .shards
            .iter()
            .map(|s| mbts_trace::ShardProfile {
                shard: s.shard,
                sites: s.sites,
                busy_ns: s.busy_ns,
                ops: s.ops,
                utilization: s.utilization(stats.wall_ns),
            })
            .collect(),
        windows: stats.windows,
        barrier_stall_ns: stats.barrier_stall_ns,
        wall_ns: stats.wall_ns,
        threaded: stats.threaded,
    }
}

/// Prints the per-shard utilization table after a sharded market run.
fn shard_banner(
    summary: &mbts_trace::ShardSummary,
    out: &mut dyn std::io::Write,
) -> Result<(), String> {
    writeln!(
        out,
        "shards: {} ({}), {} windows, barrier stall {:.3}ms",
        summary.shards.len(),
        if summary.threaded {
            "threaded"
        } else {
            "inline"
        },
        summary.windows,
        summary.barrier_stall_ns as f64 * 1e-6
    )
    .map_err(|e| e.to_string())?;
    for p in &summary.shards {
        writeln!(
            out,
            "  shard {}: {} sites, {} ops, busy {:.3}ms, utilization {:.1}%",
            p.shard,
            p.sites,
            p.ops,
            p.busy_ns as f64 * 1e-6,
            p.utilization * 100.0
        )
        .map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Disarms the self-profiler and saves its report, if it was armed.
fn write_profile_out(
    armed: bool,
    path: Option<&std::path::Path>,
    shards: Option<mbts_trace::ShardSummary>,
    out: &mut dyn std::io::Write,
) -> Result<(), String> {
    if !armed {
        return Ok(());
    }
    let mut report = mbts_trace::ProfileReport::capture();
    report.shards = shards;
    mbts_sim::profiler::disable();
    let Some(path) = path else { return Ok(()) };
    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    std::fs::write(path, json).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    writeln!(out, "profile -> {}", path.display()).map_err(|e| e.to_string())
}

/// One `mbts analyze` input, after auto-detection.
enum AnalyzeInput {
    /// A saved self-profiler report.
    Profile(mbts_trace::ProfileReport),
    /// A trace-event stream (from JSONL, or replayed out of a journal).
    Events(Vec<mbts_trace::TraceEvent>),
}

/// One entry of `mbts analyze --format json` output: exactly one of
/// `trace` / `profile` is populated, matching `kind`.
#[derive(serde::Serialize)]
struct AnalyzeEntry {
    /// Input file the report was computed from.
    file: String,
    /// `"trace"` or `"profile"`.
    kind: &'static str,
    /// Trace analytics, for trace / journal inputs.
    trace: Option<mbts_trace::TraceReport>,
    /// Profiler histograms, for profiler-report inputs.
    profile: Option<mbts_trace::ProfileReport>,
}

/// Reads and validates a saved [`mbts_trace::ProfileReport`].
fn read_profile_report(path: &std::path::Path) -> Result<mbts_trace::ProfileReport, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let report: mbts_trace::ProfileReport = serde_json::from_str(&text)
        .map_err(|e| format!("{} is not a profiler report: {e}", path.display()))?;
    if report.kind != mbts_trace::PROFILE_MARKER {
        return Err(format!(
            "{} is not a profiler report (kind '{}')",
            path.display(),
            report.kind
        ));
    }
    Ok(report)
}

/// Serializes a flood report for `--out`, appending this run's
/// throughput and latency quantiles to the `history` array carried
/// forward from any previous report at the same path (the
/// `BENCH_dispatch.json` pattern: run-numbered entries, newest last).
fn flood_report_json(
    report: &mbts_serve::FloodReport,
    path: &std::path::Path,
) -> Result<String, String> {
    use serde::{Serialize, Value};
    let mut history = std::fs::read_to_string(path)
        .ok()
        .and_then(|old| serde_json::from_str::<Value>(&old).ok())
        .and_then(|old| match old.get("history") {
            Some(Value::Array(entries)) => Some(entries.clone()),
            _ => None,
        })
        .unwrap_or_default();
    let run = history.len() as i128 + 1;
    history.push(Value::Object(vec![
        ("run".into(), Value::Int(run)),
        ("rps".into(), Value::Float(report.rps)),
        ("p50_us".into(), Value::Float(report.p50_us)),
        ("p95_us".into(), Value::Float(report.p95_us)),
        ("p99_us".into(), Value::Float(report.p99_us)),
    ]));
    let mut doc = report.to_value();
    if let Value::Object(entries) = &mut doc {
        entries.push(("history".into(), Value::Array(history)));
    }
    serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())
}

/// Detects what kind of file an `analyze` input is and loads it:
/// durable journals are recognized by their magic header (the run is
/// replayed to completion and its captured tracer events extracted),
/// profiler reports by their JSON marker, and anything else is parsed
/// as a trace-event JSONL stream.
fn load_analyze_input(path: &std::path::Path) -> Result<AnalyzeInput, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    if bytes.starts_with(&mbts_durable::framing::MAGIC) {
        return match mbts_durable::DurableRun::<mbts_site::SiteRun>::recover(&bytes) {
            Ok((mut run, _)) => {
                run.run_to_completion();
                let (_, tracer) = run.finish();
                Ok(AnalyzeInput::Events(
                    tracer.into_events().unwrap_or_default(),
                ))
            }
            Err(site_err) => {
                match mbts_durable::DurableRun::<mbts_market::EconomyRun>::recover(&bytes) {
                    Ok((mut run, _)) => {
                        run.run_to_completion();
                        let (_, tracer) = run.finish();
                        Ok(AnalyzeInput::Events(
                            tracer.into_events().unwrap_or_default(),
                        ))
                    }
                    Err(eco_err) => match mbts_serve::ServiceRun::recover(&bytes) {
                        Ok((machine, _)) => Ok(AnalyzeInput::Events(
                            machine.into_trace_events().unwrap_or_default(),
                        )),
                        Err(serve_err) => Err(format!(
                            "cannot replay journal {}: as site run: {site_err}; \
                             as economy run: {eco_err}; as service journal: {serve_err}",
                            path.display()
                        )),
                    },
                }
            }
        };
    }
    let text =
        String::from_utf8(bytes).map_err(|e| format!("{} is not UTF-8: {e}", path.display()))?;
    if let Ok(report) = serde_json::from_str::<mbts_trace::ProfileReport>(&text) {
        if report.kind == mbts_trace::PROFILE_MARKER {
            return Ok(AnalyzeInput::Profile(report));
        }
    }
    mbts_trace::from_jsonl(&text)
        .map(AnalyzeInput::Events)
        .map_err(|e| format!("cannot parse {} as a trace: {e}", path.display()))
}

/// Executes a parsed command, writing human-readable output to `out`.
pub fn execute(cmd: Command, out: &mut dyn std::io::Write) -> Result<(), String> {
    match cmd {
        Command::Gen {
            out: path,
            mix,
            seed,
            swf,
            workflow,
        } => {
            if let Some(wf) = workflow {
                let set = generate_workflows(&wf, seed);
                set.save(&path)
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                return writeln!(
                    out,
                    "wrote {} workflows ({} tasks, {} roots, {} edges) to {}",
                    set.workflows.len(),
                    set.tasks.len(),
                    set.roots().len(),
                    set.edge_ids().len(),
                    path.display()
                )
                .map_err(|e| e.to_string());
            }
            let trace = match swf {
                Some(swf_path) => {
                    let opts = mbts_workload::SwfOptions::new(mix, seed);
                    mbts_workload::load_swf(&swf_path, &opts)?
                }
                None => generate_trace(&mix, seed),
            };
            let stats = trace.stats();
            trace
                .save(&path)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            writeln!(
                out,
                "wrote {} tasks to {} (offered load {:.2}, total value {:.0})",
                stats.num_tasks,
                path.display(),
                stats.offered_load,
                stats.total_value
            )
            .map_err(|e| e.to_string())
        }
        Command::Run {
            trace,
            workflow,
            site,
            gantt,
            classes,
            audit,
            journal,
            trace_out,
            provenance,
            profile,
        } => {
            let wfset = load_workflow_set(workflow.as_deref())?;
            let trace = match (&wfset, trace) {
                (Some(set), _) => set.trace(),
                (None, Some(path)) => Trace::load(&path)
                    .map_err(|e| format!("cannot read {}: {e}", path.display()))?,
                (None, None) => unreachable!("parse requires --trace or --workflow"),
            };
            // Workflow replays see DAG structure at admission time:
            // successor-aware slack plus workflow-stamped provenance.
            let site = match &wfset {
                Some(set) => site.with_workflow_facets(set.facets()),
                None => site,
            };
            let tracer = make_tracer(trace_out.is_some(), provenance);
            let profiling = start_profiling(profile.is_some());
            let (outcome, wf_report, tracer) = match (journal, &wfset) {
                (Some(path), _) => {
                    let j = mbts_durable::Journal::create(&path)
                        .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
                    let mut durable = match &wfset {
                        Some(set) => mbts_durable::durable_site_workflow_run(
                            site.clone(),
                            set,
                            tracer,
                            j,
                            JOURNAL_SNAPSHOT_EVERY,
                        ),
                        None => mbts_durable::durable_site_run(
                            site.clone(),
                            &trace,
                            tracer,
                            j,
                            JOURNAL_SNAPSHOT_EVERY,
                        ),
                    }
                    .map_err(|e| format!("cannot journal to {}: {e}", path.display()))?;
                    durable
                        .run_to_completion()
                        .map_err(|e| format!("journal write failed: {e}"))?;
                    writeln!(
                        out,
                        "journal: {} bytes -> {}",
                        durable.offset(),
                        path.display()
                    )
                    .map_err(|e| e.to_string())?;
                    let run = durable.into_parts().0;
                    let report = run.workflow_report();
                    let (outcome, tracer) = run.finish();
                    (outcome, report, tracer)
                }
                (None, Some(set)) => {
                    let (outcome, report, tracer) =
                        Site::new(site.clone()).run_workflows_traced(set, tracer);
                    (outcome, Some(report), tracer)
                }
                (None, None) => {
                    let (outcome, tracer) =
                        Site::new(site.clone()).run_trace_traced(&trace, tracer);
                    (outcome, None, tracer)
                }
            };
            write_trace_out(trace_out.as_deref(), tracer, out)?;
            write_profile_out(profiling, profile.as_deref(), None, out)?;
            let m = &outcome.metrics;
            writeln!(
                out,
                "policy {} | admission {:?} | {} processors{}",
                site.policy.name(),
                site.admission,
                site.processors,
                if site.preemption { " | preemption" } else { "" },
            )
            .map_err(|e| e.to_string())?;
            writeln!(
                out,
                "submitted {}  accepted {}  completed {}  rejected {}  dropped {}",
                m.submitted, m.accepted, m.completed, m.rejected, m.dropped
            )
            .map_err(|e| e.to_string())?;
            writeln!(
                out,
                "yield {:.1}  rate {:.3}  penalties {:.1}  mean delay {:.1}  \
                 preemptions {}  backfills {}",
                m.total_yield,
                m.yield_rate(),
                m.total_penalty,
                m.delay.mean(),
                m.preemptions,
                m.backfills
            )
            .map_err(|e| e.to_string())?;
            writeln!(
                out,
                "delay p50 {:.1}  p95 {:.1}  p99 {:.1}",
                outcome.delay_percentile(0.5),
                outcome.delay_percentile(0.95),
                outcome.delay_percentile(0.99)
            )
            .map_err(|e| e.to_string())?;
            if let Some(r) = &wf_report {
                writeln!(
                    out,
                    "workflows {}  settled {}  failed {}  stranded tasks {}  \
                     workflow yield {:.1}",
                    r.workflows, r.settled, r.failed, m.stranded, r.total_earned
                )
                .map_err(|e| e.to_string())?;
            }
            if classes {
                let (high, low) = class_breakdown(&trace, &outcome);
                for c in [high, low] {
                    writeln!(
                        out,
                        "  {:<12} n {:>5}  completed {:>5}  rejected {:>5}  \
                         capture {:>5.1}%  mean delay {:>8.1}",
                        c.label,
                        c.count,
                        c.completed,
                        c.rejected,
                        c.capture_ratio * 100.0,
                        c.mean_delay
                    )
                    .map_err(|e| e.to_string())?;
                }
            }
            if gantt {
                writeln!(out, "{}", render_gantt(&outcome.segments, 100))
                    .map_err(|e| e.to_string())?;
            }
            if let Some(path) = audit {
                std::fs::write(&path, mbts_site::audit::to_jsonl(&outcome.audit))
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                writeln!(
                    out,
                    "audit log: {} events -> {}",
                    outcome.audit.len(),
                    path.display()
                )
                .map_err(|e| e.to_string())?;
            }
            Ok(())
        }
        Command::Market {
            trace,
            workflow,
            mut economy,
            journal,
            trace_out,
            provenance,
            profile,
            shards,
        } => {
            let wfset = load_workflow_set(workflow.as_deref())?;
            let trace = match (&wfset, trace) {
                (Some(set), _) => set.trace(),
                (None, Some(path)) => Trace::load(&path)
                    .map_err(|e| format!("cannot read {}: {e}", path.display()))?,
                (None, None) => unreachable!("parse requires --trace or --workflow"),
            };
            if let Some(set) = wfset {
                // Every site prices bids successor-aware, and the
                // economy runs the release/settle overlay: only roots
                // arrive, successors release as predecessors complete.
                economy.sites = economy
                    .sites
                    .into_iter()
                    .map(|s| s.with_workflow_facets(set.facets()))
                    .collect();
                economy.workflows = Some(set);
            }
            let tracer = make_tracer(trace_out.is_some(), provenance);
            let profiling = start_profiling(profile.is_some());
            if shards > 1 {
                let mut run = mbts_market::ShardedEconomyRun::new(
                    economy,
                    &trace,
                    tracer,
                    shards,
                    mbts_market::ShardExecMode::Auto,
                );
                run.run_to_completion();
                let summary = shard_summary(&run.shard_stats());
                let (outcome, tracer) = run.finish();
                shard_banner(&summary, out)?;
                write_trace_out(trace_out.as_deref(), tracer, out)?;
                write_profile_out(profiling, profile.as_deref(), Some(summary), out)?;
                return market_summary(&outcome, out);
            }
            let (outcome, tracer) = match journal {
                Some(path) => {
                    let j = mbts_durable::Journal::create(&path)
                        .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
                    let mut durable = mbts_durable::durable_economy_run(
                        economy,
                        &trace,
                        tracer,
                        j,
                        JOURNAL_SNAPSHOT_EVERY,
                    )
                    .map_err(|e| format!("cannot journal to {}: {e}", path.display()))?;
                    durable
                        .run_to_completion()
                        .map_err(|e| format!("journal write failed: {e}"))?;
                    writeln!(
                        out,
                        "journal: {} bytes -> {}",
                        durable.offset(),
                        path.display()
                    )
                    .map_err(|e| e.to_string())?;
                    durable.into_parts().0.finish()
                }
                None => Economy::new(economy).run_trace_traced(&trace, tracer),
            };
            write_trace_out(trace_out.as_deref(), tracer, out)?;
            write_profile_out(profiling, profile.as_deref(), None, out)?;
            market_summary(&outcome, out)
        }
        Command::Analyze {
            inputs,
            json,
            buckets,
            out: out_path,
        } => {
            let opts = mbts_trace::AnalyzeOptions {
                timeline_buckets: buckets,
            };
            let mut text = String::new();
            let mut reports: Vec<AnalyzeEntry> = Vec::new();
            for path in &inputs {
                let label = path.display().to_string();
                match load_analyze_input(path)? {
                    AnalyzeInput::Profile(report) => {
                        if json {
                            reports.push(AnalyzeEntry {
                                file: label,
                                kind: "profile",
                                trace: None,
                                profile: Some(report),
                            });
                        } else {
                            text.push_str(&report.render_text());
                            text.push('\n');
                        }
                    }
                    AnalyzeInput::Events(events) => {
                        let report = mbts_trace::analyze::analyze(&label, &events, &opts);
                        if json {
                            reports.push(AnalyzeEntry {
                                file: label,
                                kind: "trace",
                                trace: Some(report),
                                profile: None,
                            });
                        } else {
                            text.push_str(&mbts_trace::analyze::render_text(&report));
                            text.push('\n');
                        }
                    }
                }
            }
            if json {
                text = serde_json::to_string_pretty(&reports).map_err(|e| e.to_string())?;
                text.push('\n');
            }
            match out_path {
                Some(path) => {
                    std::fs::write(&path, &text)
                        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                    writeln!(out, "analysis -> {}", path.display()).map_err(|e| e.to_string())
                }
                None => write!(out, "{text}").map_err(|e| e.to_string()),
            }
        }
        Command::Metrics {
            trace,
            label,
            processors,
            profile,
            prom,
        } => {
            let text = std::fs::read_to_string(&trace)
                .map_err(|e| format!("cannot read {}: {e}", trace.display()))?;
            let events = mbts_trace::from_jsonl(&text)
                .map_err(|e| format!("cannot parse {}: {e}", trace.display()))?;
            let mut registry = mbts_trace::MetricsRegistry::new(&label, processors);
            registry.record_all(&events);
            registry.finish_run();
            write!(out, "{}", registry.render()).map_err(|e| e.to_string())?;
            if let Some(path) = prom {
                let mut exposition = registry.prometheus();
                let profile_report = match profile {
                    Some(p) => Some(read_profile_report(&p)?),
                    None => {
                        let live = mbts_trace::ProfileReport::capture();
                        (!live.is_empty()).then_some(live)
                    }
                };
                if let Some(report) = profile_report {
                    exposition.push_str(&report.render_prometheus());
                }
                std::fs::write(&path, &exposition)
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                writeln!(out, "prometheus exposition -> {}", path.display())
                    .map_err(|e| e.to_string())?;
            }
            Ok(())
        }
        Command::Resume { journal } => {
            let bytes = mbts_durable::load(&journal)
                .map_err(|e| format!("cannot read {}: {e}", journal.display()))?;
            // A journal is either a site run or an economy run; the
            // snapshot schema disambiguates, so try site first and fall
            // back to economy.
            match mbts_durable::DurableRun::<mbts_site::SiteRun>::recover(&bytes) {
                Ok((mut run, report)) => {
                    resume_banner("site", run.events_handled(), &report, out)?;
                    run.run_to_completion();
                    let (outcome, _) = run.finish();
                    let m = &outcome.metrics;
                    writeln!(
                        out,
                        "submitted {}  accepted {}  completed {}  yield {:.1}",
                        m.submitted, m.accepted, m.completed, m.total_yield
                    )
                    .map_err(|e| e.to_string())
                }
                Err(site_err) => {
                    match mbts_durable::DurableRun::<mbts_market::EconomyRun>::recover(&bytes) {
                        Ok((mut run, report)) => {
                            resume_banner("economy", run.events_handled(), &report, out)?;
                            run.run_to_completion();
                            let (outcome, _) = run.finish();
                            market_summary(&outcome, out)
                        }
                        Err(eco_err) => match mbts_serve::ServiceRun::recover(&bytes) {
                            Ok((machine, recovery)) => {
                                writeln!(
                                    out,
                                    "recovered service run at command {} \
                                     (replayed {} journaled commands, dropped {} torn bytes)",
                                    machine.applied(),
                                    recovery.replayed,
                                    recovery.dropped_bytes
                                )
                                .map_err(|e| e.to_string())?;
                                let c = machine.counters();
                                writeln!(
                                    out,
                                    "accepted {}  rejected {}  shed {}  cancelled {}  \
                                     finished {}  drains {}",
                                    c.accepted,
                                    c.rejected,
                                    c.shed,
                                    c.cancelled,
                                    c.finished,
                                    c.drains
                                )
                                .map_err(|e| e.to_string())?;
                                writeln!(
                                    out,
                                    "now {}  yield {:.1}  violations {}",
                                    machine.now(),
                                    machine.metrics().total_yield,
                                    machine.violations()
                                )
                                .map_err(|e| e.to_string())
                            }
                            Err(serve_err) => Err(format!(
                                "cannot resume {}: as site run: {site_err}; \
                                 as economy run: {eco_err}; as service journal: {serve_err}",
                                journal.display()
                            )),
                        },
                    }
                }
            }
        }
        Command::Serve {
            addr,
            site,
            journal,
            queue_capacity,
            shed_threshold,
            time_scale,
            snapshot_every,
            fsync_every_n,
            provenance,
            status_capacity,
            throttle_us,
            profile,
            chaos,
            chaos_seed,
            no_telemetry,
        } => {
            let profiling = start_profiling(profile.is_some());
            if no_telemetry {
                mbts_trace::telemetry::disable();
            }
            mbts_serve::install_signal_handlers();
            let registry = match &chaos {
                Some(path) => {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
                    let specs: Vec<mbts_chaos::FailpointSpec> = serde_json::from_str(&text)
                        .map_err(|e| format!("bad failpoint schedule {}: {e}", path.display()))?;
                    Some(std::sync::Arc::new(mbts_chaos::ChaosRegistry::new(
                        chaos_seed, specs,
                    )))
                }
                None => None,
            };
            let cfg = mbts_serve::ServeConfig {
                addr,
                site,
                journal,
                queue_capacity,
                shed_threshold,
                time_scale,
                snapshot_every,
                fsync_every_n,
                provenance,
                status_capacity,
                throttle: std::time::Duration::from_micros(throttle_us),
                chaos: registry.clone(),
                ..mbts_serve::ServeConfig::default()
            };
            let server =
                mbts_serve::Server::start(cfg).map_err(|e| format!("cannot start daemon: {e}"))?;
            // This banner is a protocol: harnesses (and the chaos tests)
            // parse the bound address off this exact line before
            // flooding, so it must be flushed before the daemon blocks.
            writeln!(out, "mbts serve listening on {}", server.addr).map_err(|e| e.to_string())?;
            let recovery = server.recovery;
            if recovery.replayed > 0 || recovery.dropped_bytes > 0 {
                writeln!(
                    out,
                    "recovered service journal: replayed {} commands, dropped {} torn bytes",
                    recovery.replayed, recovery.dropped_bytes
                )
                .map_err(|e| e.to_string())?;
            }
            out.flush().map_err(|e| e.to_string())?;
            let report = server.join().map_err(|e| format!("daemon failed: {e}"))?;
            if profiling {
                let mut profile_report = mbts_trace::ProfileReport::capture();
                profile_report.serve = Some(report.summary.clone());
                mbts_sim::profiler::disable();
                if let Some(path) = profile {
                    let json =
                        serde_json::to_string_pretty(&profile_report).map_err(|e| e.to_string())?;
                    std::fs::write(&path, json)
                        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                    writeln!(out, "profile -> {}", path.display()).map_err(|e| e.to_string())?;
                }
            }
            let s = &report.summary;
            writeln!(
                out,
                "requests {}  accepted {}  rejected {}  shed {}  backpressured {}  \
                 cancelled {}  timeouts {}",
                s.requests,
                s.accepted,
                s.rejected,
                s.shed,
                s.backpressured,
                s.cancelled,
                s.timeouts
            )
            .map_err(|e| e.to_string())?;
            writeln!(
                out,
                "completed {}  applied {}  yield {:.1}  violations {}",
                s.completed, report.applied, report.total_yield, report.violations
            )
            .map_err(|e| e.to_string())?;
            writeln!(
                out,
                "drain {}  wall {:.2}s",
                if report.clean_drain {
                    "clean (drain marker + final snapshot journaled)"
                } else {
                    "unclean"
                },
                s.wall_ns as f64 * 1e-9
            )
            .map_err(|e| e.to_string())?;
            if let Some(reg) = &registry {
                let by_point = reg.fired_by_point();
                let fired: Vec<String> = by_point
                    .iter()
                    .map(|(point, fires)| format!("{point} x{fires}"))
                    .collect();
                writeln!(
                    out,
                    "chaos: {} fault(s) injected{}",
                    reg.fired_total(),
                    if fired.is_empty() {
                        String::new()
                    } else {
                        format!(" ({})", fired.join(", "))
                    }
                )
                .map_err(|e| e.to_string())?;
            }
            if report.violations > 0 {
                return Err(format!(
                    "{} invariant violation(s) recorded",
                    report.violations
                ));
            }
            Ok(())
        }
        Command::Flood {
            addr,
            requests,
            connections,
            pipeline,
            seed,
            retries,
            cancel_every,
            malformed_every,
            gate_rps,
            out: out_path,
        } => {
            let cfg = mbts_serve::FloodConfig {
                addr,
                requests,
                connections,
                pipeline,
                seed,
                retries,
                cancel_every,
                malformed_every,
                gate_rps,
                ..mbts_serve::FloodConfig::default()
            };
            let report = mbts_serve::flood(&cfg).map_err(|e| format!("flood failed: {e}"))?;
            writeln!(
                out,
                "flood: {} completed in {:.2}s -> {:.0} req/s \
                 ({} connections x pipeline {}, {}-way parallelism)",
                report.completed,
                report.wall_s,
                report.rps,
                report.connections,
                report.pipeline,
                report.parallelism
            )
            .map_err(|e| e.to_string())?;
            writeln!(
                out,
                "accepted {}  rejected {}  shed {}  backpressured {}  unavailable {}  \
                 cancelled {}",
                report.accepted,
                report.rejected,
                report.shed,
                report.backpressured,
                report.unavailable,
                report.cancelled
            )
            .map_err(|e| e.to_string())?;
            writeln!(
                out,
                "retries {}  exhausted {}  errors {}  malformed {}  p50 {:.0}us  p95 {:.0}us  \
                 p99 {:.0}us  max {:.0}us",
                report.retries,
                report.exhausted,
                report.errors,
                report.malformed,
                report.p50_us,
                report.p95_us,
                report.p99_us,
                report.max_us
            )
            .map_err(|e| e.to_string())?;
            if let Some(path) = out_path {
                let json = flood_report_json(&report, &path)?;
                std::fs::write(&path, json)
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                writeln!(out, "flood report -> {}", path.display()).map_err(|e| e.to_string())?;
            }
            if let Some(floor) = report.gate_rps {
                let met = report.gate_met == Some(true);
                if report.gate_enforced {
                    if !met {
                        return Err(format!(
                            "throughput gate missed: {:.0} req/s < {floor:.0} req/s floor",
                            report.rps
                        ));
                    }
                    writeln!(out, "gate met: {:.0} req/s >= {floor:.0} req/s", report.rps)
                        .map_err(|e| e.to_string())?;
                } else {
                    // Single-CPU runners record honest numbers instead of
                    // failing a gate they cannot physically meet.
                    writeln!(
                        out,
                        "gate not enforced ({}-way parallelism < {}): floor {floor:.0} req/s, \
                         met: {met}",
                        report.parallelism,
                        mbts_serve::GATE_MIN_PARALLELISM
                    )
                    .map_err(|e| e.to_string())?;
                }
            }
            Ok(())
        }
        Command::Top {
            addr,
            interval,
            count,
        } => {
            let cfg = mbts_serve::TopConfig {
                addr,
                interval,
                count,
            };
            let frames =
                mbts_serve::run_top(&cfg, &mut *out).map_err(|e| format!("top failed: {e}"))?;
            writeln!(out, "top: {frames} frame(s) rendered").map_err(|e| e.to_string())?;
            Ok(())
        }
        Command::Compare { a, b, mix, seeds } => {
            let params = mbts_experiments::ExpParams {
                tasks: mix.num_tasks,
                seeds,
                base_seed: 1000,
                processors: mix.processors,
            };
            let result = mbts_experiments::compare_sites(&mix, &a, &b, &params);
            write!(out, "{}", result.render()).map_err(|e| e.to_string())
        }
        Command::Chaos {
            inputs,
            seed,
            json,
            out: out_path,
            trace_out,
        } => {
            let mut scenarios = Vec::new();
            for input in &inputs {
                if input.is_dir() {
                    let loaded = mbts_chaos::Scenario::load_dir(input)
                        .map_err(|e| format!("cannot read {}: {e}", input.display()))?;
                    if loaded.is_empty() {
                        return Err(format!("no *.json scenarios in {}", input.display()));
                    }
                    scenarios.extend(loaded.into_iter().map(|(_, s)| s));
                } else {
                    scenarios.push(
                        mbts_chaos::Scenario::load(input)
                            .map_err(|e| format!("cannot read {}: {e}", input.display()))?,
                    );
                }
            }
            let (report, events) = crate::chaos::run_corpus(&scenarios, seed)?;
            if json {
                let rendered =
                    serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
                match &out_path {
                    Some(path) => std::fs::write(path, rendered)
                        .map_err(|e| format!("cannot write {}: {e}", path.display()))?,
                    None => writeln!(out, "{rendered}").map_err(|e| e.to_string())?,
                }
            } else {
                let mut rendered = String::new();
                for s in &report.scenarios {
                    rendered.push_str(&format!(
                        "{:<24} [{:>6}] seed {:<12} injected {:>4}  crashes {:>3}  \
                         replayed {:>5}  ok: {}\n",
                        s.name,
                        s.class,
                        s.seed,
                        s.injected,
                        s.crashes,
                        s.replayed,
                        s.checks.join(", ")
                    ));
                }
                rendered.push_str(&format!(
                    "chaos: {} scenario(s), {} fault(s) injected, {} crash-recovery \
                     cycle(s), deterministic across paired runs\n",
                    report.scenarios.len(),
                    report.total_injected,
                    report.total_crashes
                ));
                match &out_path {
                    Some(path) => std::fs::write(path, &rendered)
                        .map_err(|e| format!("cannot write {}: {e}", path.display()))?,
                    None => write!(out, "{rendered}").map_err(|e| e.to_string())?,
                }
            }
            if let Some(path) = &trace_out {
                std::fs::write(path, mbts_trace::to_jsonl(&events))
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                writeln!(out, "chaos trace: {} events -> {}", events.len(), path.display())
                    .map_err(|e| e.to_string())?;
            }
            Ok(())
        }
        Command::Validate { trace } => {
            let trace =
                Trace::load(&trace).map_err(|e| format!("cannot read {}: {e}", trace.display()))?;
            let report = mbts_workload::validate_trace(&trace);
            write!(out, "{}", report.render()).map_err(|e| e.to_string())?;
            if report.is_valid() {
                Ok(())
            } else {
                Err(format!("{} error(s) found", report.errors.len()))
            }
        }
        Command::Policies => writeln!(
            out,
            "fcfs                       first-come-first-served (baseline)\n\
                 srpt                       shortest remaining processing time (baseline)\n\
                 swpt                       decay/RPT — classic TWCT heuristic\n\
                 first-price                Millennium greedy unit gain (yield/RPT)\n\
                 edf                        earliest deadline first over expiration times\n\
                 pv:<rate>                  present-value discounted unit gain (paper §5.1)\n\
                 first-reward:<a>:<rate>    (a·PV − (1−a)·cost)/RPT — the paper's §5.3 heuristic"
        )
        .map_err(|e| e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_policies() {
        assert_eq!(parse_policy("fcfs").unwrap(), Policy::Fcfs);
        assert_eq!(parse_policy("srpt").unwrap(), Policy::Srpt);
        assert_eq!(parse_policy("swpt").unwrap(), Policy::Swpt);
        assert_eq!(parse_policy("first-price").unwrap(), Policy::FirstPrice);
        assert_eq!(parse_policy("pv:0.02").unwrap(), Policy::pv(0.02));
        assert_eq!(
            parse_policy("first-reward:0.3:0.01").unwrap(),
            Policy::first_reward(0.3, 0.01)
        );
        assert!(parse_policy("nope").is_err());
        assert!(parse_policy("pv:abc").is_err());
        assert!(parse_policy("first-reward:1.5:0.01").is_err());
    }

    #[test]
    fn parse_admissions() {
        assert_eq!(parse_admission("all").unwrap(), AdmissionPolicy::AcceptAll);
        assert_eq!(
            parse_admission("positive").unwrap(),
            AdmissionPolicy::PositiveExpectedYield
        );
        assert_eq!(
            parse_admission("slack:180").unwrap(),
            AdmissionPolicy::SlackThreshold { threshold: 180.0 }
        );
        assert!(parse_admission("slack").is_err());
        assert!(parse_admission("slack:x").is_err());
    }

    #[test]
    fn parse_bounds_and_widths() {
        assert_eq!(parse_bound("zero").unwrap(), BoundPolicy::ZeroFloor);
        assert_eq!(parse_bound("unbounded").unwrap(), BoundPolicy::Unbounded);
        assert_eq!(
            parse_bound("prop:0.25").unwrap(),
            BoundPolicy::ProportionalPenalty { fraction: 0.25 }
        );
        assert_eq!(parse_widths("one").unwrap(), WidthPolicy::One);
        assert_eq!(
            parse_widths("uniform:1:4").unwrap(),
            WidthPolicy::Uniform { lo: 1, hi: 4 }
        );
        assert_eq!(
            parse_widths("pow2:3").unwrap(),
            WidthPolicy::PowersOfTwo { max_exp: 3 }
        );
        assert!(parse_widths("uniform:4:1").is_err());
    }

    #[test]
    fn parse_gen_command() {
        let cmd = parse(&args(
            "gen --out /tmp/t.json --tasks 100 --processors 8 --load 1.5 \
             --seed 7 --bound zero --widths pow2:2",
        ))
        .unwrap();
        match cmd {
            Command::Gen {
                out,
                mix,
                seed,
                swf,
                workflow,
            } => {
                assert!(swf.is_none());
                assert!(workflow.is_none());
                assert_eq!(out, PathBuf::from("/tmp/t.json"));
                assert_eq!(mix.num_tasks, 100);
                assert_eq!(mix.processors, 8);
                assert_eq!(mix.load_factor, 1.5);
                assert_eq!(mix.bound, BoundPolicy::ZeroFloor);
                assert_eq!(mix.width, WidthPolicy::PowersOfTwo { max_exp: 2 });
                assert_eq!(seed, 7);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parse_run_command() {
        let cmd = parse(&args(
            "run --trace t.json --policy first-reward:0.2:0.01 \
             --admission slack:100 --processors 4 --preemption --classes",
        ))
        .unwrap();
        match cmd {
            Command::Run {
                site,
                gantt,
                classes,
                ..
            } => {
                assert_eq!(site.policy, Policy::first_reward(0.2, 0.01));
                assert_eq!(
                    site.admission,
                    AdmissionPolicy::SlackThreshold { threshold: 100.0 }
                );
                assert_eq!(site.processors, 4);
                assert!(site.preemption);
                assert!(!gantt);
                assert!(classes);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parse_market_command() {
        let cmd = parse(&args(
            "market --trace t.json --sites 2 --procs-per-site 6 \
             --selection random --second-price",
        ))
        .unwrap();
        match cmd {
            Command::Market {
                economy, shards, ..
            } => {
                assert_eq!(economy.sites.len(), 2);
                assert_eq!(economy.sites[0].processors, 6);
                assert_eq!(economy.selection, ClientSelection::Random);
                assert_eq!(economy.pricing, PricingStrategy::second_price());
                assert_eq!(shards, 1, "serial engine by default");
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parse_market_shards_flag() {
        match parse(&args("market --trace t.json --sites 8 --shards 4")).unwrap() {
            Command::Market { shards, .. } => assert_eq!(shards, 4),
            other => panic!("wrong command: {other:?}"),
        }
        assert!(parse(&args("market --trace t.json --shards 0")).is_err());
        // The durable journal wraps the serial engine only.
        assert!(parse(&args("market --trace t.json --shards 2 --journal j.bin")).is_err());
        assert!(parse(&args("market --trace t.json --shards 1 --journal j.bin")).is_ok());
        // The incompatibility is documented, not just enforced.
        assert!(usage().contains("--shards N is incompatible with --journal FILE"));
    }

    #[test]
    fn parse_shapes() {
        assert_eq!(
            parse_shape("fork-join:3").unwrap(),
            WorkflowShape::ForkJoin { width: 3 }
        );
        assert_eq!(
            parse_shape("pipeline:4").unwrap(),
            WorkflowShape::Pipeline { depth: 4 }
        );
        assert_eq!(
            parse_shape("layered:3:2:0.5").unwrap(),
            WorkflowShape::RandomLayered {
                layers: 3,
                width: 2,
                edge_prob: 0.5
            }
        );
        assert!(parse_shape("fork-join").is_err());
        assert!(parse_shape("fork-join:0").is_err());
        assert!(parse_shape("layered:3:2").is_err());
        assert!(parse_shape("layered:3:2:1.5").is_err());
        assert!(parse_shape("diamond:2").is_err());
    }

    #[test]
    fn parse_gen_workflow_flags() {
        match parse(&args(
            "gen --out /tmp/w.json --workflow pipeline:5 --workflows 12 \
             --processors 8 --load 2.0 --seed 9",
        ))
        .unwrap()
        {
            Command::Gen { workflow, seed, .. } => {
                let wf = workflow.expect("workflow config");
                assert_eq!(wf.shape, WorkflowShape::Pipeline { depth: 5 });
                assert_eq!(wf.workflows, 12);
                assert_eq!(wf.processors, 8);
                assert_eq!(wf.load_factor, 2.0);
                assert_eq!(seed, 9);
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(parse(&args(
            "gen --out o.json --workflow pipeline:5 --workflows 0"
        ))
        .is_err());
        assert!(parse(&args(
            "gen --out o.json --workflow pipeline:5 --swf log.swf"
        ))
        .is_err());
    }

    #[test]
    fn parse_run_and_market_workflow_flags() {
        match parse(&args("run --workflow w.json --policy first-price")).unwrap() {
            Command::Run {
                trace, workflow, ..
            } => {
                assert!(trace.is_none());
                assert_eq!(workflow, Some(PathBuf::from("w.json")));
            }
            other => panic!("wrong command: {other:?}"),
        }
        match parse(&args("market --workflow w.json --sites 2 --shards 4")).unwrap() {
            Command::Market {
                trace,
                workflow,
                shards,
                ..
            } => {
                assert!(trace.is_none());
                assert_eq!(workflow, Some(PathBuf::from("w.json")));
                assert_eq!(shards, 4);
            }
            other => panic!("wrong command: {other:?}"),
        }
        // Exactly one input source.
        assert!(parse(&args("run")).is_err());
        assert!(parse(&args("run --trace t.json --workflow w.json")).is_err());
        assert!(parse(&args("market")).is_err());
        assert!(parse(&args("market --trace t.json --workflow w.json")).is_err());
        // Workflow market runs journal and shard like plain ones.
        assert!(parse(&args("market --workflow w.json --journal j.bin")).is_ok());
        assert!(parse(&args("market --workflow w.json --shards 2 --journal j.bin")).is_err());
    }

    #[test]
    fn parse_serve_command() {
        match parse(&args("serve")).unwrap() {
            Command::Serve {
                addr,
                journal,
                queue_capacity,
                shed_threshold,
                time_scale,
                provenance,
                ..
            } => {
                assert_eq!(addr, "127.0.0.1:7741");
                assert_eq!(journal, None);
                assert_eq!(queue_capacity, 1024);
                assert_eq!(shed_threshold, 0);
                assert_eq!(time_scale, 1.0);
                assert!(!provenance);
            }
            other => panic!("wrong command: {other:?}"),
        }
        match parse(&args(
            "serve --addr 0.0.0.0:9000 --journal svc.mbtsj --processors 8 --policy pv:0.01 \
             --queue-cap 64 --shed-threshold 8 --time-scale 60 --snapshot-every 100 \
             --fsync-every 1 --provenance --status-cap 512 --throttle-us 250 --profile p.json \
             --chaos sched.json --chaos-seed 7 --no-telemetry",
        ))
        .unwrap()
        {
            Command::Serve {
                addr,
                site,
                journal,
                queue_capacity,
                shed_threshold,
                time_scale,
                snapshot_every,
                fsync_every_n,
                provenance,
                status_capacity,
                throttle_us,
                profile,
                chaos,
                chaos_seed,
                no_telemetry,
            } => {
                assert_eq!(addr, "0.0.0.0:9000");
                assert_eq!(site.processors, 8);
                assert_eq!(journal, Some(PathBuf::from("svc.mbtsj")));
                assert_eq!(queue_capacity, 64);
                assert_eq!(shed_threshold, 8);
                assert_eq!(time_scale, 60.0);
                assert_eq!(snapshot_every, 100);
                assert_eq!(fsync_every_n, 1);
                assert!(provenance);
                assert_eq!(status_capacity, 512);
                assert_eq!(throttle_us, 250);
                assert_eq!(profile, Some(PathBuf::from("p.json")));
                assert_eq!(chaos, Some(PathBuf::from("sched.json")));
                assert_eq!(chaos_seed, 7);
                assert!(no_telemetry);
            }
            other => panic!("wrong command: {other:?}"),
        }
        match parse(&args("serve")).unwrap() {
            Command::Serve { no_telemetry, .. } => assert!(!no_telemetry, "telemetry defaults on"),
            other => panic!("wrong command: {other:?}"),
        }
        assert!(parse(&args("serve --queue-cap 0")).is_err());
        assert!(parse(&args("serve --time-scale 0")).is_err());
        assert!(parse(&args("serve --time-scale -2")).is_err());
    }

    #[test]
    fn parse_flood_command() {
        assert!(parse(&args("flood")).is_err());
        match parse(&args(
            "flood --addr 127.0.0.1:7741 --requests 500 --connections 2 --pipeline 8 \
             --seed 7 --retries 1 --cancel-every 10 --malformed-every 25 --gate-rps 100000 \
             --out BENCH_serve.json",
        ))
        .unwrap()
        {
            Command::Flood {
                addr,
                requests,
                connections,
                pipeline,
                seed,
                retries,
                cancel_every,
                malformed_every,
                gate_rps,
                out,
            } => {
                assert_eq!(addr, "127.0.0.1:7741");
                assert_eq!(requests, 500);
                assert_eq!(connections, 2);
                assert_eq!(pipeline, 8);
                assert_eq!(seed, 7);
                assert_eq!(retries, 1);
                assert_eq!(cancel_every, 10);
                assert_eq!(malformed_every, 25);
                assert_eq!(gate_rps, Some(100_000.0));
                assert_eq!(out, Some(PathBuf::from("BENCH_serve.json")));
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(parse(&args("flood --addr a:1 --connections 0")).is_err());
        assert!(parse(&args("flood --addr a:1 --pipeline 0")).is_err());
        assert!(parse(&args("flood --addr a:1 --gate-rps fast")).is_err());
    }

    #[test]
    fn flood_report_out_accumulates_history() {
        let dir = std::env::temp_dir().join("mbts-cli-flood-history");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_serve.json");
        let _ = std::fs::remove_file(&path);
        let mut report = mbts_serve::FloodReport {
            rps: 1000.0,
            p50_us: 10.0,
            p95_us: 20.0,
            p99_us: 30.0,
            ..Default::default()
        };
        // First write: no prior file, history starts at run 1.
        std::fs::write(&path, flood_report_json(&report, &path).unwrap()).unwrap();
        // Second write: run 2 appends, run 1's numbers survive.
        report.rps = 2000.0;
        report.p95_us = 25.0;
        let text = flood_report_json(&report, &path).unwrap();
        use serde::Value;
        let doc: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(doc.get("p95_us"), Some(&Value::Float(25.0)));
        match doc.get("history") {
            Some(Value::Array(entries)) => {
                assert_eq!(entries.len(), 2);
                assert_eq!(entries[0].get("run"), Some(&Value::Int(1)));
                assert_eq!(entries[0].get("rps"), Some(&Value::Float(1000.0)));
                assert_eq!(entries[1].get("run"), Some(&Value::Int(2)));
                assert_eq!(entries[1].get("p95_us"), Some(&Value::Float(25.0)));
            }
            other => panic!("missing history: {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn parse_top_command() {
        match parse(&args("top")).unwrap() {
            Command::Top {
                addr,
                interval,
                count,
            } => {
                assert_eq!(addr, "127.0.0.1:7741");
                assert_eq!(interval, 1.0);
                assert_eq!(count, None);
            }
            other => panic!("wrong command: {other:?}"),
        }
        match parse(&args("top --addr 10.0.0.2:9000 --interval 0.25 --count 5")).unwrap() {
            Command::Top {
                addr,
                interval,
                count,
            } => {
                assert_eq!(addr, "10.0.0.2:9000");
                assert_eq!(interval, 0.25);
                assert_eq!(count, Some(5));
            }
            other => panic!("wrong command: {other:?}"),
        }
        match parse(&args("top --once")).unwrap() {
            Command::Top { count, .. } => assert_eq!(count, Some(1)),
            other => panic!("wrong command: {other:?}"),
        }
        assert!(parse(&args("top --interval 0")).is_err());
        assert!(parse(&args("top --interval -1")).is_err());
        assert!(parse(&args("top --count soon")).is_err());
    }

    #[test]
    fn parse_chaos_command() {
        assert!(parse(&args("chaos")).is_err());
        assert!(parse(&args("chaos s.json --format yaml")).is_err());
        assert!(parse(&args("chaos s.json --seed many")).is_err());
        assert!(parse(&args("chaos s.json --frobnicate")).is_err());
        match parse(&args(
            "chaos tests/chaos a.json --seed 99 --format json --out report.json \
             --trace-out chaos.jsonl",
        ))
        .unwrap()
        {
            Command::Chaos {
                inputs,
                seed,
                json,
                out,
                trace_out,
            } => {
                assert_eq!(
                    inputs,
                    vec![PathBuf::from("tests/chaos"), PathBuf::from("a.json")]
                );
                assert_eq!(seed, Some(99));
                assert!(json);
                assert_eq!(out, Some(PathBuf::from("report.json")));
                assert_eq!(trace_out, Some(PathBuf::from("chaos.jsonl")));
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse(&args("gen")).is_err());
        assert!(parse(&args("run")).is_err());
        assert!(parse(&args("frobnicate")).is_err());
        assert!(parse(&[]).is_err());
        // --provenance is meaningless without a captured stream.
        assert!(parse(&args("run --trace t.json --provenance")).is_err());
        assert!(parse(&args("market --trace t.json --provenance")).is_err());
        assert!(parse(&args("analyze")).is_err());
        assert!(parse(&args("analyze t.jsonl --format yaml")).is_err());
        assert!(parse(&args("analyze t.jsonl --buckets 0")).is_err());
        assert!(parse(&args("analyze t.jsonl --frobnicate")).is_err());
        assert!(parse(&args("metrics")).is_err());
    }

    #[test]
    fn parse_analyze_and_metrics_commands() {
        match parse(&args(
            "analyze a.jsonl b.bin --format json --buckets 8 --out r.json",
        ))
        .unwrap()
        {
            Command::Analyze {
                inputs,
                json,
                buckets,
                out,
            } => {
                assert_eq!(
                    inputs,
                    vec![PathBuf::from("a.jsonl"), PathBuf::from("b.bin")]
                );
                assert!(json);
                assert_eq!(buckets, 8);
                assert_eq!(out, Some(PathBuf::from("r.json")));
            }
            other => panic!("{other:?}"),
        }
        match parse(&args(
            "metrics --trace t.jsonl --label pv --processors 8 --prom m.prom",
        ))
        .unwrap()
        {
            Command::Metrics {
                trace,
                label,
                processors,
                profile,
                prom,
            } => {
                assert_eq!(trace, PathBuf::from("t.jsonl"));
                assert_eq!(label, "pv");
                assert_eq!(processors, 8);
                assert_eq!(profile, None);
                assert_eq!(prom, Some(PathBuf::from("m.prom")));
            }
            other => panic!("{other:?}"),
        }
        match parse(&args(
            "run --trace t.json --trace-out ev.jsonl --provenance --profile p.json",
        ))
        .unwrap()
        {
            Command::Run {
                trace_out,
                provenance,
                profile,
                ..
            } => {
                assert_eq!(trace_out, Some(PathBuf::from("ev.jsonl")));
                assert!(provenance);
                assert_eq!(profile, Some(PathBuf::from("p.json")));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn analyze_and_metrics_end_to_end() {
        let dir = std::env::temp_dir().join("mbts-cli-analyze-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.json");
        let events = dir.join("events.jsonl");
        let profile = dir.join("profile.json");
        let prom = dir.join("metrics.prom");
        let (trace_s, events_s, profile_s, prom_s) = (
            trace.to_str().unwrap(),
            events.to_str().unwrap(),
            profile.to_str().unwrap(),
            prom.to_str().unwrap(),
        );

        let mut buf = Vec::new();
        execute(
            parse(&args(&format!(
                "gen --out {trace_s} --tasks 80 --processors 4 --load 2.0 --seed 5"
            )))
            .unwrap(),
            &mut buf,
        )
        .unwrap();

        let mut buf = Vec::new();
        execute(
            parse(&args(&format!(
                "run --trace {trace_s} --processors 4 --policy first-reward:0.3:0.01 \
                 --admission slack:180 --preemption --trace-out {events_s} --provenance \
                 --profile {profile_s}"
            )))
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&buf).to_string();
        assert!(text.contains("trace:"), "{text}");
        assert!(text.contains("profile ->"), "{text}");

        // Text analysis covers every report section.
        let mut buf = Vec::new();
        execute(
            parse(&args(&format!("analyze {events_s} {profile_s}"))).unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&buf).to_string();
        assert!(text.contains("yield attribution"), "{text}");
        assert!(text.contains("admission regret"), "{text}");
        assert!(text.contains("decision provenance"), "{text}");
        assert!(text.contains("hot-path profile"), "{text}");

        // JSON analysis parses back.
        let mut buf = Vec::new();
        execute(
            parse(&args(&format!("analyze {events_s} --format json"))).unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&buf).to_string();
        assert!(text.contains("\"kind\": \"trace\""), "{text}");
        assert!(text.contains("\"rejected_positive\""), "{text}");

        // Metrics + Prometheus export, folding in the saved profile.
        let mut buf = Vec::new();
        execute(
            parse(&args(&format!(
                "metrics --trace {events_s} --label first_reward --processors 4 \
                 --profile {profile_s} --prom {prom_s}"
            )))
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&buf).to_string();
        assert!(text.contains("policy first_reward"), "{text}");
        let exposition = std::fs::read_to_string(&prom).unwrap();
        assert!(exposition.contains("mbts_tasks_total"), "{exposition}");
        assert!(
            exposition.contains("mbts_profiler_latency_seconds_bucket"),
            "{exposition}"
        );

        for p in [&trace, &events, &profile, &prom] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn end_to_end_gen_run_market() {
        let dir = std::env::temp_dir().join("mbts-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cli-trace.json");
        let path_s = path.to_str().unwrap();

        let mut buf = Vec::new();
        execute(
            parse(&args(&format!(
                "gen --out {path_s} --tasks 120 --processors 4 --load 1.2 --seed 3"
            )))
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        assert!(String::from_utf8_lossy(&buf).contains("wrote 120 tasks"));

        let mut buf = Vec::new();
        execute(
            parse(&args(&format!(
                "run --trace {path_s} --policy first-price --processors 4 --classes"
            )))
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&buf).to_string();
        assert!(text.contains("completed 120"), "{text}");
        assert!(text.contains("high-value"), "{text}");

        let mut buf = Vec::new();
        execute(
            parse(&args(&format!(
                "market --trace {path_s} --sites 2 --procs-per-site 2 \
                 --admission slack:0"
            )))
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&buf).to_string();
        assert!(text.contains("offered 120"), "{text}");
        assert!(text.contains("site 1:"), "{text}");

        let mut buf = Vec::new();
        execute(Command::Policies, &mut buf).unwrap();
        assert!(String::from_utf8_lossy(&buf).contains("first-reward"));

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sharded_market_cli_matches_serial_and_reports_shards() {
        let dir = std::env::temp_dir().join("mbts-cli-shards");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let path_s = path.to_str().unwrap();
        let profile = dir.join("profile.json");

        let mut buf = Vec::new();
        execute(
            parse(&args(&format!(
                "gen --out {path_s} --tasks 150 --processors 8 --load 1.4 --seed 9"
            )))
            .unwrap(),
            &mut buf,
        )
        .unwrap();

        let market =
            format!("market --trace {path_s} --sites 4 --procs-per-site 2 --admission slack:0");
        let mut serial = Vec::new();
        execute(parse(&args(&market)).unwrap(), &mut serial).unwrap();
        let serial = String::from_utf8_lossy(&serial).to_string();

        let mut sharded = Vec::new();
        execute(
            parse(&args(&format!(
                "{market} --shards 4 --profile {}",
                profile.display()
            )))
            .unwrap(),
            &mut sharded,
        )
        .unwrap();
        let sharded = String::from_utf8_lossy(&sharded).to_string();

        // The sharded run prepends its utilization banner; the economy
        // summary that follows must be identical to the serial run's.
        assert!(sharded.contains("shards: 4"), "{sharded}");
        assert!(sharded.contains("shard 0:"), "{sharded}");
        assert!(sharded.contains("utilization"), "{sharded}");
        let summary = sharded
            .lines()
            .skip_while(|l| !l.contains("sites | offered"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(serial.trim_end().ends_with(summary.trim_end()), "{sharded}");

        // The profile report carries the shard summary for `analyze`
        // and `metrics --prom`.
        let report = read_profile_report(&profile).unwrap();
        let shards = report.shards.clone().expect("shard summary present");
        assert_eq!(shards.shards.len(), 4);
        assert!(report
            .render_prometheus()
            .contains("mbts_shard_utilization"));

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&profile).ok();
    }

    #[test]
    fn swf_import_end_to_end() {
        let dir = std::env::temp_dir().join("mbts-cli-swf");
        std::fs::create_dir_all(&dir).unwrap();
        let swf = dir.join("log.swf");
        std::fs::write(
            &swf,
            "; tiny log\n\
             1 0 0 100 2 -1 -1 2 120 -1 1 1 1 1 1 -1 -1 -1\n\
             2 50 0 80 1 -1 -1 1 90 -1 1 1 1 1 1 -1 -1 -1\n",
        )
        .unwrap();
        let out_path = dir.join("imported.json");
        let mut buf = Vec::new();
        execute(
            parse(&args(&format!(
                "gen --swf {} --out {} --processors 4",
                swf.display(),
                out_path.display()
            )))
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        assert!(String::from_utf8_lossy(&buf).contains("wrote 2 tasks"));
        let mut buf = Vec::new();
        execute(
            parse(&args(&format!(
                "run --trace {} --processors 4",
                out_path.display()
            )))
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        assert!(String::from_utf8_lossy(&buf).contains("completed 2"));
        std::fs::remove_file(&swf).ok();
        std::fs::remove_file(&out_path).ok();
    }

    #[test]
    fn validate_subcommand() {
        let dir = std::env::temp_dir().join("mbts-cli-validate");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v.json");
        let mut buf = Vec::new();
        execute(
            parse(&args(&format!(
                "gen --out {} --tasks 50 --processors 4",
                path.display()
            )))
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        let mut buf = Vec::new();
        execute(
            parse(&args(&format!("validate --trace {}", path.display()))).unwrap(),
            &mut buf,
        )
        .unwrap();
        // Valid (execute returned Ok) and the stats line is present;
        // small traces may carry load warnings, so don't require the
        // bare "trace OK" banner.
        assert!(String::from_utf8_lossy(&buf).contains("50 tasks"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journal_and_resume_end_to_end() {
        let dir = std::env::temp_dir().join("mbts-cli-journal");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("j-trace.json");
        let journal = dir.join("run.mbtsj");
        let mut buf = Vec::new();
        execute(
            parse(&args(&format!(
                "gen --out {} --tasks 80 --processors 4 --seed 5",
                trace.display()
            )))
            .unwrap(),
            &mut buf,
        )
        .unwrap();

        // A journaled run completes and reports the journal.
        let mut buf = Vec::new();
        execute(
            parse(&args(&format!(
                "run --trace {} --policy first-price --processors 4 --journal {}",
                trace.display(),
                journal.display()
            )))
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&buf).to_string();
        assert!(text.contains("journal:"), "{text}");
        assert!(text.contains("completed 80"), "{text}");

        // Tear the tail off the journal (a crash mid-write) and resume:
        // the run still finishes with every task completed.
        let bytes = std::fs::read(&journal).unwrap();
        std::fs::write(&journal, &bytes[..bytes.len() - bytes.len() / 3]).unwrap();
        let mut buf = Vec::new();
        execute(
            parse(&args(&format!("resume --journal {}", journal.display()))).unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&buf).to_string();
        assert!(text.contains("recovered site run"), "{text}");
        assert!(text.contains("completed 80"), "{text}");

        // Same flow for an economy run.
        let mut buf = Vec::new();
        execute(
            parse(&args(&format!(
                "market --trace {} --sites 2 --procs-per-site 2 --journal {}",
                trace.display(),
                journal.display()
            )))
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        assert!(String::from_utf8_lossy(&buf).contains("journal:"));
        let bytes = std::fs::read(&journal).unwrap();
        std::fs::write(&journal, &bytes[..bytes.len() - bytes.len() / 4]).unwrap();
        let mut buf = Vec::new();
        execute(
            parse(&args(&format!("resume --journal {}", journal.display()))).unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&buf).to_string();
        assert!(text.contains("recovered economy run"), "{text}");
        assert!(text.contains("offered 80"), "{text}");

        std::fs::remove_file(&trace).ok();
        std::fs::remove_file(&journal).ok();
    }

    #[test]
    fn run_missing_trace_is_a_clean_error() {
        let cmd = parse(&args("run --trace /nonexistent/x.json")).unwrap();
        let mut buf = Vec::new();
        let err = execute(cmd, &mut buf).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }
}
