//! Visualizing schedules: gang tasks, EASY backfilling, and preemption on
//! an ASCII Gantt chart.
//!
//! Runs a small mixed-width workload twice — FCFS without preemption and
//! FirstPrice with preemption — with segment recording on, and renders
//! both schedules so the structural differences are visible.
//!
//! ```sh
//! cargo run --release --example gantt
//! ```

use mbts::core::Policy;
use mbts::site::{render_gantt, Site, SiteConfig};
use mbts::workload::{generate_trace, MixConfig, WidthPolicy};

fn main() {
    let mix = MixConfig::millennium_default()
        .with_tasks(24)
        .with_processors(6)
        .with_load_factor(1.4)
        .with_width(WidthPolicy::PowersOfTwo { max_exp: 2 })
        .with_value_skew(6.0);
    let trace = generate_trace(&mix, 3);
    let widths: Vec<usize> = trace.tasks.iter().map(|t| t.width).collect();
    println!("24 tasks on 6 processors, widths: {widths:?}\n");

    for (label, config) in [
        (
            "FCFS, no preemption (watch backfills slot into reservation holes)",
            SiteConfig::new(6).with_policy(Policy::Fcfs),
        ),
        (
            "FirstPrice with preemption ('>' marks a preempted segment)",
            SiteConfig::new(6)
                .with_policy(Policy::FirstPrice)
                .with_preemption(true),
        ),
    ] {
        let outcome = Site::new(config.with_record_segments(true)).run_trace(&trace);
        println!("=== {label} ===");
        println!(
            "yield {:.0}, completed {}, preemptions {}, backfills {}",
            outcome.metrics.total_yield,
            outcome.metrics.completed,
            outcome.metrics.preemptions,
            outcome.metrics.backfills,
        );
        println!("{}", render_gantt(&outcome.segments, 100));
    }
}
