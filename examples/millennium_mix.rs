//! Workload-generation tour: the §4.1 synthetic methodology.
//!
//! Builds the per-figure Millennium-style mixes, prints their descriptive
//! statistics, shows the common-random-numbers property that paired
//! comparisons rely on, and round-trips a trace through JSON.
//!
//! ```sh
//! cargo run --release --example millennium_mix
//! ```

use mbts::workload::{fig3_mix, fig45_mix, fig67_mix, generate_trace, Trace};

fn describe(label: &str, trace: &Trace) {
    let s = trace.stats();
    println!(
        "{label:<28} tasks {:>5}  load {:>5.2}  E[rt] {:>6.1}  E[v/rt] {:>5.2}  E[decay] {:>6.3}  ΣV {:>9.0}",
        s.num_tasks, s.offered_load, s.mean_runtime, s.mean_unit_value, s.mean_decay, s.total_value
    );
}

fn main() {
    println!("=== Per-figure preset mixes (seed 1, 2000 tasks, 16 procs) ===");
    for (label, mix) in [
        ("fig3 (value skew 4)", fig3_mix(4.0)),
        ("fig4 (decay skew 5, bounded)", fig45_mix(5.0, true)),
        ("fig5 (decay skew 5, unbounded)", fig45_mix(5.0, false)),
        ("fig6/7 (load 2)", fig67_mix(2.0)),
    ] {
        let trace = generate_trace(&mix.with_tasks(2000).with_processors(16), 1);
        describe(label, &trace);
    }

    println!("\n=== Common random numbers across a skew sweep ===");
    let base = fig45_mix(3.0, false).with_tasks(1000).with_processors(16);
    let a = generate_trace(&base, 5);
    let b = generate_trace(&base.clone().with_decay_skew(9.0), 5);
    let same_arrivals = a
        .tasks
        .iter()
        .zip(&b.tasks)
        .all(|(x, y)| x.arrival == y.arrival && x.runtime == y.runtime && x.value == y.value);
    let decay_changed = a
        .tasks
        .iter()
        .zip(&b.tasks)
        .any(|(x, y)| x.decay != y.decay);
    println!(
        "decay skew 3 → 9: arrivals/runtimes/values identical: {same_arrivals}; decays changed: {decay_changed}"
    );

    println!("\n=== Trace serialization ===");
    let dir = std::env::temp_dir().join("mbts-example");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("trace.json");
    a.save(&path).expect("save trace");
    let size = std::fs::metadata(&path).expect("stat").len();
    let replay = Trace::load(&path).expect("load trace");
    println!(
        "saved {} tasks to {} ({} bytes); replay identical: {}",
        replay.len(),
        path.display(),
        size,
        replay == a
    );
    std::fs::remove_file(&path).ok();
}
