//! The paper's Figure 1 setting: a client/broker negotiating with several
//! task-service sites, forming contracts, and settling them.
//!
//! Three heterogeneous sites (a big risk-averse site, a small aggressive
//! site, and a mid-size cost-only site) compete for a bursty task stream.
//! The example prints per-site business outcomes and compares client
//! selection rules and pricing strategies.
//!
//! ```sh
//! cargo run --release --example grid_market
//! ```

use mbts::core::{AdmissionPolicy, Policy};
use mbts::market::{BudgetConfig, ClientSelection, Economy, EconomyConfig, PricingStrategy};
use mbts::site::SiteConfig;
use mbts::workload::{generate_trace, MixConfig};

fn sites() -> Vec<SiteConfig> {
    vec![
        // Big and risk-averse: plenty of capacity, high slack bar.
        SiteConfig::new(12)
            .with_policy(Policy::first_reward(0.2, 0.01))
            .with_admission(AdmissionPolicy::SlackThreshold { threshold: 300.0 }),
        // Small and aggressive: takes anything with positive expected yield.
        SiteConfig::new(4)
            .with_policy(Policy::FirstPrice)
            .with_admission(AdmissionPolicy::PositiveExpectedYield),
        // Mid-size, cost-only scheduling, moderate slack bar.
        SiteConfig::new(8)
            .with_policy(Policy::first_reward(0.0, 0.01))
            .with_admission(AdmissionPolicy::SlackThreshold { threshold: 100.0 }),
    ]
}

fn main() {
    let mix = MixConfig::millennium_default()
        .with_tasks(1500)
        .with_processors(24) // total capacity across the three sites
        .with_load_factor(1.5)
        .with_mean_decay(0.05);
    let trace = generate_trace(&mix, 7);

    println!("=== Multi-site negotiation (earliest-completion clients) ===");
    let mut config = EconomyConfig::uniform(1, SiteConfig::new(1));
    config.sites = sites();
    config.selection = ClientSelection::EarliestCompletion;
    let outcome = Economy::new(config.clone()).run_trace(&trace);
    println!(
        "offered {}  placed {}  unplaced {}  violations {}  total yield {:.0}",
        outcome.offered,
        outcome.placed,
        outcome.unplaced,
        outcome.violations(),
        outcome.total_yield()
    );
    for (i, site) in outcome.per_site.iter().enumerate() {
        let m = &site.metrics;
        println!(
            "  site {i}: won {:>4} contracts, completed {:>4}, yield {:>9.0}, yield rate {:>6.2}",
            m.accepted,
            m.completed,
            m.total_yield,
            m.yield_rate()
        );
    }

    println!("\n=== Client selection rules ===");
    for selection in [
        ClientSelection::EarliestCompletion,
        ClientSelection::MaxSlack,
        ClientSelection::Random,
        ClientSelection::FirstResponder,
    ] {
        let mut cfg = config.clone();
        cfg.selection = selection;
        cfg.seed = 99;
        let out = Economy::new(cfg).run_trace(&trace);
        println!(
            "  {selection:<22?} placed {:>4}  yield {:>9.0}  violations {:>4}",
            out.placed,
            out.total_yield(),
            out.violations()
        );
    }

    println!("\n=== Pricing strategies (same placements, different charges) ===");
    for (label, pricing) in [
        ("pay-bid", PricingStrategy::PayBid),
        ("second-price", PricingStrategy::second_price()),
    ] {
        let mut cfg = config.clone();
        cfg.pricing = pricing;
        let out = Economy::new(cfg).run_trace(&trace);
        println!(
            "  {label:<14} settled {:>10.0}  charged {:>10.0}",
            out.total_settled, out.total_paid
        );
    }

    println!("\n=== Budgeted clients (4 accounts, tight budgets) ===");
    let mut cfg = config;
    cfg.budgets = Some(BudgetConfig {
        num_clients: 4,
        initial: 2000.0,
        replenish_rate: 0.5,
        cap: 5000.0,
    });
    let out = Economy::new(cfg).run_trace(&trace);
    println!(
        "  placed {}  unfunded {}  total charged {:.0}",
        out.placed, out.unfunded, out.total_paid
    );
    for (c, spend) in out.client_spend.iter().enumerate() {
        println!("  client {c}: spent {spend:.0}");
    }
}
