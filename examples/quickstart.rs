//! Quickstart: value functions, one site, one scheduling run.
//!
//! Renders the shape of a linear-decay value function (the paper's
//! Figure 2), then runs a small bimodal task mix through a FirstReward
//! site and prints the yield accounting.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mbts::core::value::{LinearDecay, ValueFunction};
use mbts::core::{AdmissionPolicy, Policy};
use mbts::sim::Time;
use mbts::site::{Site, SiteConfig};
use mbts::workload::{generate_trace, MixConfig, PenaltyBound};

fn main() {
    figure2();
    run_site();
}

/// ASCII rendition of the paper's Figure 2: maximum value until the
/// minimum runtime elapses, linear decay with queueing delay, optional
/// penalty floor.
fn figure2() {
    println!("A linear-decay value function (paper Figure 2):");
    println!("  value 100, decay 2/t.u., earliest completion t=20, penalty floor −30\n");
    let vf = LinearDecay::anchored(
        Time::from(20.0),
        100.0,
        2.0,
        PenaltyBound::Bounded { max_penalty: 30.0 },
    );
    let (lo, hi) = (-40.0, 110.0);
    for row in 0..12 {
        let level = hi - (hi - lo) * row as f64 / 11.0;
        let mut line = String::new();
        for col in 0..60 {
            let t = col as f64 * 2.0;
            let v = vf.value_at(Time::from(t));
            let step = (hi - lo) / 11.0;
            line.push(if (v - level).abs() < step / 2.0 {
                '*'
            } else {
                ' '
            });
        }
        println!("{level:>8.1} |{line}");
    }
    println!("         +{}", "-".repeat(60));
    println!(
        "          t=0 … t=120 (expires at t={})\n",
        vf.expire_time()
    );
}

fn run_site() {
    // A 5-minute-scale mix: 500 tasks, 8 processors, load factor 1.2.
    let mix = MixConfig::millennium_default()
        .with_tasks(500)
        .with_processors(8)
        .with_load_factor(1.2);
    let trace = generate_trace(&mix, 42);
    let stats = trace.stats();
    println!(
        "Generated {} tasks: offered load {:.2}, mean runtime {:.1}, mean unit value {:.2}",
        stats.num_tasks, stats.offered_load, stats.mean_runtime, stats.mean_unit_value
    );

    for (label, config) in [
        (
            "FCFS, accept all",
            SiteConfig::new(8).with_policy(Policy::Fcfs),
        ),
        (
            "FirstPrice, accept all",
            SiteConfig::new(8).with_policy(Policy::FirstPrice),
        ),
        (
            "SWPT (cost-only), accept all",
            SiteConfig::new(8).with_policy(Policy::Swpt),
        ),
        (
            "FirstReward(α=0.3) + slack admission",
            SiteConfig::new(8)
                .with_policy(Policy::first_reward(0.3, 0.01))
                .with_admission(AdmissionPolicy::SlackThreshold { threshold: 100.0 }),
        ),
    ] {
        let outcome = Site::new(config).run_trace(&trace);
        let m = &outcome.metrics;
        println!(
            "  {label:<40} yield {:>10.1}  rate {:>7.3}  completed {:>4}  rejected {:>4}  mean delay {:>7.1}",
            m.total_yield,
            m.yield_rate(),
            m.completed,
            m.rejected,
            m.delay.mean(),
        );
    }
    println!("\n(Each line replays the identical trace — the spread is pure scheduling policy.)");
}
