//! Do clients gain by under-declaring their value functions?
//!
//! §2 of the paper notes that charging below the bid (second pricing, as
//! in Spawn's Vickrey auctions) encourages truthful bidding. This example
//! makes that concrete: half the clients *shade* their declared value
//! functions by a factor and we compare each population's realized
//! utility (true value at completion − price paid) and placement rate
//! across shading depths.
//!
//! ```sh
//! cargo run --release --example bid_shading
//! ```

use mbts::core::{AdmissionPolicy, Policy};
use mbts::market::{run_shading_experiment, ClientSelection, EconomyConfig};
use mbts::site::SiteConfig;
use mbts::workload::{generate_trace, MixConfig};

fn main() {
    let trace = generate_trace(
        &MixConfig::millennium_default()
            .with_tasks(1000)
            .with_processors(8)
            .with_load_factor(1.8)
            .with_mean_decay(0.05),
        17,
    );
    let mut economy = EconomyConfig::uniform(
        2,
        SiteConfig::new(4)
            .with_policy(Policy::FirstPrice)
            .with_admission(AdmissionPolicy::SlackThreshold { threshold: 0.0 }),
    );
    economy.selection = ClientSelection::EarliestCompletion;

    println!("1000 tasks at load 1.8, two sites; half the clients shade their bids.\n");
    println!(
        "{:>8}  {:>12} {:>10} {:>10}   {:>12} {:>10} {:>10}",
        "factor", "util(shade)", "placed%", "paid", "util(truth)", "placed%", "paid"
    );
    for factor in [1.0, 0.8, 0.6, 0.4, 0.2] {
        let r = run_shading_experiment(economy.clone(), &trace, 2, factor);
        let pct = |p: usize, n: usize| 100.0 * p as f64 / n as f64;
        println!(
            "{factor:>8.1}  {:>12.2} {:>9.0}% {:>10.0}   {:>12.2} {:>9.0}% {:>10.0}",
            r.shaders.mean_utility,
            pct(r.shaders.placed, r.shaders.count),
            r.shaders.paid,
            r.truthful.mean_utility,
            pct(r.truthful.placed, r.truthful.count),
            r.truthful.paid,
        );
    }
    println!(
        "\nUnder pay-bid pricing, shading buys surplus on every served task but\n\
         costs scheduling priority and admission: service quality degrades as\n\
         the declared urgency shrinks. This is the tension §2 resolves by\n\
         charging second prices — with the price already capped by the\n\
         runner-up bid, under-declaring only loses priority."
    );
}
