//! The §7 reseller model: a task service renting elastic capacity from a
//! shared resource pool, provisioning on its own yield signals.
//!
//! Runs a quiet → surge → quiet workload through (a) a fixed-capacity
//! site, (b) a queue-pressure autoscaler, and (c) an economic autoscaler
//! that leases only while the queue's marginal unit gain beats the rent —
//! and compares their profit (yield − rent).
//!
//! ```sh
//! cargo run --release --example elastic_provider
//! ```

use mbts::core::Policy;
use mbts::market::{run_elastic, ElasticConfig, ProvisioningPolicy};
use mbts::site::SiteConfig;
use mbts::workload::{generate_trace, ArrivalProcess, MixConfig, Trace};

fn surge_trace() -> Trace {
    let quiet = MixConfig::millennium_default()
        .with_tasks(400)
        .with_processors(4)
        .with_load_factor(0.4)
        .with_mean_decay(0.05);
    let surge = quiet.clone().with_load_factor(3.0);
    Trace::concatenate(
        &[
            generate_trace(&quiet, 21),
            generate_trace(&surge, 22),
            generate_trace(&quiet, 23),
        ],
        50.0,
    )
}

fn main() {
    let trace = surge_trace();
    println!(
        "workload: {} tasks, quiet → surge (load 0.4 → 3.0 → 0.4) against a 4-proc base lease\n",
        trace.len()
    );
    println!(
        "{:<42} {:>10} {:>9} {:>9} {:>7} {:>8} {:>10}",
        "provisioning policy", "yield", "rent", "profit", "maxcap", "meancap", "mean delay"
    );
    for (label, policy) in [
        ("static (fixed 4 processors)", ProvisioningPolicy::Static),
        (
            "queue pressure (target 100 t.u./proc)",
            ProvisioningPolicy::QueuePressure {
                target_backlog: 100.0,
                step: 2,
            },
        ),
        (
            "marginal gain (lease while gain > 2·rent)",
            ProvisioningPolicy::MarginalGain {
                margin: 2.0,
                step: 2,
            },
        ),
    ] {
        let config = ElasticConfig {
            site: SiteConfig::new(4).with_policy(Policy::FirstPrice),
            pool_total: 32,
            rent: 0.05,
            policy,
            review_interval: 50.0,
        };
        let out = run_elastic(&config, &trace);
        println!(
            "{label:<42} {:>10.0} {:>9.0} {:>9.0} {:>7} {:>8.1} {:>10.1}",
            out.site.metrics.total_yield,
            out.rent_paid,
            out.profit(),
            out.max_capacity,
            out.mean_capacity,
            out.site.metrics.delay.mean(),
        );
    }
    println!("\nThe autoscalers ride the surge with rented capacity and return it");
    println!("afterwards: higher yield AND lower rent than the static site sized");
    println!("for the average. The paper's internal gain measures (§7) are exactly");
    println!("the signal the marginal-gain policy uses.\n");

    diurnal();
}

/// The same comparison against a smooth day/night cycle instead of a
/// one-off surge.
fn diurnal() {
    let mix = MixConfig::millennium_default()
        .with_tasks(1500)
        .with_processors(4)
        .with_load_factor(1.2)
        .with_mean_decay(0.05)
        .with_arrival(ArrivalProcess::Diurnal {
            period: 4000.0,
            amplitude: 0.9,
        });
    let trace = generate_trace(&mix, 33);
    println!("=== Diurnal load (sinusoidal ±90% swing, mean load 1.2) ===");
    for (label, policy) in [
        ("static (fixed 4 processors)", ProvisioningPolicy::Static),
        (
            "queue pressure",
            ProvisioningPolicy::QueuePressure {
                target_backlog: 100.0,
                step: 2,
            },
        ),
    ] {
        let config = ElasticConfig {
            site: SiteConfig::new(4).with_policy(Policy::FirstPrice),
            pool_total: 32,
            rent: 0.05,
            policy,
            review_interval: 50.0,
        };
        let out = run_elastic(&config, &trace);
        println!(
            "  {label:<30} profit {:>9.0}  maxcap {:>3}  meancap {:>5.1}  mean delay {:>8.1}",
            out.profit(),
            out.max_capacity,
            out.mean_capacity,
            out.site.metrics.delay.mean(),
        );
    }
    println!("\nEach night the autoscaler sheds capacity, each morning it leases it");
    println!("back — the rent bill tracks the diurnal wave instead of its peak.");
}
