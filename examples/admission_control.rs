//! Admission control under overload: a compact, runnable version of the
//! paper's §6 story (Figures 6 and 7).
//!
//! Sweeps the load factor with and without slack-threshold admission
//! control and prints the yield rate, acceptance ratio, and contract-risk
//! numbers, then sweeps the threshold itself at a fixed overload.
//!
//! ```sh
//! cargo run --release --example admission_control
//! ```

use mbts::core::{AdmissionPolicy, Policy};
use mbts::site::{Site, SiteConfig};
use mbts::workload::{fig67_mix, generate_trace};

const PROCESSORS: usize = 8;
const TASKS: usize = 1500;
const SEED: u64 = 11;

fn run(load: f64, admission: AdmissionPolicy) -> (f64, f64, f64) {
    let mix = fig67_mix(load)
        .with_tasks(TASKS)
        .with_processors(PROCESSORS);
    let trace = generate_trace(&mix, SEED);
    let outcome = Site::new(
        SiteConfig::new(PROCESSORS)
            .with_policy(Policy::first_reward(0.2, 0.01))
            .with_admission(admission),
    )
    .run_trace(&trace);
    let m = &outcome.metrics;
    (m.yield_rate(), m.acceptance_ratio(), m.total_penalty)
}

fn main() {
    println!("=== Yield rate vs load: slack admission (threshold 180) vs accept-all ===");
    println!(
        "{:>6}  {:>12} {:>8} {:>12}   {:>12} {:>8} {:>12}",
        "load", "rate(AC)", "acc%", "penalty", "rate(all)", "acc%", "penalty"
    );
    for load in [0.5, 1.0, 1.5, 2.0, 3.0, 4.0] {
        let (r_ac, a_ac, p_ac) = run(load, AdmissionPolicy::SlackThreshold { threshold: 180.0 });
        let (r_all, a_all, p_all) = run(load, AdmissionPolicy::AcceptAll);
        println!(
            "{load:>6.1}  {r_ac:>12.2} {:>7.0}% {p_ac:>12.0}   {r_all:>12.2} {:>7.0}% {p_all:>12.0}",
            a_ac * 100.0,
            a_all * 100.0
        );
    }
    println!("\nUnder overload the accept-all site drowns in penalties; the");
    println!("slack-gated site sheds the riskiest work and its yield rate keeps rising.\n");

    println!("=== Threshold sweep at load 2 (the Figure-7 trade-off) ===");
    println!("{:>10}  {:>12} {:>8}", "threshold", "yield rate", "acc%");
    for threshold in [-200.0, 0.0, 100.0, 200.0, 400.0, 700.0, 1200.0] {
        let (rate, acc, _) = run(2.0, AdmissionPolicy::SlackThreshold { threshold });
        println!("{threshold:>10.0}  {rate:>12.2} {:>7.0}%", acc * 100.0);
    }
    println!("\nToo low a threshold admits money-losing work; too high rejects");
    println!("profitable work — the optimum sits in between and rises with load.");
}
